//! MQTT 3.1.1 wire codec.
//!
//! Encodes [`Packet`]s to bytes and decodes bytes back, implementing the
//! fixed header (packet type, flags, remaining-length varint) and each
//! variable header/payload of the supported subset. Decoding never panics
//! on malformed input — every anomaly maps to a [`DecodeError`].

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::DecodeError;
use crate::packet::{
    Connack, Connect, ConnectReturnCode, LastWill, Packet, Publish, QoS, Suback, SubackCode,
    Subscribe, SubscribeFilter, Unsubscribe,
};
use crate::topic::{TopicFilter, TopicName};

/// Maximum value of the remaining-length varint.
pub const MAX_REMAINING_LENGTH: usize = 268_435_455;

/// Encodes a packet to a frozen wire frame.
///
/// The returned [`Bytes`] is reference-counted: the broker encodes a
/// fan-out frame once and shares it across every matching connection
/// without re-serialising or copying per subscriber.
///
/// ```
/// use ifot_mqtt::codec::{decode, encode};
/// use ifot_mqtt::packet::Packet;
///
/// let bytes = encode(&Packet::Pingreq);
/// let (packet, used) = decode(&bytes)?.expect("complete packet");
/// assert_eq!(packet, Packet::Pingreq);
/// assert_eq!(used, bytes.len());
/// # Ok::<(), ifot_mqtt::error::DecodeError>(())
/// ```
///
/// # Panics
///
/// Panics if the encoded body would exceed [`MAX_REMAINING_LENGTH`]
/// (requires a payload of ~256 MiB, far beyond any IFoT flow message).
pub fn encode(packet: &Packet) -> Bytes {
    let mut body = BytesMut::new();
    let (type_nibble, flags) = match packet {
        Packet::Connect(c) => {
            encode_connect(&mut body, c);
            (1u8, 0u8)
        }
        Packet::Connack(c) => {
            body.put_u8(u8::from(c.session_present));
            body.put_u8(c.code.to_byte());
            (2, 0)
        }
        Packet::Publish(p) => {
            let mut flags = 0u8;
            if p.dup {
                flags |= 0b1000;
            }
            flags |= p.qos.bits() << 1;
            if p.retain {
                flags |= 0b0001;
            }
            put_string(&mut body, p.topic.as_str());
            if p.qos != QoS::AtMostOnce {
                body.put_u16(p.packet_id.expect("qos>0 publish carries a packet id"));
            }
            body.put_slice(&p.payload);
            (3, flags)
        }
        Packet::Puback(pid) => {
            body.put_u16(*pid);
            (4, 0)
        }
        Packet::Pubrec(pid) => {
            body.put_u16(*pid);
            (5, 0)
        }
        Packet::Pubrel(pid) => {
            body.put_u16(*pid);
            (6, 0b0010)
        }
        Packet::Pubcomp(pid) => {
            body.put_u16(*pid);
            (7, 0)
        }
        Packet::Subscribe(s) => {
            body.put_u16(s.packet_id);
            for f in &s.filters {
                put_string(&mut body, f.filter.as_str());
                body.put_u8(f.qos.bits());
            }
            (8, 0b0010)
        }
        Packet::Suback(s) => {
            body.put_u16(s.packet_id);
            for c in &s.codes {
                body.put_u8(c.to_byte());
            }
            (9, 0)
        }
        Packet::Unsubscribe(u) => {
            body.put_u16(u.packet_id);
            for f in &u.filters {
                put_string(&mut body, f.as_str());
            }
            (10, 0b0010)
        }
        Packet::Unsuback(pid) => {
            body.put_u16(*pid);
            (11, 0)
        }
        Packet::Pingreq => (12, 0),
        Packet::Pingresp => (13, 0),
        Packet::Disconnect => (14, 0),
    };

    assert!(
        body.len() <= MAX_REMAINING_LENGTH,
        "packet body of {} bytes exceeds the MQTT remaining-length limit",
        body.len()
    );
    let mut out = BytesMut::with_capacity(body.len() + 5);
    out.put_u8((type_nibble << 4) | flags);
    encode_remaining_length(&mut out, body.len());
    out.put_slice(&body);
    out.freeze()
}

fn encode_connect(body: &mut BytesMut, c: &Connect) {
    put_string(body, "MQTT");
    body.put_u8(4); // protocol level 3.1.1
    let mut flags = 0u8;
    if c.clean_session {
        flags |= 0b0000_0010;
    }
    if let Some(w) = &c.will {
        flags |= 0b0000_0100;
        flags |= w.qos.bits() << 3;
        if w.retain {
            flags |= 0b0010_0000;
        }
    }
    if c.password.is_some() {
        flags |= 0b0100_0000;
    }
    if c.username.is_some() {
        flags |= 0b1000_0000;
    }
    body.put_u8(flags);
    body.put_u16(c.keep_alive_secs);
    put_string(body, &c.client_id);
    if let Some(w) = &c.will {
        put_string(body, w.topic.as_str());
        put_bytes(body, &w.payload);
    }
    if let Some(u) = &c.username {
        put_string(body, u);
    }
    if let Some(p) = &c.password {
        put_bytes(body, p);
    }
}

fn encode_remaining_length(out: &mut BytesMut, mut len: usize) {
    loop {
        let mut byte = (len % 128) as u8;
        len /= 128;
        if len > 0 {
            byte |= 0x80;
        }
        out.put_u8(byte);
        if len == 0 {
            break;
        }
    }
}

fn put_string(body: &mut BytesMut, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "string too long for MQTT");
    body.put_u16(s.len() as u16);
    body.put_slice(s.as_bytes());
}

fn put_bytes(body: &mut BytesMut, b: &[u8]) {
    debug_assert!(
        b.len() <= u16::MAX as usize,
        "binary field too long for MQTT"
    );
    body.put_u16(b.len() as u16);
    body.put_slice(b);
}

/// Attempts to decode one packet from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer holds only a packet prefix (read more
/// bytes and retry), or `Ok(Some((packet, consumed)))` on success.
///
/// # Errors
///
/// Returns a [`DecodeError`] for any malformed input; the caller should
/// treat the stream as broken (MQTT has no resynchronization).
pub fn decode(buf: &[u8]) -> Result<Option<(Packet, usize)>, DecodeError> {
    if buf.is_empty() {
        return Ok(None);
    }
    let first = buf[0];
    let packet_type = first >> 4;
    let flags = first & 0x0F;

    let (remaining, header_len) = match decode_remaining_length(&buf[1..])? {
        Some(v) => v,
        None => return Ok(None),
    };
    let total = 1 + header_len + remaining;
    if buf.len() < total {
        return Ok(None);
    }
    let body = Bytes::copy_from_slice(&buf[1 + header_len..total]);
    let packet = decode_body(packet_type, flags, body)?;
    Ok(Some((packet, total)))
}

/// Decodes the remaining-length varint; `Ok(None)` means incomplete.
fn decode_remaining_length(buf: &[u8]) -> Result<Option<(usize, usize)>, DecodeError> {
    let mut value = 0usize;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().enumerate() {
        if i >= 4 {
            return Err(DecodeError::MalformedRemainingLength);
        }
        value |= ((b & 0x7F) as usize) << shift;
        if b & 0x80 == 0 {
            return Ok(Some((value, i + 1)));
        }
        shift += 7;
    }
    if buf.len() >= 4 {
        Err(DecodeError::MalformedRemainingLength)
    } else {
        Ok(None)
    }
}

/// Cursor over a packet body held as [`Bytes`]: length-prefixed binary
/// fields and the publish payload are *sliced* out of the shared frame
/// (reference-count bump) rather than copied into fresh allocations.
struct Reader {
    buf: Bytes,
}

impl Reader {
    fn new(body: Bytes) -> Self {
        Reader { buf: body }
    }

    fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        if self.buf.remaining() < 1 {
            return Err(DecodeError::UnexpectedEof);
        }
        Ok(self.buf.get_u8())
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        if self.buf.remaining() < 2 {
            return Err(DecodeError::UnexpectedEof);
        }
        Ok(self.buf.get_u16())
    }

    fn bytes(&mut self) -> Result<Bytes, DecodeError> {
        let len = self.u16()? as usize;
        if self.buf.remaining() < len {
            return Err(DecodeError::UnexpectedEof);
        }
        Ok(self.buf.split_to(len))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        String::from_utf8(self.bytes()?.to_vec()).map_err(|_| DecodeError::InvalidString)
    }

    fn rest(&mut self) -> Bytes {
        self.buf.split_to(self.buf.remaining())
    }

    fn expect_empty(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }
}

fn require_flags(packet_type: u8, flags: u8, expected: u8) -> Result<(), DecodeError> {
    if flags == expected {
        Ok(())
    } else {
        Err(DecodeError::InvalidFlags { packet_type, flags })
    }
}

fn decode_body(packet_type: u8, flags: u8, body: Bytes) -> Result<Packet, DecodeError> {
    let mut r = Reader::new(body);
    match packet_type {
        1 => {
            require_flags(1, flags, 0)?;
            decode_connect(&mut r)
        }
        2 => {
            require_flags(2, flags, 0)?;
            let ack_flags = r.u8()?;
            if ack_flags & !0x01 != 0 {
                return Err(DecodeError::MalformedPacket("connack flags"));
            }
            let code = ConnectReturnCode::from_byte(r.u8()?)
                .map_err(|_| DecodeError::MalformedPacket("connack return code"))?;
            r.expect_empty()?;
            Ok(Packet::Connack(Connack {
                session_present: ack_flags & 0x01 != 0,
                code,
            }))
        }
        3 => {
            let dup = flags & 0b1000 != 0;
            let qos = QoS::from_bits((flags >> 1) & 0b11).map_err(DecodeError::InvalidQos)?;
            let retain = flags & 0b0001 != 0;
            if dup && qos == QoS::AtMostOnce {
                return Err(DecodeError::MalformedPacket("dup set on qos 0 publish"));
            }
            let topic = TopicName::new(r.string()?)
                .map_err(|_| DecodeError::MalformedPacket("publish topic"))?;
            let packet_id = if qos != QoS::AtMostOnce {
                let pid = r.u16()?;
                if pid == 0 {
                    return Err(DecodeError::MalformedPacket("zero packet id"));
                }
                Some(pid)
            } else {
                None
            };
            let payload = r.rest();
            Ok(Packet::Publish(Publish {
                dup,
                qos,
                retain,
                topic,
                packet_id,
                payload,
            }))
        }
        4 => {
            require_flags(4, flags, 0)?;
            let pid = r.u16()?;
            r.expect_empty()?;
            Ok(Packet::Puback(pid))
        }
        5 => {
            require_flags(5, flags, 0)?;
            let pid = r.u16()?;
            r.expect_empty()?;
            Ok(Packet::Pubrec(pid))
        }
        6 => {
            require_flags(6, flags, 0b0010)?;
            let pid = r.u16()?;
            r.expect_empty()?;
            Ok(Packet::Pubrel(pid))
        }
        7 => {
            require_flags(7, flags, 0)?;
            let pid = r.u16()?;
            r.expect_empty()?;
            Ok(Packet::Pubcomp(pid))
        }
        8 => {
            require_flags(8, flags, 0b0010)?;
            let packet_id = r.u16()?;
            let mut filters = Vec::new();
            while r.remaining() > 0 {
                let filter = TopicFilter::new(r.string()?)
                    .map_err(|_| DecodeError::MalformedPacket("subscribe filter"))?;
                let qos = QoS::from_bits(r.u8()?).map_err(DecodeError::InvalidQos)?;
                filters.push(SubscribeFilter { filter, qos });
            }
            if filters.is_empty() {
                return Err(DecodeError::MalformedPacket("subscribe without filters"));
            }
            Ok(Packet::Subscribe(Subscribe { packet_id, filters }))
        }
        9 => {
            require_flags(9, flags, 0)?;
            let packet_id = r.u16()?;
            let mut codes = Vec::new();
            while r.remaining() > 0 {
                codes.push(
                    SubackCode::from_byte(r.u8()?)
                        .map_err(|_| DecodeError::MalformedPacket("suback code"))?,
                );
            }
            if codes.is_empty() {
                return Err(DecodeError::MalformedPacket("suback without codes"));
            }
            Ok(Packet::Suback(Suback { packet_id, codes }))
        }
        10 => {
            require_flags(10, flags, 0b0010)?;
            let packet_id = r.u16()?;
            let mut filters = Vec::new();
            while r.remaining() > 0 {
                filters.push(
                    TopicFilter::new(r.string()?)
                        .map_err(|_| DecodeError::MalformedPacket("unsubscribe filter"))?,
                );
            }
            if filters.is_empty() {
                return Err(DecodeError::MalformedPacket("unsubscribe without filters"));
            }
            Ok(Packet::Unsubscribe(Unsubscribe { packet_id, filters }))
        }
        11 => {
            require_flags(11, flags, 0)?;
            let pid = r.u16()?;
            r.expect_empty()?;
            Ok(Packet::Unsuback(pid))
        }
        12 => {
            require_flags(12, flags, 0)?;
            r.expect_empty()?;
            Ok(Packet::Pingreq)
        }
        13 => {
            require_flags(13, flags, 0)?;
            r.expect_empty()?;
            Ok(Packet::Pingresp)
        }
        14 => {
            require_flags(14, flags, 0)?;
            r.expect_empty()?;
            Ok(Packet::Disconnect)
        }
        other => Err(DecodeError::UnknownPacketType(other)),
    }
}

fn decode_connect(r: &mut Reader) -> Result<Packet, DecodeError> {
    let proto = r.string()?;
    let level = r.u8()?;
    if proto != "MQTT" || level != 4 {
        return Err(DecodeError::UnsupportedProtocol);
    }
    let flags = r.u8()?;
    if flags & 0x01 != 0 {
        return Err(DecodeError::MalformedPacket("reserved connect flag set"));
    }
    let clean_session = flags & 0b0000_0010 != 0;
    let has_will = flags & 0b0000_0100 != 0;
    let will_qos = QoS::from_bits((flags >> 3) & 0b11).map_err(DecodeError::InvalidQos)?;
    let will_retain = flags & 0b0010_0000 != 0;
    let has_password = flags & 0b0100_0000 != 0;
    let has_username = flags & 0b1000_0000 != 0;
    if !has_will && (will_qos != QoS::AtMostOnce || will_retain) {
        return Err(DecodeError::MalformedPacket("will flags without will"));
    }
    let keep_alive_secs = r.u16()?;
    let client_id = r.string()?;
    let will = if has_will {
        let topic =
            TopicName::new(r.string()?).map_err(|_| DecodeError::MalformedPacket("will topic"))?;
        let payload = r.bytes()?;
        Some(LastWill {
            topic,
            payload,
            qos: will_qos,
            retain: will_retain,
        })
    } else {
        None
    };
    let username = if has_username {
        Some(r.string()?)
    } else {
        None
    };
    let password = if has_password { Some(r.bytes()?) } else { None };
    r.expect_empty()?;
    Ok(Packet::Connect(Connect {
        client_id,
        clean_session,
        keep_alive_secs,
        will,
        username,
        password,
    }))
}

/// Incremental decoder over a byte stream: feed arbitrary chunks, pop
/// complete packets.
///
/// ```
/// use ifot_mqtt::codec::{encode, StreamDecoder};
/// use ifot_mqtt::packet::Packet;
///
/// let mut dec = StreamDecoder::new();
/// let bytes = encode(&Packet::Pingreq);
/// dec.feed(&bytes[..1]);
/// assert!(dec.next_packet()?.is_none());
/// dec.feed(&bytes[1..]);
/// assert_eq!(dec.next_packet()?, Some(Packet::Pingreq));
/// # Ok::<(), ifot_mqtt::error::DecodeError>(())
/// ```
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: BytesMut,
}

impl StreamDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete packet, if any.
    ///
    /// A complete frame is split off the stream buffer and frozen, so a
    /// decoded publish payload is a zero-copy slice of that frame rather
    /// than a fresh allocation.
    ///
    /// # Errors
    ///
    /// Propagates [`DecodeError`] on malformed input; the stream should be
    /// dropped afterwards.
    pub fn next_packet(&mut self) -> Result<Option<Packet>, DecodeError> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        let first = self.buf[0];
        let packet_type = first >> 4;
        let flags = first & 0x0F;
        let (remaining, header_len) = match decode_remaining_length(&self.buf[1..])? {
            Some(v) => v,
            None => return Ok(None),
        };
        let total = 1 + header_len + remaining;
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame = self.buf.split_to(total).freeze();
        let body = frame.slice(1 + header_len..total);
        Ok(Some(decode_body(packet_type, flags, body)?))
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Connack, Suback, SubackCode, Subscribe, SubscribeFilter, Unsubscribe};

    fn topic(s: &str) -> TopicName {
        TopicName::new(s).expect("valid topic")
    }

    fn filter(s: &str) -> TopicFilter {
        TopicFilter::new(s).expect("valid filter")
    }

    fn round_trip(p: Packet) {
        let bytes = encode(&p);
        let (decoded, used) = decode(&bytes).expect("decodes").expect("complete");
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, p);
    }

    #[test]
    fn round_trip_simple_packets() {
        round_trip(Packet::Pingreq);
        round_trip(Packet::Pingresp);
        round_trip(Packet::Disconnect);
        round_trip(Packet::Puback(77));
        round_trip(Packet::Pubrec(78));
        round_trip(Packet::Pubrel(79));
        round_trip(Packet::Pubcomp(80));
        round_trip(Packet::Unsuback(13));
    }

    #[test]
    fn pubrel_requires_its_reserved_flags() {
        // PUBREL must carry flags 0b0010; zero is rejected.
        assert!(matches!(
            decode(&[0x60, 0x02, 0x00, 0x01]),
            Err(DecodeError::InvalidFlags { packet_type: 6, .. })
        ));
        assert!(decode(&[0x62, 0x02, 0x00, 0x01]).expect("valid").is_some());
    }

    #[test]
    fn round_trip_connect_variants() {
        round_trip(Packet::Connect(Connect::new("node-a")));
        let mut c = Connect::new("node-b");
        c.clean_session = false;
        c.keep_alive_secs = 0;
        c.username = Some("user".into());
        c.password = Some(vec![1, 2, 3].into());
        c.will = Some(LastWill {
            topic: topic("status/node-b"),
            payload: Bytes::from_static(b"offline"),
            qos: QoS::AtLeastOnce,
            retain: true,
        });
        round_trip(Packet::Connect(c));
    }

    #[test]
    fn round_trip_connack() {
        round_trip(Packet::Connack(Connack {
            session_present: true,
            code: ConnectReturnCode::Accepted,
        }));
        round_trip(Packet::Connack(Connack {
            session_present: false,
            code: ConnectReturnCode::NotAuthorized,
        }));
    }

    #[test]
    fn round_trip_publish_variants() {
        round_trip(Packet::Publish(Publish::qos0(topic("a/b"), vec![9; 32])));
        let mut p = Publish::qos1(topic("sensor/x"), vec![0; 300], 42);
        p.retain = true;
        round_trip(Packet::Publish(p));
        let mut d = Publish::qos1(topic("sensor/x"), Bytes::new(), 43);
        d.dup = true;
        round_trip(Packet::Publish(d));
    }

    #[test]
    fn round_trip_subscription_packets() {
        round_trip(Packet::Subscribe(Subscribe {
            packet_id: 5,
            filters: vec![
                SubscribeFilter {
                    filter: filter("sensor/#"),
                    qos: QoS::AtLeastOnce,
                },
                SubscribeFilter {
                    filter: filter("+/status"),
                    qos: QoS::AtMostOnce,
                },
            ],
        }));
        round_trip(Packet::Suback(Suback {
            packet_id: 5,
            codes: vec![SubackCode::Granted(QoS::AtLeastOnce), SubackCode::Failure],
        }));
        round_trip(Packet::Unsubscribe(Unsubscribe {
            packet_id: 6,
            filters: vec![filter("sensor/#")],
        }));
    }

    #[test]
    fn large_payload_uses_multibyte_remaining_length() {
        let p = Packet::Publish(Publish::qos0(topic("big"), vec![7; 20_000]));
        let bytes = encode(&p);
        // Remaining length must occupy 3 bytes for a 20 kB body.
        assert!(bytes[1] & 0x80 != 0);
        assert!(bytes[2] & 0x80 != 0);
        round_trip(p);
    }

    #[test]
    fn incomplete_input_returns_none() {
        let bytes = encode(&Packet::Publish(Publish::qos0(topic("a"), vec![1, 2, 3])));
        for cut in 0..bytes.len() {
            assert_eq!(
                decode(&bytes[..cut]).expect("prefix is not an error"),
                None,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn unknown_type_rejected() {
        assert_eq!(
            decode(&[0x00, 0x00]),
            Err(DecodeError::UnknownPacketType(0))
        );
        assert_eq!(
            decode(&[0xF0, 0x00]),
            Err(DecodeError::UnknownPacketType(15))
        );
    }

    #[test]
    fn bad_flags_rejected() {
        // PUBACK with nonzero flags.
        assert_eq!(
            decode(&[0x41, 0x02, 0x00, 0x01]),
            Err(DecodeError::InvalidFlags {
                packet_type: 4,
                flags: 1
            })
        );
        // SUBSCRIBE must carry flags 0b0010.
        assert!(matches!(
            decode(&[0x80, 0x05, 0x00, 0x01, 0x00, 0x01, b'a']),
            Err(DecodeError::InvalidFlags { packet_type: 8, .. })
        ));
    }

    #[test]
    fn qos3_publish_rejected() {
        // Flags 0b0110 = QoS 3.
        assert_eq!(
            decode(&[0x36, 0x04, 0x00, 0x01, b'a', 0x00]),
            Err(DecodeError::InvalidQos(3))
        );
    }

    #[test]
    fn zero_packet_id_rejected() {
        let mut bytes =
            encode(&Packet::Publish(Publish::qos1(topic("a"), Bytes::new(), 1))).to_vec();
        // Patch the packet id to zero: topic "a" = 2 len + 1 char after 2-byte header.
        let pid_offset = 2 + 2 + 1;
        bytes[pid_offset] = 0;
        bytes[pid_offset + 1] = 0;
        assert_eq!(
            decode(&bytes),
            Err(DecodeError::MalformedPacket("zero packet id"))
        );
    }

    #[test]
    fn invalid_utf8_topic_rejected() {
        // PUBLISH with a 1-byte topic 0xFF.
        let bytes = [0x30, 0x03, 0x00, 0x01, 0xFF];
        assert_eq!(decode(&bytes), Err(DecodeError::InvalidString));
    }

    #[test]
    fn overlong_remaining_length_rejected() {
        let bytes = [0xC0, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert_eq!(decode(&bytes), Err(DecodeError::MalformedRemainingLength));
    }

    #[test]
    fn trailing_bytes_rejected() {
        // PINGREQ declaring 1 byte of body.
        assert_eq!(decode(&[0xC0, 0x01, 0x00]), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn empty_subscribe_rejected() {
        assert_eq!(
            decode(&[0x82, 0x02, 0x00, 0x01]),
            Err(DecodeError::MalformedPacket("subscribe without filters"))
        );
    }

    #[test]
    fn wrong_protocol_rejected() {
        let mut c = encode(&Packet::Connect(Connect::new("x"))).to_vec();
        c[4] = b'X'; // corrupt protocol name "MQTT" -> "MXTT"
        assert_eq!(decode(&c), Err(DecodeError::UnsupportedProtocol));
    }

    #[test]
    fn stream_decoder_handles_fragmentation_and_pipelining() {
        let a = encode(&Packet::Pingreq);
        let b = encode(&Packet::Publish(Publish::qos0(topic("t"), vec![1, 2])));
        let mut all = Vec::new();
        all.extend_from_slice(&a);
        all.extend_from_slice(&b);

        let mut dec = StreamDecoder::new();
        // Feed one byte at a time.
        let mut got = Vec::new();
        for byte in all {
            dec.feed(&[byte]);
            while let Some(p) = dec.next_packet().expect("valid stream") {
                got.push(p);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], Packet::Pingreq);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_never_panics_on_garbage() {
        // A light fuzz: decode must return Ok(None)/Ok(Some)/Err, not panic.
        let mut seed = 0x12345678u64;
        for _ in 0..2000 {
            let len = (seed % 64) as usize;
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                bytes.push((seed >> 33) as u8);
            }
            let _ = decode(&bytes);
        }
    }
}
