//! Error types of the MQTT substrate.

use core::fmt;

/// Errors produced while decoding an MQTT packet from bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the packet was complete.
    UnexpectedEof,
    /// The remaining-length varint is malformed (more than four bytes).
    MalformedRemainingLength,
    /// The first header byte carries an unknown packet type.
    UnknownPacketType(u8),
    /// The fixed-header flags are invalid for the packet type.
    InvalidFlags {
        /// Packet type nibble.
        packet_type: u8,
        /// Offending flag nibble.
        flags: u8,
    },
    /// A length-prefixed string is not valid UTF-8.
    InvalidString,
    /// The protocol name or level in CONNECT is unsupported.
    UnsupportedProtocol,
    /// A QoS field holds a value outside 0..=2.
    InvalidQos(u8),
    /// The packet body is inconsistent (lengths, missing fields).
    MalformedPacket(&'static str),
    /// Trailing bytes after the declared remaining length were consumed.
    TrailingBytes,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of packet"),
            DecodeError::MalformedRemainingLength => {
                write!(f, "malformed remaining-length varint")
            }
            DecodeError::UnknownPacketType(t) => write!(f, "unknown packet type {t}"),
            DecodeError::InvalidFlags { packet_type, flags } => {
                write!(
                    f,
                    "invalid flags {flags:#06b} for packet type {packet_type}"
                )
            }
            DecodeError::InvalidString => write!(f, "string field is not valid utf-8"),
            DecodeError::UnsupportedProtocol => write!(f, "unsupported protocol name or level"),
            DecodeError::InvalidQos(q) => write!(f, "invalid qos value {q}"),
            DecodeError::MalformedPacket(what) => write!(f, "malformed packet: {what}"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after packet body"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Errors produced while validating topic names and filters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopicError {
    /// Topics must be non-empty.
    Empty,
    /// Topic names may not contain the wildcard characters `+` or `#`.
    WildcardInName,
    /// `#` must be the last character and occupy a whole level.
    InvalidMultiLevelWildcard,
    /// `+` must occupy a whole level.
    InvalidSingleLevelWildcard,
    /// Topics may not contain the NUL character.
    NulCharacter,
    /// Topic exceeds the maximum encodable length (65535 bytes).
    TooLong,
}

impl fmt::Display for TopicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopicError::Empty => write!(f, "topic must be non-empty"),
            TopicError::WildcardInName => write!(f, "topic name may not contain wildcards"),
            TopicError::InvalidMultiLevelWildcard => {
                write!(f, "'#' must be last and occupy a whole level")
            }
            TopicError::InvalidSingleLevelWildcard => {
                write!(f, "'+' must occupy a whole level")
            }
            TopicError::NulCharacter => write!(f, "topic may not contain NUL"),
            TopicError::TooLong => write!(f, "topic exceeds 65535 bytes"),
        }
    }
}

impl std::error::Error for TopicError {}

/// Errors surfaced by the broker or client session logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The peer violated the protocol (e.g. PUBLISH before CONNECT).
    ProtocolViolation(&'static str),
    /// The broker rejected the connection with the given CONNACK code.
    ConnectionRefused(crate::packet::ConnectReturnCode),
    /// An operation was attempted on a session in the wrong state.
    NotConnected,
    /// Historical: QoS 2 was once rejected by the sessions. The full
    /// exactly-once handshake is now implemented and this variant is no
    /// longer returned; it remains for API stability.
    QosNotSupported,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::ProtocolViolation(what) => write!(f, "protocol violation: {what}"),
            SessionError::ConnectionRefused(code) => {
                write!(f, "connection refused: {code:?}")
            }
            SessionError::NotConnected => write!(f, "session is not connected"),
            SessionError::QosNotSupported => write!(f, "qos 2 is not supported"),
        }
    }
}

impl std::error::Error for SessionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_lowercase_messages() {
        let msgs = [
            DecodeError::UnexpectedEof.to_string(),
            DecodeError::UnknownPacketType(0).to_string(),
            TopicError::Empty.to_string(),
            SessionError::NotConnected.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().expect("non-empty").is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DecodeError>();
        assert_send_sync::<TopicError>();
        assert_send_sync::<SessionError>();
    }
}
