//! # ifot-mqtt — MQTT 3.1.1 substrate for the IFoT flow-distribution
//! function
//!
//! The IFoT paper implements its *flow distribution function* (Publish,
//! Broker and Subscribe classes) on top of Mosquitto and the MQTT
//! protocol. This crate is the from-scratch substitute:
//!
//! * [`codec`] — the MQTT 3.1.1 wire format (fixed header,
//!   remaining-length varint, every packet of the supported subset),
//! * [`topic`] — validated topic names and filters with `+`/`#` wildcard
//!   matching,
//! * [`tree`] — a subscription trie for efficient fan-out matching,
//! * [`broker`] — a sans-I/O broker with QoS 0/1/2 (full exactly-once
//!   handshake), retained messages, persistent sessions, wills and
//!   keep-alive,
//! * [`client`] — a sans-I/O client session with retransmission and
//!   keep-alive,
//! * [`supervisor`] — client-side dead-peer detection and reconnect
//!   backoff around the session,
//! * [`shard`] — a multi-core routing layer partitioning sessions across
//!   per-shard brokers with a replicated subscription tree,
//! * [`wal`] — a write-ahead log + snapshot subsystem (CRC-framed atomic
//!   batches, pluggable file/in-memory backends, tolerant replay) making
//!   persistent sessions, subscriptions, retained messages and QoS 1/2
//!   in-flight state survive broker restarts,
//! * [`wheel`] — event-driven timer arithmetic so transports park until
//!   the broker's next deadline instead of sleep-polling,
//! * [`poll`] — a thin readiness poller (epoll on Linux, `poll(2)`
//!   fallback) with a cross-thread waker,
//! * [`slab`] — a generational connection slab keyed by poller tokens,
//! * [`net`] — a nonblocking TCP transport serving the sharded broker
//!   with one event loop per shard (std only, C10K-capable).
//!
//! "Sans-I/O" means broker and client own neither sockets nor clocks: the
//! caller feeds packets and timestamps and applies returned actions. The
//! IFoT middleware runs the exact same state machines on the deterministic
//! network simulator and on real threads.
//!
//! ```
//! use ifot_mqtt::codec::{decode, encode};
//! use ifot_mqtt::packet::{Packet, Publish};
//! use ifot_mqtt::topic::TopicName;
//!
//! let packet = Packet::Publish(Publish::qos0(
//!     TopicName::new("sensor/a")?,
//!     vec![1, 2, 3],
//! ));
//! let bytes = encode(&packet);
//! let (back, _) = decode(&bytes)?.expect("complete");
//! assert_eq!(back, packet);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod broker;
pub mod client;
pub mod codec;
pub mod error;
pub mod net;
pub mod packet;
pub mod poll;
pub mod shard;
pub mod slab;
pub mod supervisor;
pub mod topic;
pub mod tree;
pub mod wal;
pub mod wheel;

pub use broker::{Action, Broker, BrokerConfig, BrokerEvent};
pub use client::{Client, ClientConfig, ClientEvent};
pub use codec::{decode, encode, StreamDecoder};
pub use error::{DecodeError, SessionError, TopicError};
pub use net::{TcpBroker, TcpClient};
pub use packet::{Packet, Publish, QoS};
pub use shard::{shard_of, ShardOutput, ShardedBroker};
pub use supervisor::{ReconnectConfig, ReconnectSupervisor, SupervisorAction};
pub use topic::{TopicFilter, TopicName};
pub use wal::{
    DurablePublish, DurableState, FileBackend, MemBackend, RecoveryReport, Wal, WalBackend,
    WalConfig, WalRecord, WalStats,
};
pub use wheel::TimerWheel;
