//! Threaded TCP transport: the sharded broker over real sockets (std
//! only, no async runtime).
//!
//! This is the deployment face of the substrate: [`TcpBroker`] serves
//! MQTT on a socket address exactly like Mosquitto would, and
//! [`TcpClient`] is a small blocking client. Internally both reuse the
//! identical sans-I/O state machines the simulator exercises — the
//! transport only moves bytes and timestamps.
//!
//! ## Threading model
//!
//! One blocking **accept** thread, one **reader** thread per connection,
//! and one **service** thread per routing shard (see
//! [`ShardedBroker`]). A reader decodes frames and calls into its
//! connection's shard; resulting outbound frames are appended to
//! per-connection queues and written by the owning shard's service
//! thread with `write_vectored` over batches of up to
//! [`BrokerConfig::write_batch`] frames — **no TCP write ever happens
//! under a broker lock**, so one slow subscriber cannot stall routing
//! or any other connection (a consumer that stays blocked past
//! [`BrokerConfig::write_timeout_ns`] is declared slow and closed).
//!
//! Cross-shard publishes travel between service threads over bounded
//! channels carrying the shared-payload [`Publish`] (the payload
//! `Bytes` is reference-counted, not copied). Readers apply
//! backpressure by blocking on a full channel; service threads never
//! block on a channel — a full target falls back to applying the
//! forward inline — so the shard threads cannot deadlock.
//!
//! Timer work is event-driven through a per-shard [`TimerWheel`]: a
//! service thread parks until exactly its broker's
//! [`next_deadline_ns`](crate::broker::Broker::next_deadline_ns) (or
//! forever when idle) and readers wake it only when they create an
//! *earlier* deadline. An idle broker makes zero timer wakeups.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};

use crate::broker::{Action, BrokerConfig};
use crate::client::{Client, ClientConfig, ClientEvent};
use crate::codec::{encode, StreamDecoder};
use crate::packet::{Packet, Publish, QoS};
use crate::shard::{ShardOutput, ShardedBroker};
use crate::topic::{TopicFilter, TopicName};
use crate::wheel::TimerWheel;

/// Connection not yet assigned to a shard (pre-CONNECT).
const UNASSIGNED: usize = usize::MAX;

/// Capacity of each shard's inbound message channel. Readers block on a
/// full channel (backpressure toward the publisher's socket); service
/// threads fall back to inline application instead of blocking.
const SHARD_CHANNEL_CAP: usize = 1024;

/// How long a client may sit on an accepted socket without sending
/// CONNECT before the reader gives up on it.
const PRE_CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

fn now_ns(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos() as u64
}

/// Work for a shard service thread.
enum ShardMsg {
    /// A publish routed on another shard that matches subscribers here.
    Forward(Publish),
    /// Re-evaluate: new frames were queued or an earlier deadline
    /// appeared. Carries no data — the dirty list and the broker itself
    /// hold the state.
    Wake,
}

/// Outbound half of one connection. The queue is filled by whichever
/// thread produced the frames; only the owning shard's service thread
/// drains it and touches the socket.
struct ConnState {
    /// Write half of the socket (the reader owns the read half).
    writer: TcpStream,
    /// Owning shard, [`UNASSIGNED`] until CONNECT fixes it.
    shard: AtomicUsize,
    /// Pending outbound frames.
    queue: Mutex<VecDeque<Bytes>>,
    /// Producer/consumer handshake: set by the first producer to queue
    /// into an idle connection (that producer marks the conn dirty),
    /// cleared by the service thread before draining.
    signaled: AtomicBool,
    /// Close after the queue drains (broker issued `Action::Close`).
    closing: AtomicBool,
}

/// Per-shard service-thread handles.
struct ShardHandle {
    tx: Sender<ShardMsg>,
    /// Connections with queued frames, drained each service iteration.
    dirty: Mutex<Vec<usize>>,
    wheel: TimerWheel,
}

struct Shared {
    broker: ShardedBroker<usize>,
    shards: Vec<ShardHandle>,
    conns: RwLock<HashMap<usize, Arc<ConnState>>>,
    epoch: Instant,
    shutdown: AtomicBool,
    next_conn: AtomicUsize,
}

impl Shared {
    fn now(&self) -> u64 {
        now_ns(self.epoch)
    }

    /// Queues a frame for `conn` and nudges the owning shard's service
    /// thread if the connection was idle. Never blocks: a full channel
    /// means the service thread is already awake and will drain the
    /// dirty list before parking again.
    fn enqueue(&self, conn: usize, frame: Bytes) {
        let Some(state) = self.conns.read().get(&conn).cloned() else {
            return;
        };
        let shard = state.shard.load(Ordering::Acquire);
        if shard == UNASSIGNED {
            // Pre-CONNECT connections have no writer thread yet; the
            // only traffic here is a refused CONNACK, which the reader
            // writes itself via `flush_conn`.
            self.flush_conn_now(conn, &state, frame);
            return;
        }
        state.queue.lock().push_back(frame);
        if !state.signaled.swap(true, Ordering::AcqRel) {
            self.shards[shard].dirty.lock().push(conn);
            let _ = self.shards[shard].tx.try_send(ShardMsg::Wake);
        }
    }

    /// Direct write used only for pre-CONNECT connections (no shard
    /// owns them yet, so there is no queue consumer).
    fn flush_conn_now(&self, conn: usize, state: &ConnState, frame: Bytes) {
        let mut w = &state.writer;
        if w.write_all(&frame).is_err() {
            self.remove_conn(conn);
        }
    }

    /// Marks `conn` for close-after-flush and nudges its service
    /// thread. Pre-CONNECT connections close immediately.
    fn close_conn(&self, conn: usize) {
        let Some(state) = self.conns.read().get(&conn).cloned() else {
            return;
        };
        state.closing.store(true, Ordering::Release);
        let shard = state.shard.load(Ordering::Acquire);
        if shard == UNASSIGNED {
            self.remove_conn(conn);
            return;
        }
        if !state.signaled.swap(true, Ordering::AcqRel) {
            self.shards[shard].dirty.lock().push(conn);
            let _ = self.shards[shard].tx.try_send(ShardMsg::Wake);
        }
    }

    /// Drops the connection's socket (both halves — the reader unblocks
    /// on EOF and performs the broker-side teardown if it is still
    /// registered there).
    fn remove_conn(&self, conn: usize) {
        if let Some(state) = self.conns.write().remove(&conn) {
            let _ = state.writer.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Applies one shard operation's output from a **reader** thread:
    /// frames are queued for the shard writers, forwards go over the
    /// channels with blocking backpressure.
    fn dispatch_from_reader(&self, out: ShardOutput<usize>) {
        self.apply_actions(out.actions);
        for (shard, publish) in out.forwards {
            // Blocking send: a full shard applies backpressure all the
            // way to this connection's socket. Bounded retry so a
            // shutdown cannot strand the reader.
            let mut msg = ShardMsg::Forward(publish);
            while !self.shutdown.load(Ordering::Relaxed) {
                match self.shards[shard]
                    .tx
                    .send_timeout(msg, Duration::from_millis(50))
                {
                    Ok(()) => break,
                    Err(crossbeam::channel::SendTimeoutError::Timeout(m)) => msg = m,
                    Err(crossbeam::channel::SendTimeoutError::Disconnected(_)) => break,
                }
            }
        }
    }

    /// Applies one shard operation's output from a **service** thread:
    /// like [`dispatch_from_reader`](Self::dispatch_from_reader), except
    /// forwards must never block (two shards forwarding into each
    /// other's full channels would deadlock) — a full target shard gets
    /// the forward applied inline instead.
    fn dispatch_from_service(&self, out: ShardOutput<usize>) {
        self.apply_actions(out.actions);
        for (shard, publish) in out.forwards {
            match self.shards[shard].tx.try_send(ShardMsg::Forward(publish)) {
                Ok(()) => {}
                Err(TrySendError::Full(ShardMsg::Forward(p))) => {
                    let actions = self.broker.apply_forward(shard, p, self.now());
                    self.apply_actions(actions);
                }
                Err(_) => {}
            }
        }
    }

    fn apply_actions(&self, actions: Vec<Action<usize>>) {
        for action in actions {
            match action {
                Action::Send { conn, packet } => self.enqueue(conn, encode(&packet)),
                Action::SendFrame { conn, frame } => self.enqueue(conn, frame),
                Action::Close { conn } => self.close_conn(conn),
            }
        }
    }

    /// Wakes shard `shard` iff `deadline_ns` is earlier than whatever
    /// its service thread is parked on.
    fn note_deadline(&self, shard: usize, deadline_ns: u64) {
        if self.shards[shard].wheel.note_deadline(deadline_ns) {
            let _ = self.shards[shard].tx.try_send(ShardMsg::Wake);
        }
    }

    /// Conservative reader-side deadline accounting: packets that can
    /// only move deadlines *later* (activity refreshes) are ignored —
    /// the parked service thread just re-arms after its (now harmless)
    /// timeout. Only operations that create a possibly-earlier deadline
    /// signal the wheel.
    fn note_deadlines_for(&self, shard: usize, packet_in: &Packet, actions: &[Action<usize>]) {
        let cfg = self.broker.config();
        let now = self.now();
        if let Packet::Connect(c) = packet_in {
            if c.keep_alive_secs > 0 {
                let grace = (f64::from(c.keep_alive_secs) * 1e9 * cfg.keep_alive_factor) as u64;
                self.note_deadline(shard, now + grace);
            }
        }
        let starts_retransmit_timer = actions.iter().any(|a| {
            matches!(
                a,
                Action::Send {
                    packet: Packet::Publish(p),
                    ..
                } if p.qos != QoS::AtMostOnce
            ) || matches!(
                a,
                Action::Send {
                    packet: Packet::Pubrel(_),
                    ..
                }
            )
        });
        if starts_retransmit_timer {
            self.note_deadline(shard, now + cfg.retransmit_timeout_ns);
        }
    }
}

/// A broker served over TCP by a sharded thread pool.
///
/// ```no_run
/// use ifot_mqtt::net::TcpBroker;
///
/// let broker = TcpBroker::bind("127.0.0.1:1883")?;
/// println!("serving MQTT on {}", broker.local_addr());
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct TcpBroker {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    shard_handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for TcpBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpBroker")
            .field("local_addr", &self.local_addr)
            .field("shards", &self.shared.shards.len())
            .finish_non_exhaustive()
    }
}

impl TcpBroker {
    /// Binds and starts serving with the default broker configuration.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<TcpBroker> {
        TcpBroker::bind_with(addr, BrokerConfig::default())
    }

    /// Binds and starts serving with an explicit configuration
    /// (`config.shards` service threads, `config.write_batch` frames per
    /// vectored write, `config.tcp_nodelay` on accepted sockets).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind_with(addr: impl ToSocketAddrs, config: BrokerConfig) -> std::io::Result<TcpBroker> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let n_shards = config.shards.max(1);

        let mut shards = Vec::with_capacity(n_shards);
        let mut receivers = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let (tx, rx) = bounded(SHARD_CHANNEL_CAP);
            shards.push(ShardHandle {
                tx,
                dirty: Mutex::new(Vec::new()),
                wheel: TimerWheel::new(),
            });
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            broker: ShardedBroker::new(config),
            shards,
            conns: RwLock::new(HashMap::new()),
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
            next_conn: AtomicUsize::new(1),
        });

        let mut shard_handles = Vec::with_capacity(n_shards);
        for (idx, rx) in receivers.into_iter().enumerate() {
            let shard_shared = Arc::clone(&shared);
            shard_handles.push(
                std::thread::Builder::new()
                    .name(format!("mqtt-shard-{idx}"))
                    .spawn(move || shard_service(shard_shared, idx, rx))
                    .expect("spawning a shard service thread succeeds"),
            );
        }

        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("mqtt-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawning the accept thread succeeds");

        Ok(TcpBroker {
            shared,
            local_addr,
            accept_handle: Some(accept_handle),
            shard_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the aggregated broker statistics.
    pub fn stats(&self) -> crate::broker::BrokerStats {
        self.shared.broker.stats()
    }

    /// Total timer wakeups across shard service threads (diagnostics:
    /// an idle broker's count stays frozen).
    pub fn timer_wakeups(&self) -> u64 {
        self.shared.shards.iter().map(|s| s.wheel.wakeups()).sum()
    }

    /// Stops serving and joins the background threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Unblock the accept thread: it is parked in a blocking
        // `accept`, so poke it with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Close every live connection so reader threads exit.
        let conns: Vec<usize> = self.shared.conns.read().keys().copied().collect();
        for conn in conns {
            self.shared.remove_conn(conn);
        }
        // Wake the service threads; they observe the flag and exit.
        for shard in &self.shared.shards {
            let _ = shard.tx.try_send(ShardMsg::Wake);
        }
        for h in self.shard_handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TcpBroker {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Blocking accept loop. Transient resource exhaustion (EMFILE/ENFILE)
/// backs off briefly with the cause logged; aborted handshakes are
/// skipped; anything else (including the listener dying) stops the
/// loop.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    const EMFILE: i32 = 24; // process fd limit
    const ENFILE: i32 = 23; // system fd limit
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, peer)) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Err(e) = register_conn(stream, &shared) {
                    eprintln!("mqtt-accept: dropping connection from {peer}: {e}");
                }
            }
            Err(e) if matches!(e.raw_os_error(), Some(EMFILE) | Some(ENFILE)) => {
                eprintln!("mqtt-accept: out of file descriptors ({e}), backing off");
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::ConnectionAborted | ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(e) => {
                if !shared.shutdown.load(Ordering::Relaxed) {
                    eprintln!("mqtt-accept: listener failed ({e}), stopping");
                }
                return;
            }
        }
    }
}

/// Sets up socket options, registers the connection and spawns its
/// reader thread.
fn register_conn(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    let config = shared.broker.config();
    let conn = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    let now = shared.now();
    stream.set_nodelay(config.tcp_nodelay)?;
    // Slow-consumer guard: a write that stays blocked past this bound
    // fails and the connection is closed instead of wedging its shard's
    // writer loop.
    stream.set_write_timeout(Some(Duration::from_nanos(config.write_timeout_ns.max(1))))?;
    // Until CONNECT arrives the reader polls with a bounded timeout so
    // a silent socket cannot hold a thread forever.
    stream.set_read_timeout(Some(PRE_CONNECT_TIMEOUT))?;
    let writer = stream.try_clone()?;
    shared.conns.write().insert(
        conn,
        Arc::new(ConnState {
            writer,
            shard: AtomicUsize::new(UNASSIGNED),
            queue: Mutex::new(VecDeque::new()),
            signaled: AtomicBool::new(false),
            closing: AtomicBool::new(false),
        }),
    );
    shared.broker.connection_opened(conn, now);
    let conn_shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("mqtt-conn-{conn}"))
        .spawn(move || reader_loop(stream, conn, conn_shared))?;
    Ok(())
}

fn reader_loop(mut stream: TcpStream, conn: usize, shared: Arc<Shared>) {
    let mut decoder = StreamDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    let mut shard = UNASSIGNED;
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => break, // peer closed
            Ok(n) => {
                decoder.feed(&buf[..n]);
                loop {
                    match decoder.next_packet() {
                        Ok(Some(packet)) => {
                            let now = shared.now();
                            let out = shared.broker.handle_packet(&conn, packet.clone(), now);
                            if shard == UNASSIGNED {
                                if let Some(s) = shared.broker.shard_of_conn(&conn) {
                                    shard = s;
                                    if let Some(state) = shared.conns.read().get(&conn) {
                                        state.shard.store(s, Ordering::Release);
                                    }
                                    // CONNECT accepted: keep-alive (or
                                    // the broker's Close) polices the
                                    // connection from here on — reads
                                    // block indefinitely.
                                    let _ = stream.set_read_timeout(None);
                                }
                            }
                            if shard != UNASSIGNED {
                                shared.note_deadlines_for(shard, &packet, &out.actions);
                            }
                            shared.dispatch_from_reader(out);
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Broken stream: tear the connection down.
                            let now = shared.now();
                            let out = shared.broker.connection_lost(&conn, now);
                            shared.dispatch_from_reader(out);
                            shared.remove_conn(conn);
                            return;
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shard == UNASSIGNED {
                    break; // no CONNECT within the grace period
                }
            }
            Err(_) => break,
        }
    }
    let now = shared.now();
    let out = shared.broker.connection_lost(&conn, now);
    shared.dispatch_from_reader(out);
    shared.remove_conn(conn);
}

/// One shard's service loop: drain dirty connection queues with
/// vectored writes, park until the shard's next broker deadline, apply
/// cross-shard forwards, poll timers when the deadline fires.
fn shard_service(shared: Arc<Shared>, idx: usize, rx: Receiver<ShardMsg>) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        flush_dirty(&shared, idx);

        let deadline = shared.broker.next_deadline_ns(idx);
        let wheel = &shared.shards[idx].wheel;
        let msg = match wheel.arm(shared.now(), deadline) {
            // Idle: park until a message arrives — zero timer wakeups.
            None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
            Some(timeout) => rx.recv_timeout(timeout),
        };
        wheel.on_wake(shared.now());
        match msg {
            Ok(first) => {
                // Drain a bounded batch so timer work cannot starve.
                let mut budget = SHARD_CHANNEL_CAP;
                let mut next = Some(first);
                while let Some(msg) = next {
                    if let ShardMsg::Forward(publish) = msg {
                        let actions = shared.broker.apply_forward(idx, publish, shared.now());
                        shared.apply_actions(actions);
                    }
                    budget -= 1;
                    next = if budget > 0 { rx.try_recv().ok() } else { None };
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                let out = shared.broker.poll_shard(idx, shared.now());
                shared.dispatch_from_service(out);
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Writes every dirty connection's queue. Only this shard's service
/// thread calls this for its conns, so each socket has exactly one
/// writer and the frames of a queue never interleave.
fn flush_dirty(shared: &Arc<Shared>, idx: usize) {
    loop {
        let dirty: Vec<usize> = std::mem::take(&mut *shared.shards[idx].dirty.lock());
        if dirty.is_empty() {
            return;
        }
        for conn in dirty {
            let Some(state) = shared.conns.read().get(&conn).cloned() else {
                continue;
            };
            // Clear-before-drain: a producer appending after this point
            // re-marks the connection dirty, so nothing is lost.
            state.signaled.store(false, Ordering::Release);
            if !flush_conn(shared, conn, &state) {
                // Slow consumer or dead socket: broker-side teardown
                // (this conn belongs to this shard, so no cross-thread
                // coordination is needed).
                let out = shared.broker.connection_lost(&conn, shared.now());
                shared.dispatch_from_service(out);
                shared.remove_conn(conn);
                continue;
            }
            if state.closing.load(Ordering::Acquire) {
                shared.remove_conn(conn);
            }
        }
    }
}

/// Drains one connection's outbound queue in `write_batch`-sized
/// vectored writes. Returns `false` when the socket failed (including a
/// write timeout — the slow-consumer case).
fn flush_conn(shared: &Arc<Shared>, _conn: usize, state: &ConnState) -> bool {
    let batch_cap = shared.broker.config().write_batch.max(1);
    loop {
        let batch: Vec<Bytes> = {
            let mut queue = state.queue.lock();
            let take = queue.len().min(batch_cap);
            queue.drain(..take).collect()
        };
        if batch.is_empty() {
            return true;
        }
        // The socket write happens here — after the queue lock is
        // dropped and far away from any broker lock.
        if !write_vectored_all(&state.writer, &batch) {
            return false;
        }
    }
}

/// Writes a batch of frames with `write_vectored`, advancing across
/// partial writes. One syscall per batch in the common case, versus one
/// per frame in the unsharded transport.
fn write_vectored_all(mut writer: &TcpStream, batch: &[Bytes]) -> bool {
    let mut buf_idx = 0usize;
    let mut offset = 0usize;
    while buf_idx < batch.len() {
        let slices: Vec<IoSlice<'_>> = std::iter::once(IoSlice::new(&batch[buf_idx][offset..]))
            .chain(batch[buf_idx + 1..].iter().map(|b| IoSlice::new(b)))
            .collect();
        let mut written = match writer.write_vectored(&slices) {
            Ok(0) => return false,
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false, // incl. WouldBlock/TimedOut: slow consumer
        };
        while written > 0 {
            let remaining = batch[buf_idx].len() - offset;
            if written >= remaining {
                written -= remaining;
                buf_idx += 1;
                offset = 0;
                if buf_idx == batch.len() {
                    debug_assert_eq!(written, 0, "wrote more than was submitted");
                    break;
                }
            } else {
                offset += written;
                written = 0;
            }
        }
    }
    true
}

/// A small blocking MQTT client over TCP.
///
/// Drives the sans-I/O [`Client`] session: connects synchronously, then
/// exposes publish/subscribe plus a polling receive. A background call to
/// [`TcpClient::drive`] (or any receive) pumps retransmissions.
pub struct TcpClient {
    stream: TcpStream,
    session: Client,
    decoder: StreamDecoder,
    epoch: Instant,
    inbox: Vec<Publish>,
}

impl std::fmt::Debug for TcpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClient")
            .field("id", &self.session.id())
            .finish_non_exhaustive()
    }
}

impl TcpClient {
    /// Connects to a broker and completes the MQTT session handshake.
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` for socket failures, a refused session, or
    /// a handshake timeout (2 s).
    pub fn connect(addr: impl ToSocketAddrs, client_id: &str) -> std::io::Result<TcpClient> {
        TcpClient::connect_with(addr, client_id, ClientConfig::default())
    }

    /// Connects with an explicit session configuration (retransmission
    /// timeout, clean-session flag, keep-alive).
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` for socket failures, a refused session, or
    /// a handshake timeout (2 s).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        client_id: &str,
        config: ClientConfig,
    ) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        stream.set_nodelay(true)?;
        let mut this = TcpClient {
            stream,
            session: Client::new(client_id, config),
            decoder: StreamDecoder::new(),
            epoch: Instant::now(),
            inbox: Vec::new(),
        };
        let connect = this
            .session
            .connect()
            .expect("fresh session can always connect");
        this.stream.write_all(&encode(&connect))?;
        let deadline = Instant::now() + Duration::from_secs(2);
        while this.session.state() != crate::client::ClientState::Connected {
            if Instant::now() > deadline {
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    "mqtt session handshake timed out",
                ));
            }
            this.drive()?;
        }
        Ok(this)
    }

    fn now(&self) -> u64 {
        now_ns(self.epoch)
    }

    /// QoS 1 publications awaiting PUBACK.
    pub fn inflight(&self) -> usize {
        self.session.inflight_count()
    }

    /// QoS 2 publications awaiting handshake completion.
    pub fn inflight2(&self) -> usize {
        self.session.inflight2_count()
    }

    /// Pumps the socket once: reads available bytes, handles packets,
    /// sends acknowledgements and retransmissions.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and protocol violations.
    pub fn drive(&mut self) -> std::io::Result<()> {
        let mut buf = [0u8; 4096];
        match self.stream.read(&mut buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::ConnectionReset,
                    "broker closed the connection",
                ))
            }
            Ok(n) => self.decoder.feed(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
        loop {
            match self.decoder.next_packet() {
                Ok(Some(packet)) => {
                    let now = self.now();
                    let (events, out) = self
                        .session
                        .handle_packet(packet, now)
                        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
                    for event in events {
                        if let ClientEvent::Message(p) = event {
                            self.inbox.push(p);
                        }
                    }
                    for p in out {
                        self.stream.write_all(&encode(&p))?;
                    }
                }
                Ok(None) => break,
                Err(e) => return Err(std::io::Error::new(ErrorKind::InvalidData, e.to_string())),
            }
        }
        let now = self.now();
        for p in self.session.poll(now) {
            self.stream.write_all(&encode(&p))?;
        }
        Ok(())
    }

    /// Publishes a message.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; `InvalidInput` for session misuse.
    pub fn publish(
        &mut self,
        topic: &str,
        payload: impl Into<bytes::Bytes>,
        qos: QoS,
        retain: bool,
    ) -> std::io::Result<()> {
        let topic = TopicName::new(topic)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        let now = self.now();
        let packet = self
            .session
            .publish(topic, payload, qos, retain, now)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        self.stream.write_all(&encode(&packet))
    }

    /// Subscribes to a filter and waits for the SUBACK (2 s timeout).
    ///
    /// # Errors
    ///
    /// Propagates socket errors; `InvalidInput` for a bad filter;
    /// `TimedOut` when no SUBACK arrives.
    pub fn subscribe(&mut self, filter: &str, qos: QoS) -> std::io::Result<()> {
        let filter = TopicFilter::new(filter)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        let now = self.now();
        let packet = self
            .session
            .subscribe(vec![(filter.clone(), qos)], now)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        self.stream.write_all(&encode(&packet))?;
        let deadline = Instant::now() + Duration::from_secs(2);
        while !self.session.subscriptions().contains(&filter) {
            if Instant::now() > deadline {
                return Err(std::io::Error::new(ErrorKind::TimedOut, "no suback"));
            }
            self.drive()?;
        }
        Ok(())
    }

    /// Receives the next message, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (timeouts return `Ok(None)`).
    pub fn recv(&mut self, timeout: Duration) -> std::io::Result<Option<Publish>> {
        let deadline = Instant::now() + timeout;
        loop {
            if !self.inbox.is_empty() {
                return Ok(Some(self.inbox.remove(0)));
            }
            if Instant::now() > deadline {
                return Ok(None);
            }
            self.drive()?;
        }
    }

    /// Sends DISCONNECT and closes the socket.
    pub fn disconnect(mut self) {
        let packet = self.session.disconnect();
        let _ = self.stream.write_all(&encode(&packet));
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_round_trip_qos0_and_retained() {
        let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
        let addr = broker.local_addr();

        let mut publisher = TcpClient::connect(addr, "pub").expect("connect");
        publisher
            .publish("conf/x", b"retained-v1".to_vec(), QoS::AtMostOnce, true)
            .expect("publish retained");

        let mut subscriber = TcpClient::connect(addr, "sub").expect("connect");
        subscriber
            .subscribe("conf/#", QoS::AtMostOnce)
            .expect("subscribe");
        // Retained message arrives on subscribe.
        let retained = subscriber
            .recv(Duration::from_secs(2))
            .expect("recv ok")
            .expect("retained message");
        assert_eq!(retained.payload.as_ref(), b"retained-v1");
        assert!(retained.retain);

        // Live publish flows through.
        publisher
            .publish("conf/y", b"live".to_vec(), QoS::AtMostOnce, false)
            .expect("publish");
        let live = subscriber
            .recv(Duration::from_secs(2))
            .expect("recv ok")
            .expect("live message");
        assert_eq!(live.payload.as_ref(), b"live");
        assert_eq!(broker.stats().clients_connected, 2);

        publisher.disconnect();
        subscriber.disconnect();
        broker.shutdown();
    }

    #[test]
    fn tcp_qos2_exactly_once() {
        let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
        let addr = broker.local_addr();
        let mut subscriber = TcpClient::connect(addr, "sub2").expect("connect");
        subscriber
            .subscribe("q2/#", QoS::ExactlyOnce)
            .expect("subscribe");
        let mut publisher = TcpClient::connect(addr, "pub2").expect("connect");
        for i in 0..5u8 {
            publisher
                .publish("q2/t", vec![i], QoS::ExactlyOnce, false)
                .expect("publish");
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.len() < 5 && Instant::now() < deadline {
            publisher.drive().expect("pump publisher");
            if let Some(p) = subscriber.recv(Duration::from_millis(100)).expect("recv") {
                got.push(p.payload[0]);
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        publisher.disconnect();
        subscriber.disconnect();
        broker.shutdown();
    }

    #[test]
    fn tcp_single_shard_still_serves() {
        let broker = TcpBroker::bind_with(
            "127.0.0.1:0",
            BrokerConfig {
                shards: 1,
                write_batch: 1,
                ..BrokerConfig::default()
            },
        )
        .expect("bind");
        let addr = broker.local_addr();
        let mut subscriber = TcpClient::connect(addr, "s1").expect("connect");
        subscriber
            .subscribe("t/#", QoS::AtMostOnce)
            .expect("subscribe");
        let mut publisher = TcpClient::connect(addr, "p1").expect("connect");
        publisher
            .publish("t/x", b"one-shard".to_vec(), QoS::AtMostOnce, false)
            .expect("publish");
        let got = subscriber
            .recv(Duration::from_secs(2))
            .expect("recv")
            .expect("message");
        assert_eq!(got.payload.as_ref(), b"one-shard");
        publisher.disconnect();
        subscriber.disconnect();
        broker.shutdown();
    }

    #[test]
    fn tcp_idle_broker_makes_no_timer_wakeups() {
        let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
        // No connections, no deadlines: every shard parks indefinitely.
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(
            broker.timer_wakeups(),
            0,
            "the old transport would have woken ~3 times per shard here"
        );
        broker.shutdown();
    }

    #[test]
    fn tcp_cross_shard_fanout_reaches_all_subscribers() {
        let broker = TcpBroker::bind_with(
            "127.0.0.1:0",
            BrokerConfig {
                shards: 4,
                ..BrokerConfig::default()
            },
        )
        .expect("bind");
        let addr = broker.local_addr();
        // Enough subscribers that every shard almost surely owns one.
        let mut subs: Vec<TcpClient> = (0..12)
            .map(|i| {
                let mut c = TcpClient::connect(addr, &format!("fan-sub-{i}")).expect("connect");
                c.subscribe("fan/#", QoS::AtMostOnce).expect("subscribe");
                c
            })
            .collect();
        let mut publisher = TcpClient::connect(addr, "fan-pub").expect("connect");
        publisher
            .publish("fan/x", b"blast".to_vec(), QoS::AtMostOnce, false)
            .expect("publish");
        for (i, sub) in subs.iter_mut().enumerate() {
            let got = sub
                .recv(Duration::from_secs(2))
                .expect("recv")
                .unwrap_or_else(|| panic!("subscriber {i} missed the fan-out"));
            assert_eq!(got.payload.as_ref(), b"blast");
        }
        publisher.disconnect();
        for sub in subs {
            sub.disconnect();
        }
        broker.shutdown();
    }
}
