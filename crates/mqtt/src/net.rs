//! Nonblocking TCP transport: the sharded broker over real sockets with
//! one readiness-driven event loop per shard (std only, no async
//! runtime).
//!
//! This is the deployment face of the substrate: [`TcpBroker`] serves
//! MQTT on a socket address exactly like Mosquitto would, and
//! [`TcpClient`] is a small blocking client. Internally both reuse the
//! identical sans-I/O state machines the simulator exercises — the
//! transport only moves bytes and timestamps.
//!
//! ## Threading model — C10K and beyond
//!
//! One blocking **accept** thread and `config.shards` **event-loop**
//! threads; the thread count is fixed no matter how many connections are
//! live (the previous front-end spent one reader thread per connection,
//! capping sessions at thread-pool scale). The acceptor distributes
//! sockets round-robin across the loops; each loop owns its connections
//! end-to-end — a nonblocking slab of sockets (generational tokens, see
//! [`Slab`]) driven by a readiness [`Poller`] (epoll on Linux):
//!
//! * **reads**: readable sockets feed the per-connection
//!   [`StreamDecoder`]; decoded packets go through
//!   [`ShardedBroker::handle_packet`] exactly as before.
//! * **writes**: resulting frames land on per-connection outbound
//!   queues; the owning loop drains dirty queues with `write_vectored`
//!   batches of up to [`BrokerConfig::write_batch`] frames. A partial
//!   write arms write-readiness (`EPOLLOUT`) and the drain resumes when
//!   the socket unjams; a consumer that stays jammed past
//!   [`BrokerConfig::write_timeout_ns`] is evicted without the loop ever
//!   blocking on it. **No TCP write happens under a broker lock.**
//! * **wakes**: a producer on another thread that queues frames for an
//!   idle connection marks it dirty **once** (an `in_dirty` flag
//!   deduplicates concurrent producers) and signals the owning loop
//!   through its [`Waker`] self-pipe.
//! * **timers**: the PR 3 [`TimerWheel`] deadlines feed the same loop's
//!   poll timeout — an idle broker parks every loop indefinitely and
//!   makes **zero** timer wakeups (asserted in tests).
//!
//! Cross-shard publishes travel between loops over bounded channels
//! carrying the shared-payload [`Publish`] (the payload `Bytes` is
//! reference-counted, not copied); a full target channel falls back to
//! applying the forward inline, so loops never block on each other and
//! cannot deadlock.
//!
//! Connection admission is bounded by [`BrokerConfig::max_connections`]
//! (a storm degrades into counted refusals at the listener instead of
//! fd exhaustion inside the loops), and accept-time `EMFILE`/`ENFILE`
//! backs off instead of killing the listener (see
//! [`classify_accept_error`]).

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};

use crate::broker::{Action, BrokerConfig};
use crate::client::{Client, ClientConfig, ClientEvent};
use crate::codec::{encode, StreamDecoder};
use crate::packet::{Packet, Publish, QoS};
use crate::poll::{Event, Interest, Poller, Waker, WAKE_TOKEN};
use crate::shard::{ShardOutput, ShardedBroker};
use crate::slab::Slab;
use crate::topic::{TopicFilter, TopicName};
use crate::wheel::{TimerWheel, Wake};

/// Capacity of each loop's inbound channel (cross-shard forwards and
/// freshly accepted sockets). Loops never block on a full channel — a
/// full forward target gets the publish applied inline — and the
/// acceptor may briefly block, which is exactly accept backpressure.
const LOOP_CHANNEL_CAP: usize = 1024;

/// How long a client may sit on an accepted socket without completing
/// CONNECT before the owning loop drops it.
const PRE_CONNECT_TIMEOUT_NS: u64 = 10_000_000_000;

/// Bound on consecutive `read` calls per readable event in
/// level-triggered mode (fairness: one firehose connection cannot
/// monopolize its loop; the remaining bytes re-trigger immediately).
/// Edge-triggered mode must drain to `WouldBlock` and ignores this.
const LEVEL_READS_PER_EVENT: usize = 8;

fn now_ns(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos() as u64
}

fn min_deadline(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Work delivered to an event loop from the acceptor or other loops.
enum LoopMsg {
    /// A publish routed on another shard that matches subscribers here.
    Forward(Publish),
    /// A freshly accepted socket this loop now owns.
    Accept(TcpStream, usize),
}

/// What the accept loop should do about an `accept(2)` error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AcceptDisposition {
    /// Transient fd exhaustion (`EMFILE`/`ENFILE`): sleep briefly and
    /// retry — connections already established keep being serviced.
    Backoff,
    /// A per-connection handshake failure: skip it and accept the next.
    Retry,
    /// The listener itself is broken: stop accepting.
    Stop,
}

/// Classifies an `accept(2)` error (extracted for unit testing: the
/// EMFILE path is otherwise only reachable by exhausting the process fd
/// table).
fn classify_accept_error(e: &std::io::Error) -> AcceptDisposition {
    const EMFILE: i32 = 24; // process fd limit
    const ENFILE: i32 = 23; // system fd limit
    if matches!(e.raw_os_error(), Some(EMFILE) | Some(ENFILE)) {
        return AcceptDisposition::Backoff;
    }
    match e.kind() {
        ErrorKind::ConnectionAborted | ErrorKind::Interrupted => AcceptDisposition::Retry,
        _ => AcceptDisposition::Stop,
    }
}

/// Cross-thread face of one connection: the outbound queue any thread
/// may append to, and the flags coordinating the dirty-list wake
/// protocol. The socket itself lives loop-locally in the owner's slab —
/// only the owning loop ever touches it.
struct ConnShared {
    /// Owning event loop, fixed at accept (round-robin).
    owner: usize,
    /// Pending outbound frames.
    queue: Mutex<VecDeque<Bytes>>,
    /// Whether the connection is already on its owner's dirty list.
    /// Producers that find it set skip the push *and* the wake, so a
    /// connection enqueued N times between flushes is visited once per
    /// flush instead of N times.
    in_dirty: AtomicBool,
    /// Close after the queue drains (broker issued `Action::Close`).
    closing: AtomicBool,
}

impl ConnShared {
    fn new(owner: usize) -> ConnShared {
        ConnShared {
            owner,
            queue: Mutex::new(VecDeque::new()),
            in_dirty: AtomicBool::new(false),
            closing: AtomicBool::new(false),
        }
    }
}

/// Per-loop handles visible to every thread.
struct LoopHandle {
    tx: Sender<LoopMsg>,
    waker: Waker,
    /// Connections with queued frames, drained each loop iteration.
    dirty: Mutex<Vec<usize>>,
    wheel: TimerWheel,
}

struct Shared {
    broker: ShardedBroker<usize>,
    loops: Vec<LoopHandle>,
    conns: RwLock<HashMap<usize, Arc<ConnShared>>>,
    epoch: Instant,
    shutdown: AtomicBool,
    next_conn: AtomicUsize,
    refused: AtomicU64,
}

/// The loop-thread half of [`Shared::new`]'s output.
struct LoopParts {
    poller: Poller,
    rx: Receiver<LoopMsg>,
}

impl Shared {
    fn new(config: BrokerConfig) -> std::io::Result<(Arc<Shared>, Vec<LoopParts>)> {
        let n_loops = config.shards.max(1);
        let mut loops = Vec::with_capacity(n_loops);
        let mut parts = Vec::with_capacity(n_loops);
        for _ in 0..n_loops {
            let (tx, rx) = bounded(LOOP_CHANNEL_CAP);
            let poller = Poller::new()?;
            loops.push(LoopHandle {
                tx,
                waker: poller.waker(),
                dirty: Mutex::new(Vec::new()),
                wheel: TimerWheel::new(),
            });
            parts.push(LoopParts { poller, rx });
        }
        let shared = Arc::new(Shared {
            broker: ShardedBroker::new(config),
            loops,
            conns: RwLock::new(HashMap::new()),
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
            next_conn: AtomicUsize::new(1),
            refused: AtomicU64::new(0),
        });
        Ok((shared, parts))
    }

    fn now(&self) -> u64 {
        now_ns(self.epoch)
    }

    /// Marks `conn` dirty on its owner's list exactly once per flush
    /// cycle and wakes the owner unless the caller *is* the owner (the
    /// owning loop always flushes its dirty list before parking, so a
    /// self-wake would only cost a spurious poll return).
    fn mark_dirty(&self, conn: usize, state: &ConnShared, from_loop: Option<usize>) {
        if !state.in_dirty.swap(true, Ordering::AcqRel) {
            self.loops[state.owner].dirty.lock().push(conn);
            if from_loop != Some(state.owner) {
                self.loops[state.owner].waker.wake();
            }
        }
    }

    /// Queues a frame for `conn` and nudges the owning loop if the
    /// connection was idle. Never blocks.
    fn enqueue(&self, conn: usize, frame: Bytes, from_loop: Option<usize>) {
        let Some(state) = self.conns.read().get(&conn).cloned() else {
            return;
        };
        state.queue.lock().push_back(frame);
        self.mark_dirty(conn, &state, from_loop);
    }

    /// Marks `conn` for close-after-flush and nudges its owning loop.
    fn close_conn(&self, conn: usize, from_loop: Option<usize>) {
        let Some(state) = self.conns.read().get(&conn).cloned() else {
            return;
        };
        state.closing.store(true, Ordering::Release);
        self.mark_dirty(conn, &state, from_loop);
    }

    fn apply_actions(&self, actions: Vec<Action<usize>>, from_loop: Option<usize>) {
        for action in actions {
            match action {
                Action::Send { conn, packet } => self.enqueue(conn, encode(&packet), from_loop),
                Action::SendFrame { conn, frame } => self.enqueue(conn, frame, from_loop),
                Action::Close { conn } => self.close_conn(conn, from_loop),
            }
        }
    }

    /// Applies one shard operation's output. Frames are queued for the
    /// owning loops; cross-shard forwards go over the target loop's
    /// channel with a waker nudge. Forwards must never block (two loops
    /// forwarding into each other's full channels would deadlock) — a
    /// full (or own-loop) target gets the forward applied inline.
    fn dispatch(&self, out: ShardOutput<usize>, from_loop: Option<usize>) {
        self.apply_actions(out.actions, from_loop);
        for (shard, publish) in out.forwards {
            if Some(shard) == from_loop {
                let actions = self.broker.apply_forward(shard, publish, self.now());
                self.apply_actions(actions, from_loop);
                continue;
            }
            match self.loops[shard].tx.try_send(LoopMsg::Forward(publish)) {
                Ok(()) => self.loops[shard].waker.wake(),
                Err(TrySendError::Full(msg)) => {
                    if let LoopMsg::Forward(p) = msg {
                        let actions = self.broker.apply_forward(shard, p, self.now());
                        self.apply_actions(actions, from_loop);
                    }
                }
                Err(_) => {}
            }
        }
    }

    /// Wakes shard `shard`'s loop iff `deadline_ns` is earlier than
    /// whatever it is parked on.
    fn note_deadline(&self, shard: usize, deadline_ns: u64) {
        if self.loops[shard].wheel.note_deadline(deadline_ns) {
            self.loops[shard].waker.wake();
        }
    }

    /// Conservative deadline accounting: packets that can only move
    /// deadlines *later* (activity refreshes) are ignored — the parked
    /// loop just re-arms after its (now harmless) timeout. Only
    /// operations that create a possibly-earlier deadline signal the
    /// wheel.
    fn note_deadlines_for(&self, shard: usize, packet_in: &Packet, actions: &[Action<usize>]) {
        let cfg = self.broker.config();
        let now = self.now();
        if let Packet::Connect(c) = packet_in {
            if c.keep_alive_secs > 0 {
                let grace = (f64::from(c.keep_alive_secs) * 1e9 * cfg.keep_alive_factor) as u64;
                self.note_deadline(shard, now + grace);
            }
        }
        let starts_retransmit_timer = actions.iter().any(|a| {
            matches!(
                a,
                Action::Send {
                    packet: Packet::Publish(p),
                    ..
                } if p.qos != QoS::AtMostOnce
            ) || matches!(
                a,
                Action::Send {
                    packet: Packet::Pubrel(_),
                    ..
                }
            )
        });
        if starts_retransmit_timer {
            self.note_deadline(shard, now + cfg.retransmit_timeout_ns);
        }
    }
}

/// A broker served over TCP by a fixed pool of per-shard event loops.
///
/// ```no_run
/// use ifot_mqtt::net::TcpBroker;
///
/// let broker = TcpBroker::bind("127.0.0.1:1883")?;
/// println!("serving MQTT on {}", broker.local_addr());
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct TcpBroker {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    loop_handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for TcpBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpBroker")
            .field("local_addr", &self.local_addr)
            .field("shards", &self.shared.loops.len())
            .finish_non_exhaustive()
    }
}

impl TcpBroker {
    /// Binds and starts serving with the default broker configuration.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<TcpBroker> {
        TcpBroker::bind_with(addr, BrokerConfig::default())
    }

    /// Binds and starts serving with an explicit configuration
    /// (`config.shards` event loops, `config.write_batch` frames per
    /// vectored write, `config.max_connections` admission bound,
    /// `config.edge_triggered` poller mode, `config.tcp_nodelay` on
    /// accepted sockets).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding or poller setup.
    pub fn bind_with(addr: impl ToSocketAddrs, config: BrokerConfig) -> std::io::Result<TcpBroker> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (shared, parts) = Shared::new(config)?;

        let mut loop_handles = Vec::with_capacity(parts.len());
        for (idx, part) in parts.into_iter().enumerate() {
            let shard_shared = Arc::clone(&shared);
            loop_handles.push(
                std::thread::Builder::new()
                    .name(format!("mqtt-loop-{idx}"))
                    .spawn(move || EventLoop::new(idx, shard_shared, part).run())
                    .expect("spawning an event-loop thread succeeds"),
            );
        }

        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("mqtt-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawning the accept thread succeeds");

        Ok(TcpBroker {
            shared,
            local_addr,
            accept_handle: Some(accept_handle),
            loop_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the aggregated broker statistics.
    pub fn stats(&self) -> crate::broker::BrokerStats {
        self.shared.broker.stats()
    }

    /// Aggregated write-ahead-log counters across shards, if the broker
    /// was configured with [`crate::broker::BrokerConfig::durability`].
    pub fn wal_stats(&self) -> Option<crate::wal::WalStats> {
        self.shared.broker.wal_stats()
    }

    /// Total loop wakeups across shard event loops (diagnostics: an idle
    /// broker's count stays frozen).
    pub fn timer_wakeups(&self) -> u64 {
        self.shared.loops.iter().map(|s| s.wheel.wakeups()).sum()
    }

    /// Connections dropped at the listener because
    /// [`BrokerConfig::max_connections`] was reached.
    pub fn refused_connections(&self) -> u64 {
        self.shared.refused.load(Ordering::Relaxed)
    }

    /// Broker-owned threads: `shards` event loops plus the acceptor.
    /// Constant for the broker's lifetime regardless of connection count
    /// — the property the C10K tests assert.
    pub fn service_threads(&self) -> usize {
        self.loop_handles.len() + 1
    }

    /// Stops serving and joins the background threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Unblock the accept thread: it is parked in a blocking
        // `accept`, so poke it with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Wake every loop; each observes the flag, tears its
        // connections down and exits.
        for handle in &self.shared.loops {
            handle.waker.wake();
        }
        for h in self.loop_handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TcpBroker {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Counts live threads whose name starts with `mqtt-` (the broker's
/// acceptor and event loops), via `/proc`. Returns `None` off Linux.
/// Used by the C10K tests and bench to assert the thread count stays
/// `shards + 1` no matter how many connections are open.
pub fn mqtt_thread_count() -> Option<usize> {
    #[cfg(target_os = "linux")]
    {
        let mut n = 0;
        for entry in std::fs::read_dir("/proc/self/task").ok()? {
            let Ok(entry) = entry else { continue };
            if let Ok(name) = std::fs::read_to_string(entry.path().join("comm")) {
                if name.trim_start().starts_with("mqtt-") {
                    n += 1;
                }
            }
        }
        Some(n)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Blocking accept loop. Enforces the `max_connections` admission bound,
/// backs off briefly on fd exhaustion, skips aborted handshakes, and
/// stops when the listener dies (see [`classify_accept_error`]).
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let max_connections = shared.broker.config().max_connections;
    let mut next_loop = 0usize;
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, peer)) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if max_connections > 0 && shared.conns.read().len() >= max_connections {
                    shared.refused.fetch_add(1, Ordering::Relaxed);
                    drop(stream);
                    continue;
                }
                if let Err(e) = register_conn(stream, &shared, &mut next_loop) {
                    eprintln!("mqtt-accept: dropping connection from {peer}: {e}");
                }
            }
            Err(e) => match classify_accept_error(&e) {
                AcceptDisposition::Backoff => {
                    eprintln!("mqtt-accept: out of file descriptors ({e}), backing off");
                    std::thread::sleep(Duration::from_millis(50));
                }
                AcceptDisposition::Retry => continue,
                AcceptDisposition::Stop => {
                    if !shared.shutdown.load(Ordering::Relaxed) {
                        eprintln!("mqtt-accept: listener failed ({e}), stopping");
                    }
                    return;
                }
            },
        }
    }
}

/// Sets socket options, registers the connection's cross-thread state
/// and hands the socket to its round-robin owner loop. No thread is
/// spawned — this is the whole point of the front-end.
fn register_conn(
    stream: TcpStream,
    shared: &Arc<Shared>,
    next_loop: &mut usize,
) -> std::io::Result<()> {
    let config = shared.broker.config();
    stream.set_nodelay(config.tcp_nodelay)?;
    stream.set_nonblocking(true)?;
    let conn = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    let owner = *next_loop % shared.loops.len();
    *next_loop = next_loop.wrapping_add(1);
    shared
        .conns
        .write()
        .insert(conn, Arc::new(ConnShared::new(owner)));
    shared.broker.connection_opened(conn, shared.now());
    // Blocking send: a loop that cannot keep up with the accept rate
    // backpressures the acceptor, which is the correct place to slow a
    // connection storm down.
    if shared.loops[owner]
        .tx
        .send(LoopMsg::Accept(stream, conn))
        .is_err()
    {
        shared.conns.write().remove(&conn);
        return Err(std::io::Error::new(
            ErrorKind::NotConnected,
            "owner loop is gone",
        ));
    }
    shared.loops[owner].waker.wake();
    Ok(())
}

/// Why a connection's outbound flush stopped.
enum FlushOutcome {
    /// Queue fully drained.
    Drained,
    /// Socket jammed mid-queue (`WouldBlock`): write-readiness armed.
    Blocked,
    /// Socket failed.
    Dead,
    /// Stale token — connection already gone.
    Gone,
}

/// Loop-local state of one owned connection. The socket has exactly one
/// owner thread, so reads, writes and decoder state need no locks.
struct Conn {
    id: usize,
    stream: TcpStream,
    shared_state: Arc<ConnShared>,
    decoder: StreamDecoder,
    /// Currently armed poller interest.
    interest: Interest,
    /// Bytes of the queue-front frame already written (partial-write
    /// resume point).
    partial: usize,
    /// Routing shard, known once CONNECT is accepted.
    routed: Option<usize>,
}

/// One shard's event loop: owns a poller, a slab of connections, and the
/// shard's timer deadline. See the [module docs](self).
struct EventLoop {
    idx: usize,
    shared: Arc<Shared>,
    poller: Poller,
    rx: Receiver<LoopMsg>,
    conns: Slab<Conn>,
    /// Conn id → slab token (dirty-list lookups).
    tokens: HashMap<usize, u64>,
    /// Pre-CONNECT grace deadlines by token.
    pre_connect: HashMap<u64, u64>,
    /// Slow-consumer eviction deadlines by token (set while a partial
    /// write has the socket jammed).
    write_blocked: HashMap<u64, u64>,
    edge: bool,
    write_batch: usize,
    write_timeout_ns: u64,
}

impl EventLoop {
    fn new(idx: usize, shared: Arc<Shared>, parts: LoopParts) -> EventLoop {
        let config = shared.broker.config();
        let edge = config.edge_triggered;
        let write_batch = config.write_batch.max(1);
        let write_timeout_ns = config.write_timeout_ns.max(1);
        EventLoop {
            idx,
            shared,
            poller: parts.poller,
            rx: parts.rx,
            conns: Slab::new(),
            tokens: HashMap::new(),
            pre_connect: HashMap::new(),
            write_blocked: HashMap::new(),
            edge,
            write_batch,
            write_timeout_ns,
        }
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::with_capacity(256);
        loop {
            if self.shared.shutdown.load(Ordering::Relaxed) {
                self.teardown_all();
                return;
            }
            self.drain_channel();
            self.flush_dirty();

            let now = self.shared.now();
            let deadline = min_deadline(
                self.shared.broker.next_deadline_ns(self.idx),
                self.earliest_aux_deadline(),
            );
            let wheel = &self.shared.loops[self.idx].wheel;
            let timeout = wheel.arm(now, deadline);
            // Producers that queued work after `flush_dirty` above have
            // already written a wake byte (cross-loop marks always
            // wake), so this wait cannot oversleep new work.
            if let Err(e) = self.poller.wait(&mut events, timeout) {
                eprintln!("mqtt-loop-{}: poller failed ({e}), stopping", self.idx);
                self.teardown_all();
                return;
            }
            let woke = self.shared.loops[self.idx].wheel.on_wake(self.shared.now());
            if woke == Wake::Deadline {
                let now = self.shared.now();
                let out = self.shared.broker.poll_shard(self.idx, now);
                self.shared.dispatch(out, Some(self.idx));
                self.expire_aux_deadlines(now);
            }
            let batch: Vec<Event> = std::mem::take(&mut events);
            for ev in batch {
                self.handle_event(&ev);
            }
        }
    }

    // ----- inbound channel ------------------------------------------------

    fn drain_channel(&mut self) {
        while let Ok(msg) = self.rx.try_recv() {
            match msg {
                LoopMsg::Accept(stream, id) => self.adopt(stream, id),
                LoopMsg::Forward(publish) => {
                    let now = self.shared.now();
                    let actions = self.shared.broker.apply_forward(self.idx, publish, now);
                    self.shared.apply_actions(actions, Some(self.idx));
                }
            }
        }
    }

    /// Takes ownership of a freshly accepted socket: slab slot, poller
    /// registration, pre-CONNECT grace deadline.
    fn adopt(&mut self, stream: TcpStream, id: usize) {
        let Some(state) = self.shared.conns.read().get(&id).cloned() else {
            return; // raced a shutdown sweep
        };
        debug_assert_eq!(state.owner, self.idx, "socket delivered to a foreign loop");
        let now = self.shared.now();
        let fd = stream.as_raw_fd();
        let token = self.conns.insert(Conn {
            id,
            stream,
            shared_state: state,
            decoder: StreamDecoder::new(),
            interest: Interest::READABLE,
            partial: 0,
            routed: None,
        });
        if self
            .poller
            .register(fd, token, Interest::READABLE, self.edge)
            .is_err()
        {
            self.teardown(token, true);
            return;
        }
        self.tokens.insert(id, token);
        self.pre_connect.insert(token, now + PRE_CONNECT_TIMEOUT_NS);
    }

    // ----- dirty-list writes ----------------------------------------------

    /// Flushes every dirty connection's queue. Only this loop touches
    /// its conns' sockets, so each socket has exactly one writer and the
    /// frames of a queue never interleave. Loops until the dirty list
    /// stays empty (a flush can enqueue follow-up frames via broker
    /// actions).
    fn flush_dirty(&mut self) {
        loop {
            let dirty: Vec<usize> = std::mem::take(&mut *self.shared.loops[self.idx].dirty.lock());
            if dirty.is_empty() {
                return;
            }
            for id in dirty {
                let Some(&token) = self.tokens.get(&id) else {
                    continue; // already torn down
                };
                if let Some(conn) = self.conns.get(token) {
                    // Clear-before-drain: a producer appending after
                    // this point re-marks the connection dirty, so
                    // nothing is lost.
                    conn.shared_state.in_dirty.store(false, Ordering::Release);
                }
                self.flush_conn(token);
            }
        }
    }

    /// Drains one connection's outbound queue in `write_batch`-sized
    /// vectored writes, resuming across partial frames, then applies the
    /// outcome (interest re-arm, slow-consumer clock, close-after-flush,
    /// teardown). Returns whether the connection is still alive.
    fn flush_conn(&mut self, token: u64) -> bool {
        let outcome = self.write_queue(token);
        match outcome {
            FlushOutcome::Gone => false,
            FlushOutcome::Dead => {
                self.teardown(token, true);
                false
            }
            FlushOutcome::Drained => {
                let Some(conn) = self.conns.get_mut(token) else {
                    return false;
                };
                if conn.shared_state.closing.load(Ordering::Acquire) {
                    self.teardown(token, true);
                    return false;
                }
                if conn.interest.writable {
                    conn.interest = Interest::READABLE;
                    let fd = conn.stream.as_raw_fd();
                    let _ = self
                        .poller
                        .reregister(fd, token, Interest::READABLE, self.edge);
                }
                self.write_blocked.remove(&token);
                true
            }
            FlushOutcome::Blocked => {
                let now = self.shared.now();
                let timeout = self.write_timeout_ns;
                let Some(conn) = self.conns.get_mut(token) else {
                    return false;
                };
                if !conn.interest.writable {
                    conn.interest = Interest::READ_WRITE;
                    let fd = conn.stream.as_raw_fd();
                    let _ = self
                        .poller
                        .reregister(fd, token, Interest::READ_WRITE, self.edge);
                }
                // First blockage starts the slow-consumer clock; any
                // write progress resets it (see `write_queue`).
                self.write_blocked.entry(token).or_insert(now + timeout);
                true
            }
        }
    }

    /// The socket-write half of [`flush_conn`]: drains until empty,
    /// jammed, or dead. The queue is snapshotted per batch under its
    /// lock (cloning `Bytes` handles, not payloads) and popped only
    /// after the bytes are written, so producers can append concurrently
    /// without coordination.
    fn write_queue(&mut self, token: u64) -> FlushOutcome {
        loop {
            let Some(conn) = self.conns.get_mut(token) else {
                return FlushOutcome::Gone;
            };
            let batch: Vec<Bytes> = {
                let queue = conn.shared_state.queue.lock();
                queue.iter().take(self.write_batch).cloned().collect()
            };
            if batch.is_empty() {
                return FlushOutcome::Drained;
            }
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(batch.len());
            slices.push(IoSlice::new(&batch[0][conn.partial..]));
            for frame in &batch[1..] {
                slices.push(IoSlice::new(frame));
            }
            // The socket write happens here — far away from any broker
            // lock, and never blocking (the socket is nonblocking).
            match (&conn.stream).write_vectored(&slices) {
                Ok(0) => return FlushOutcome::Dead,
                Ok(mut written) => {
                    let mut queue = conn.shared_state.queue.lock();
                    while written > 0 {
                        let front = queue.front().expect("queue front backed the batch");
                        let remaining = front.len() - conn.partial;
                        if written >= remaining {
                            queue.pop_front();
                            conn.partial = 0;
                            written -= remaining;
                        } else {
                            conn.partial += written;
                            written = 0;
                        }
                    }
                    drop(queue);
                    // Progress resets the slow-consumer clock.
                    self.write_blocked.remove(&token);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return FlushOutcome::Blocked,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return FlushOutcome::Dead,
            }
        }
    }

    // ----- readiness events -----------------------------------------------

    fn handle_event(&mut self, ev: &Event) {
        if ev.token == WAKE_TOKEN {
            self.poller.drain_waker();
            return;
        }
        if ev.readable && !self.on_readable(ev.token) {
            return; // torn down
        }
        if ev.writable {
            self.write_blocked.remove(&ev.token);
            self.flush_conn(ev.token);
        }
    }

    /// Reads available bytes, decodes and dispatches packets. Returns
    /// whether the connection is still alive.
    fn on_readable(&mut self, token: u64) -> bool {
        let edge = self.edge;
        let mut packets: Vec<Packet> = Vec::new();
        let mut failed = false;
        let mut eof = false;
        let id = {
            let Some(conn) = self.conns.get_mut(token) else {
                return false; // stale event for a recycled slot
            };
            let mut buf = [0u8; 16 * 1024];
            let mut reads = 0usize;
            'reading: loop {
                reads += 1;
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        eof = true;
                        break 'reading;
                    }
                    Ok(n) => {
                        conn.decoder.feed(&buf[..n]);
                        loop {
                            match conn.decoder.next_packet() {
                                Ok(Some(packet)) => packets.push(packet),
                                Ok(None) => break,
                                Err(_) => {
                                    failed = true;
                                    break 'reading;
                                }
                            }
                        }
                        // Level mode re-notifies for leftover bytes, so
                        // fairness wins; edge mode must drain fully.
                        if !edge && (n < buf.len() || reads >= LEVEL_READS_PER_EVENT) {
                            break 'reading;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break 'reading,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break 'reading;
                    }
                }
            }
            conn.id
        };

        for packet in packets {
            let now = self.shared.now();
            let out = self.shared.broker.handle_packet(&id, packet.clone(), now);
            let routed = self.conns.get(token).and_then(|c| c.routed);
            let routed = match routed {
                Some(s) => Some(s),
                None => {
                    // CONNECT may just have been accepted: learn the
                    // routing shard and retire the pre-CONNECT deadline.
                    let assigned = self.shared.broker.shard_of_conn(&id);
                    if let Some(s) = assigned {
                        if let Some(conn) = self.conns.get_mut(token) {
                            conn.routed = Some(s);
                        }
                        self.pre_connect.remove(&token);
                    }
                    assigned
                }
            };
            if let Some(shard) = routed {
                self.shared.note_deadlines_for(shard, &packet, &out.actions);
            }
            self.shared.dispatch(out, Some(self.idx));
        }

        if failed || eof {
            self.teardown(token, true);
            return false;
        }
        true
    }

    // ----- deadlines ------------------------------------------------------

    /// Earliest loop-local socket deadline (pre-CONNECT grace,
    /// slow-consumer eviction), folded into the shard's poll timeout so
    /// these policies need no extra timer machinery.
    fn earliest_aux_deadline(&self) -> Option<u64> {
        min_deadline(
            self.pre_connect.values().min().copied(),
            self.write_blocked.values().min().copied(),
        )
    }

    fn expire_aux_deadlines(&mut self, now: u64) {
        let expired: Vec<u64> = self
            .pre_connect
            .iter()
            .filter(|&(_, &deadline)| deadline <= now)
            .map(|(&token, _)| token)
            .collect();
        for token in expired {
            // No CONNECT within the grace period.
            self.teardown(token, true);
        }
        let expired: Vec<u64> = self
            .write_blocked
            .iter()
            .filter(|&(_, &deadline)| deadline <= now)
            .map(|(&token, _)| token)
            .collect();
        for token in expired {
            // Slow consumer: jammed past write_timeout_ns.
            self.teardown(token, true);
        }
    }

    // ----- teardown -------------------------------------------------------

    /// Removes a connection from the loop, the poller and the global
    /// registry; `lost` additionally performs the broker-side session
    /// teardown (a no-op for sessions the broker already closed).
    fn teardown(&mut self, token: u64, lost: bool) {
        let Some(conn) = self.conns.remove(token) else {
            return;
        };
        self.tokens.remove(&conn.id);
        self.pre_connect.remove(&token);
        self.write_blocked.remove(&token);
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.shared.conns.write().remove(&conn.id);
        if lost {
            let now = self.shared.now();
            let out = self.shared.broker.connection_lost(&conn.id, now);
            self.shared.dispatch(out, Some(self.idx));
        }
        // conn.stream drops here, closing the socket.
    }

    fn teardown_all(&mut self) {
        for token in self.conns.tokens() {
            self.teardown(token, false);
        }
    }
}

/// A small blocking MQTT client over TCP.
///
/// Drives the sans-I/O [`Client`] session: connects synchronously, then
/// exposes publish/subscribe plus a polling receive. A background call to
/// [`TcpClient::drive`] (or any receive) pumps retransmissions.
pub struct TcpClient {
    stream: TcpStream,
    session: Client,
    decoder: StreamDecoder,
    epoch: Instant,
    inbox: Vec<Publish>,
}

impl std::fmt::Debug for TcpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClient")
            .field("id", &self.session.id())
            .finish_non_exhaustive()
    }
}

impl TcpClient {
    /// Connects to a broker and completes the MQTT session handshake.
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` for socket failures, a refused session, or
    /// a handshake timeout (2 s).
    pub fn connect(addr: impl ToSocketAddrs, client_id: &str) -> std::io::Result<TcpClient> {
        TcpClient::connect_with(addr, client_id, ClientConfig::default())
    }

    /// Connects with an explicit session configuration (retransmission
    /// timeout, clean-session flag, keep-alive).
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` for socket failures, a refused session, or
    /// a handshake timeout (2 s).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        client_id: &str,
        config: ClientConfig,
    ) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        stream.set_nodelay(true)?;
        let mut this = TcpClient {
            stream,
            session: Client::new(client_id, config),
            decoder: StreamDecoder::new(),
            epoch: Instant::now(),
            inbox: Vec::new(),
        };
        let connect = this
            .session
            .connect()
            .expect("fresh session can always connect");
        this.stream.write_all(&encode(&connect))?;
        let deadline = Instant::now() + Duration::from_secs(2);
        while this.session.state() != crate::client::ClientState::Connected {
            if Instant::now() > deadline {
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    "mqtt session handshake timed out",
                ));
            }
            this.drive()?;
        }
        Ok(this)
    }

    fn now(&self) -> u64 {
        now_ns(self.epoch)
    }

    /// QoS 1 publications awaiting PUBACK.
    pub fn inflight(&self) -> usize {
        self.session.inflight_count()
    }

    /// QoS 2 publications awaiting handshake completion.
    pub fn inflight2(&self) -> usize {
        self.session.inflight2_count()
    }

    /// Pumps the socket once: reads available bytes, handles packets,
    /// sends acknowledgements and retransmissions.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and protocol violations.
    pub fn drive(&mut self) -> std::io::Result<()> {
        let mut buf = [0u8; 4096];
        match self.stream.read(&mut buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::ConnectionReset,
                    "broker closed the connection",
                ))
            }
            Ok(n) => self.decoder.feed(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
        loop {
            match self.decoder.next_packet() {
                Ok(Some(packet)) => {
                    let now = self.now();
                    let (events, out) = self
                        .session
                        .handle_packet(packet, now)
                        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
                    for event in events {
                        if let ClientEvent::Message(p) = event {
                            self.inbox.push(p);
                        }
                    }
                    for p in out {
                        self.stream.write_all(&encode(&p))?;
                    }
                }
                Ok(None) => break,
                Err(e) => return Err(std::io::Error::new(ErrorKind::InvalidData, e.to_string())),
            }
        }
        let now = self.now();
        for p in self.session.poll(now) {
            self.stream.write_all(&encode(&p))?;
        }
        Ok(())
    }

    /// Publishes a message.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; `InvalidInput` for session misuse.
    pub fn publish(
        &mut self,
        topic: &str,
        payload: impl Into<bytes::Bytes>,
        qos: QoS,
        retain: bool,
    ) -> std::io::Result<()> {
        let topic = TopicName::new(topic)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        let now = self.now();
        let packet = self
            .session
            .publish(topic, payload, qos, retain, now)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        self.stream.write_all(&encode(&packet))
    }

    /// Subscribes to a filter and waits for the SUBACK (2 s timeout).
    ///
    /// # Errors
    ///
    /// Propagates socket errors; `InvalidInput` for a bad filter;
    /// `TimedOut` when no SUBACK arrives.
    pub fn subscribe(&mut self, filter: &str, qos: QoS) -> std::io::Result<()> {
        let filter = TopicFilter::new(filter)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        let now = self.now();
        let packet = self
            .session
            .subscribe(vec![(filter.clone(), qos)], now)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        self.stream.write_all(&encode(&packet))?;
        let deadline = Instant::now() + Duration::from_secs(2);
        while !self.session.subscriptions().contains(&filter) {
            if Instant::now() > deadline {
                return Err(std::io::Error::new(ErrorKind::TimedOut, "no suback"));
            }
            self.drive()?;
        }
        Ok(())
    }

    /// Receives the next message, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (timeouts return `Ok(None)`).
    pub fn recv(&mut self, timeout: Duration) -> std::io::Result<Option<Publish>> {
        let deadline = Instant::now() + timeout;
        loop {
            if !self.inbox.is_empty() {
                return Ok(Some(self.inbox.remove(0)));
            }
            if Instant::now() > deadline {
                return Ok(None);
            }
            self.drive()?;
        }
    }

    /// Sends DISCONNECT and closes the socket.
    pub fn disconnect(mut self) {
        let packet = self.session.disconnect();
        let _ = self.stream.write_all(&encode(&packet));
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_round_trip_qos0_and_retained() {
        let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
        let addr = broker.local_addr();

        let mut publisher = TcpClient::connect(addr, "pub").expect("connect");
        publisher
            .publish("conf/x", b"retained-v1".to_vec(), QoS::AtMostOnce, true)
            .expect("publish retained");

        let mut subscriber = TcpClient::connect(addr, "sub").expect("connect");
        subscriber
            .subscribe("conf/#", QoS::AtMostOnce)
            .expect("subscribe");
        // Retained message arrives on subscribe. If the SUBSCRIBE won the
        // race against the cross-shard retained replication, the first
        // copy arrives as a live forward (retain clear) — but that same
        // forward stored the retained slot before routing, so one
        // re-subscribe then observes it with the retain flag set.
        let mut retained = subscriber
            .recv(Duration::from_secs(2))
            .expect("recv ok")
            .expect("retained message");
        if !retained.retain {
            subscriber
                .subscribe("conf/#", QoS::AtMostOnce)
                .expect("re-subscribe");
            retained = subscriber
                .recv(Duration::from_secs(2))
                .expect("recv ok")
                .expect("retained copy");
        }
        assert_eq!(retained.payload.as_ref(), b"retained-v1");
        assert!(retained.retain);

        // Live publish flows through.
        publisher
            .publish("conf/y", b"live".to_vec(), QoS::AtMostOnce, false)
            .expect("publish");
        let live = subscriber
            .recv(Duration::from_secs(2))
            .expect("recv ok")
            .expect("live message");
        assert_eq!(live.payload.as_ref(), b"live");
        assert_eq!(broker.stats().clients_connected, 2);

        publisher.disconnect();
        subscriber.disconnect();
        broker.shutdown();
    }

    #[test]
    fn tcp_qos2_exactly_once() {
        let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
        let addr = broker.local_addr();
        let mut subscriber = TcpClient::connect(addr, "sub2").expect("connect");
        subscriber
            .subscribe("q2/#", QoS::ExactlyOnce)
            .expect("subscribe");
        let mut publisher = TcpClient::connect(addr, "pub2").expect("connect");
        for i in 0..5u8 {
            publisher
                .publish("q2/t", vec![i], QoS::ExactlyOnce, false)
                .expect("publish");
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.len() < 5 && Instant::now() < deadline {
            publisher.drive().expect("pump publisher");
            if let Some(p) = subscriber.recv(Duration::from_millis(100)).expect("recv") {
                got.push(p.payload[0]);
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        publisher.disconnect();
        subscriber.disconnect();
        broker.shutdown();
    }

    #[test]
    fn tcp_single_shard_still_serves() {
        let broker = TcpBroker::bind_with(
            "127.0.0.1:0",
            BrokerConfig {
                shards: 1,
                write_batch: 1,
                ..BrokerConfig::default()
            },
        )
        .expect("bind");
        let addr = broker.local_addr();
        let mut subscriber = TcpClient::connect(addr, "s1").expect("connect");
        subscriber
            .subscribe("t/#", QoS::AtMostOnce)
            .expect("subscribe");
        let mut publisher = TcpClient::connect(addr, "p1").expect("connect");
        publisher
            .publish("t/x", b"one-shard".to_vec(), QoS::AtMostOnce, false)
            .expect("publish");
        let got = subscriber
            .recv(Duration::from_secs(2))
            .expect("recv")
            .expect("message");
        assert_eq!(got.payload.as_ref(), b"one-shard");
        publisher.disconnect();
        subscriber.disconnect();
        broker.shutdown();
    }

    #[test]
    fn tcp_edge_triggered_round_trip() {
        let broker = TcpBroker::bind_with(
            "127.0.0.1:0",
            BrokerConfig {
                shards: 2,
                edge_triggered: true,
                ..BrokerConfig::default()
            },
        )
        .expect("bind");
        let addr = broker.local_addr();
        let mut subscriber = TcpClient::connect(addr, "et-sub").expect("connect");
        subscriber
            .subscribe("et/#", QoS::AtLeastOnce)
            .expect("subscribe");
        let mut publisher = TcpClient::connect(addr, "et-pub").expect("connect");
        for i in 0..10u8 {
            publisher
                .publish("et/t", vec![i], QoS::AtLeastOnce, false)
                .expect("publish");
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.len() < 10 && Instant::now() < deadline {
            publisher.drive().expect("drive");
            if let Some(p) = subscriber.recv(Duration::from_millis(50)).expect("recv") {
                got.push(p.payload[0]);
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<u8>>());
        publisher.disconnect();
        subscriber.disconnect();
        broker.shutdown();
    }

    #[test]
    fn tcp_idle_broker_makes_no_timer_wakeups() {
        let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
        // No connections, no deadlines: every loop parks indefinitely.
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(
            broker.timer_wakeups(),
            0,
            "the old transport would have woken ~3 times per shard here"
        );
        broker.shutdown();
    }

    #[test]
    fn tcp_cross_shard_fanout_reaches_all_subscribers() {
        let broker = TcpBroker::bind_with(
            "127.0.0.1:0",
            BrokerConfig {
                shards: 4,
                ..BrokerConfig::default()
            },
        )
        .expect("bind");
        let addr = broker.local_addr();
        // Enough subscribers that every shard almost surely owns one.
        let mut subs: Vec<TcpClient> = (0..12)
            .map(|i| {
                let mut c = TcpClient::connect(addr, &format!("fan-sub-{i}")).expect("connect");
                c.subscribe("fan/#", QoS::AtMostOnce).expect("subscribe");
                c
            })
            .collect();
        let mut publisher = TcpClient::connect(addr, "fan-pub").expect("connect");
        publisher
            .publish("fan/x", b"blast".to_vec(), QoS::AtMostOnce, false)
            .expect("publish");
        for (i, sub) in subs.iter_mut().enumerate() {
            let got = sub
                .recv(Duration::from_secs(2))
                .expect("recv")
                .unwrap_or_else(|| panic!("subscriber {i} missed the fan-out"));
            assert_eq!(got.payload.as_ref(), b"blast");
        }
        publisher.disconnect();
        for sub in subs {
            sub.disconnect();
        }
        broker.shutdown();
    }

    #[test]
    fn accept_errors_classify_correctly() {
        let emfile = std::io::Error::from_raw_os_error(24);
        let enfile = std::io::Error::from_raw_os_error(23);
        assert_eq!(classify_accept_error(&emfile), AcceptDisposition::Backoff);
        assert_eq!(classify_accept_error(&enfile), AcceptDisposition::Backoff);
        let aborted = std::io::Error::new(ErrorKind::ConnectionAborted, "aborted");
        let interrupted = std::io::Error::new(ErrorKind::Interrupted, "eintr");
        assert_eq!(classify_accept_error(&aborted), AcceptDisposition::Retry);
        assert_eq!(
            classify_accept_error(&interrupted),
            AcceptDisposition::Retry
        );
        let fatal = std::io::Error::new(ErrorKind::InvalidInput, "bad listener");
        assert_eq!(classify_accept_error(&fatal), AcceptDisposition::Stop);
    }

    #[test]
    fn dirty_marking_is_deduplicated_per_flush_cycle() {
        let (shared, _parts) = Shared::new(BrokerConfig {
            shards: 2,
            ..BrokerConfig::default()
        })
        .expect("shared");
        let state = Arc::new(ConnShared::new(0));
        shared.conns.write().insert(7, Arc::clone(&state));

        // Many enqueues between flushes → one dirty entry.
        for _ in 0..5 {
            shared.enqueue(7, Bytes::from_static(b"frame"), None);
        }
        assert_eq!(shared.loops[0].dirty.lock().len(), 1);
        assert_eq!(state.queue.lock().len(), 5);

        // A close on an already-dirty connection adds no second entry.
        shared.close_conn(7, None);
        assert_eq!(shared.loops[0].dirty.lock().len(), 1);
        assert!(state.closing.load(Ordering::Acquire));

        // After the owner clears the flag (flush protocol), the next
        // producer re-marks exactly once.
        shared.loops[0].dirty.lock().clear();
        state.in_dirty.store(false, Ordering::Release);
        shared.enqueue(7, Bytes::from_static(b"a"), None);
        shared.enqueue(7, Bytes::from_static(b"b"), None);
        assert_eq!(shared.loops[0].dirty.lock().len(), 1);
    }

    #[test]
    fn max_connections_refuses_the_overflow() {
        let broker = TcpBroker::bind_with(
            "127.0.0.1:0",
            BrokerConfig {
                shards: 1,
                max_connections: 2,
                ..BrokerConfig::default()
            },
        )
        .expect("bind");
        let addr = broker.local_addr();
        let a = TcpClient::connect(addr, "adm-a").expect("first admitted");
        let b = TcpClient::connect(addr, "adm-b").expect("second admitted");
        // The third is dropped at the listener: the handshake cannot
        // complete.
        let refused = TcpClient::connect(addr, "adm-c");
        assert!(refused.is_err(), "third connection should be refused");
        assert!(broker.refused_connections() >= 1);
        a.disconnect();
        b.disconnect();
        broker.shutdown();
    }

    /// A subscriber that stops reading gets evicted at `write_timeout_ns`
    /// while the shard loop keeps serving everyone else — the loop never
    /// blocks on the jammed socket.
    #[test]
    fn slow_consumer_is_evicted_without_stalling_the_loop() {
        let broker = TcpBroker::bind_with(
            "127.0.0.1:0",
            BrokerConfig {
                shards: 1,
                write_timeout_ns: 300_000_000, // 300 ms
                ..BrokerConfig::default()
            },
        )
        .expect("bind");
        let addr = broker.local_addr();

        let mut slow = TcpClient::connect(addr, "slow-sub").expect("connect slow");
        slow.subscribe("flood/#", QoS::AtMostOnce).expect("sub");
        let mut healthy = TcpClient::connect(addr, "healthy-sub").expect("connect healthy");
        healthy.subscribe("flood/#", QoS::AtMostOnce).expect("sub");
        let mut publisher = TcpClient::connect(addr, "flood-pub").expect("connect pub");
        assert_eq!(broker.stats().clients_connected, 3);

        // `slow` now stops reading entirely. Flood until its kernel
        // buffers jam; drain `healthy` along the way so it stays fast.
        let payload = vec![0u8; 16 * 1024];
        for _ in 0..40 {
            for _ in 0..16 {
                publisher
                    .publish("flood/x", payload.clone(), QoS::AtMostOnce, false)
                    .expect("publish");
            }
            while healthy
                .recv(Duration::from_millis(1))
                .expect("healthy recv")
                .is_some()
            {}
            if broker.stats().clients_connected < 3 {
                break;
            }
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while broker.stats().clients_connected == 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(
            broker.stats().clients_connected,
            2,
            "slow consumer was never evicted"
        );

        // The loop is alive and routing: a fresh publish reaches the
        // healthy subscriber promptly.
        while healthy
            .recv(Duration::from_millis(1))
            .expect("healthy drain")
            .is_some()
        {}
        publisher
            .publish("flood/done", b"marker".to_vec(), QoS::AtMostOnce, false)
            .expect("publish marker");
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut saw_marker = false;
        while Instant::now() < deadline && !saw_marker {
            if let Some(p) = healthy.recv(Duration::from_millis(100)).expect("recv") {
                saw_marker = p.payload.as_ref() == b"marker";
            }
        }
        assert!(saw_marker, "loop stalled after the eviction");
        publisher.disconnect();
        healthy.disconnect();
        broker.shutdown();
    }
}
