//! Blocking TCP transport: run the sans-I/O broker and client over real
//! sockets (std only, no async runtime).
//!
//! This is the deployment face of the substrate: [`TcpBroker`] serves
//! MQTT on a socket address exactly like Mosquitto would, and
//! [`TcpClient`] is a small blocking client. Internally both reuse the
//! identical state machines the simulator exercises — the transport only
//! moves bytes and timestamps.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::broker::{Action, Broker, BrokerConfig};
use crate::client::{Client, ClientConfig, ClientEvent};
use crate::codec::{encode, StreamDecoder};
use crate::packet::{Publish, QoS};
use crate::topic::{TopicFilter, TopicName};

fn now_ns(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos() as u64
}

struct Shared {
    broker: Mutex<Broker<usize>>,
    writers: Mutex<HashMap<usize, TcpStream>>,
    epoch: Instant,
    shutdown: AtomicBool,
    next_conn: AtomicUsize,
}

impl Shared {
    fn apply(&self, actions: Vec<Action<usize>>) {
        let mut writers = self.writers.lock();
        for action in actions {
            match action {
                Action::Send { conn, packet } => {
                    if let Some(stream) = writers.get_mut(&conn) {
                        let _ = stream.write_all(&encode(&packet));
                    }
                }
                // Pre-encoded fan-out frame: write the shared bytes as-is.
                Action::SendFrame { conn, frame } => {
                    if let Some(stream) = writers.get_mut(&conn) {
                        let _ = stream.write_all(&frame);
                    }
                }
                Action::Close { conn } => {
                    if let Some(stream) = writers.remove(&conn) {
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                    }
                }
            }
        }
    }
}

/// A broker served over TCP on a background thread pool.
///
/// ```no_run
/// use ifot_mqtt::net::TcpBroker;
///
/// let broker = TcpBroker::bind("127.0.0.1:1883")?;
/// println!("serving MQTT on {}", broker.local_addr());
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct TcpBroker {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    poll_handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for TcpBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpBroker")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl TcpBroker {
    /// Binds and starts serving with the default broker configuration.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<TcpBroker> {
        TcpBroker::bind_with(addr, BrokerConfig::default())
    }

    /// Binds and starts serving with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        config: BrokerConfig,
    ) -> std::io::Result<TcpBroker> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            broker: Mutex::new(Broker::with_config(config)),
            writers: Mutex::new(HashMap::new()),
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
            next_conn: AtomicUsize::new(1),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("mqtt-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawning the accept thread succeeds");

        let poll_shared = Arc::clone(&shared);
        let poll_handle = std::thread::Builder::new()
            .name("mqtt-poll".into())
            .spawn(move || {
                while !poll_shared.shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(100));
                    let now = now_ns(poll_shared.epoch);
                    let actions = poll_shared.broker.lock().poll(now);
                    poll_shared.apply(actions);
                }
            })
            .expect("spawning the poll thread succeeds");

        Ok(TcpBroker {
            shared,
            local_addr,
            accept_handle: Some(accept_handle),
            poll_handle: Some(poll_handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the broker statistics.
    pub fn stats(&self) -> crate::broker::BrokerStats {
        self.shared.broker.lock().stats()
    }

    /// Stops serving and joins the background threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Close every live connection so reader threads exit.
        {
            let mut writers = self.shared.writers.lock();
            for (_, stream) in writers.drain() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.poll_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpBroker {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                let now = now_ns(shared.epoch);
                if stream.set_read_timeout(Some(Duration::from_millis(100))).is_err() {
                    continue;
                }
                if let Ok(writer) = stream.try_clone() {
                    shared.writers.lock().insert(conn, writer);
                    shared.broker.lock().connection_opened(conn, now);
                    let conn_shared = Arc::clone(&shared);
                    let _ = std::thread::Builder::new()
                        .name(format!("mqtt-conn-{conn}"))
                        .spawn(move || reader_loop(stream, conn, conn_shared));
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }
}

fn reader_loop(mut stream: TcpStream, conn: usize, shared: Arc<Shared>) {
    let mut decoder = StreamDecoder::new();
    let mut buf = [0u8; 4096];
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => break, // peer closed
            Ok(n) => {
                decoder.feed(&buf[..n]);
                loop {
                    match decoder.next_packet() {
                        Ok(Some(packet)) => {
                            let now = now_ns(shared.epoch);
                            let actions = shared.broker.lock().handle_packet(&conn, packet, now);
                            shared.apply(actions);
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Broken stream: tear the connection down.
                            let now = now_ns(shared.epoch);
                            let actions = shared.broker.lock().connection_lost(&conn, now);
                            shared.apply(actions);
                            shared.writers.lock().remove(&conn);
                            return;
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(_) => break,
        }
    }
    let now = now_ns(shared.epoch);
    let actions = shared.broker.lock().connection_lost(&conn, now);
    shared.apply(actions);
    shared.writers.lock().remove(&conn);
}

/// A small blocking MQTT client over TCP.
///
/// Drives the sans-I/O [`Client`] session: connects synchronously, then
/// exposes publish/subscribe plus a polling receive. A background call to
/// [`TcpClient::drive`] (or any receive) pumps retransmissions.
pub struct TcpClient {
    stream: TcpStream,
    session: Client,
    decoder: StreamDecoder,
    epoch: Instant,
    inbox: Vec<Publish>,
}

impl std::fmt::Debug for TcpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClient")
            .field("id", &self.session.id())
            .finish_non_exhaustive()
    }
}

impl TcpClient {
    /// Connects to a broker and completes the MQTT session handshake.
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` for socket failures, a refused session, or
    /// a handshake timeout (2 s).
    pub fn connect(addr: impl ToSocketAddrs, client_id: &str) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        stream.set_nodelay(true)?;
        let mut this = TcpClient {
            stream,
            session: Client::new(client_id, ClientConfig::default()),
            decoder: StreamDecoder::new(),
            epoch: Instant::now(),
            inbox: Vec::new(),
        };
        let connect = this
            .session
            .connect()
            .expect("fresh session can always connect");
        this.stream.write_all(&encode(&connect))?;
        let deadline = Instant::now() + Duration::from_secs(2);
        while this.session.state() != crate::client::ClientState::Connected {
            if Instant::now() > deadline {
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    "mqtt session handshake timed out",
                ));
            }
            this.drive()?;
        }
        Ok(this)
    }

    fn now(&self) -> u64 {
        now_ns(self.epoch)
    }

    /// Pumps the socket once: reads available bytes, handles packets,
    /// sends acknowledgements and retransmissions.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and protocol violations.
    pub fn drive(&mut self) -> std::io::Result<()> {
        let mut buf = [0u8; 4096];
        match self.stream.read(&mut buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::ConnectionReset,
                    "broker closed the connection",
                ))
            }
            Ok(n) => self.decoder.feed(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
        loop {
            match self.decoder.next_packet() {
                Ok(Some(packet)) => {
                    let now = self.now();
                    let (events, out) = self
                        .session
                        .handle_packet(packet, now)
                        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
                    for event in events {
                        if let ClientEvent::Message(p) = event {
                            self.inbox.push(p);
                        }
                    }
                    for p in out {
                        self.stream.write_all(&encode(&p))?;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    return Err(std::io::Error::new(ErrorKind::InvalidData, e.to_string()))
                }
            }
        }
        let now = self.now();
        for p in self.session.poll(now) {
            self.stream.write_all(&encode(&p))?;
        }
        Ok(())
    }

    /// Publishes a message.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; `InvalidInput` for session misuse.
    pub fn publish(
        &mut self,
        topic: &str,
        payload: impl Into<bytes::Bytes>,
        qos: QoS,
        retain: bool,
    ) -> std::io::Result<()> {
        let topic = TopicName::new(topic)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        let now = self.now();
        let packet = self
            .session
            .publish(topic, payload, qos, retain, now)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        self.stream.write_all(&encode(&packet))
    }

    /// Subscribes to a filter and waits for the SUBACK (2 s timeout).
    ///
    /// # Errors
    ///
    /// Propagates socket errors; `InvalidInput` for a bad filter;
    /// `TimedOut` when no SUBACK arrives.
    pub fn subscribe(&mut self, filter: &str, qos: QoS) -> std::io::Result<()> {
        let filter = TopicFilter::new(filter)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        let now = self.now();
        let packet = self
            .session
            .subscribe(vec![(filter.clone(), qos)], now)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        self.stream.write_all(&encode(&packet))?;
        let deadline = Instant::now() + Duration::from_secs(2);
        while !self.session.subscriptions().contains(&filter) {
            if Instant::now() > deadline {
                return Err(std::io::Error::new(ErrorKind::TimedOut, "no suback"));
            }
            self.drive()?;
        }
        Ok(())
    }

    /// Receives the next message, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (timeouts return `Ok(None)`).
    pub fn recv(&mut self, timeout: Duration) -> std::io::Result<Option<Publish>> {
        let deadline = Instant::now() + timeout;
        loop {
            if !self.inbox.is_empty() {
                return Ok(Some(self.inbox.remove(0)));
            }
            if Instant::now() > deadline {
                return Ok(None);
            }
            self.drive()?;
        }
    }

    /// Sends DISCONNECT and closes the socket.
    pub fn disconnect(mut self) {
        let packet = self.session.disconnect();
        let _ = self.stream.write_all(&encode(&packet));
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_round_trip_qos0_and_retained() {
        let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
        let addr = broker.local_addr();

        let mut publisher = TcpClient::connect(addr, "pub").expect("connect");
        publisher
            .publish("conf/x", b"retained-v1".to_vec(), QoS::AtMostOnce, true)
            .expect("publish retained");

        let mut subscriber = TcpClient::connect(addr, "sub").expect("connect");
        subscriber
            .subscribe("conf/#", QoS::AtMostOnce)
            .expect("subscribe");
        // Retained message arrives on subscribe.
        let retained = subscriber
            .recv(Duration::from_secs(2))
            .expect("recv ok")
            .expect("retained message");
        assert_eq!(retained.payload.as_ref(), b"retained-v1");
        assert!(retained.retain);

        // Live publish flows through.
        publisher
            .publish("conf/y", b"live".to_vec(), QoS::AtMostOnce, false)
            .expect("publish");
        let live = subscriber
            .recv(Duration::from_secs(2))
            .expect("recv ok")
            .expect("live message");
        assert_eq!(live.payload.as_ref(), b"live");
        assert_eq!(broker.stats().clients_connected, 2);

        publisher.disconnect();
        subscriber.disconnect();
        broker.shutdown();
    }

    #[test]
    fn tcp_qos2_exactly_once() {
        let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
        let addr = broker.local_addr();
        let mut subscriber = TcpClient::connect(addr, "sub2").expect("connect");
        subscriber
            .subscribe("q2/#", QoS::ExactlyOnce)
            .expect("subscribe");
        let mut publisher = TcpClient::connect(addr, "pub2").expect("connect");
        for i in 0..5u8 {
            publisher
                .publish("q2/t", vec![i], QoS::ExactlyOnce, false)
                .expect("publish");
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.len() < 5 && Instant::now() < deadline {
            publisher.drive().expect("pump publisher");
            if let Some(p) = subscriber.recv(Duration::from_millis(100)).expect("recv") {
                got.push(p.payload[0]);
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        publisher.disconnect();
        subscriber.disconnect();
        broker.shutdown();
    }
}
