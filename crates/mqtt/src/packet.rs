//! MQTT 3.1.1 control packet model.
//!
//! Implemented: CONNECT / CONNACK, PUBLISH at QoS 0/1/2 with the full
//! acknowledgement flows (PUBACK, PUBREC / PUBREL / PUBCOMP),
//! SUBSCRIBE / SUBACK, UNSUBSCRIBE / UNSUBACK, PINGREQ / PINGRESP and
//! DISCONNECT — the protocol surface Mosquitto exercised in the paper's
//! prototype.

use bytes::Bytes;

use crate::topic::{TopicFilter, TopicName};

/// Message delivery quality of service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum QoS {
    /// Fire and forget.
    #[default]
    AtMostOnce = 0,
    /// Acknowledged delivery (PUBACK), retransmitted until acked.
    AtLeastOnce = 1,
    /// Exactly-once handshake (PUBREC/PUBREL/PUBCOMP).
    ExactlyOnce = 2,
}

impl QoS {
    /// Parses the two-bit QoS field.
    ///
    /// # Errors
    ///
    /// Returns the raw value if it is not 0, 1 or 2.
    pub fn from_bits(bits: u8) -> Result<QoS, u8> {
        match bits {
            0 => Ok(QoS::AtMostOnce),
            1 => Ok(QoS::AtLeastOnce),
            2 => Ok(QoS::ExactlyOnce),
            other => Err(other),
        }
    }

    /// The two-bit wire representation.
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// The lower of two QoS levels (used when granting subscriptions).
    pub fn min(self, other: QoS) -> QoS {
        if (self as u8) <= (other as u8) {
            self
        } else {
            other
        }
    }
}

/// Packet identifier for acknowledged flows (never zero on the wire).
pub type PacketId = u16;

/// CONNACK return codes (3.1.1 §3.2.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnectReturnCode {
    /// Connection accepted.
    Accepted,
    /// The protocol level is not supported.
    UnacceptableProtocolVersion,
    /// The client identifier is not allowed.
    IdentifierRejected,
    /// The service is unavailable.
    ServerUnavailable,
    /// Bad user name or password.
    BadCredentials,
    /// The client is not authorized.
    NotAuthorized,
}

impl ConnectReturnCode {
    /// Wire byte of the code.
    pub fn to_byte(self) -> u8 {
        match self {
            ConnectReturnCode::Accepted => 0,
            ConnectReturnCode::UnacceptableProtocolVersion => 1,
            ConnectReturnCode::IdentifierRejected => 2,
            ConnectReturnCode::ServerUnavailable => 3,
            ConnectReturnCode::BadCredentials => 4,
            ConnectReturnCode::NotAuthorized => 5,
        }
    }

    /// Parses the wire byte.
    ///
    /// # Errors
    ///
    /// Returns the raw value for unknown codes.
    pub fn from_byte(b: u8) -> Result<Self, u8> {
        Ok(match b {
            0 => ConnectReturnCode::Accepted,
            1 => ConnectReturnCode::UnacceptableProtocolVersion,
            2 => ConnectReturnCode::IdentifierRejected,
            3 => ConnectReturnCode::ServerUnavailable,
            4 => ConnectReturnCode::BadCredentials,
            5 => ConnectReturnCode::NotAuthorized,
            other => return Err(other),
        })
    }
}

/// A will message published by the broker when a client vanishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LastWill {
    /// Topic the will is published to.
    pub topic: TopicName,
    /// Will payload (cheaply cloneable, shared).
    pub payload: Bytes,
    /// QoS of the will publication.
    pub qos: QoS,
    /// Whether the will is retained.
    pub retain: bool,
}

/// CONNECT packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connect {
    /// Client identifier (may be empty only with `clean_session`).
    pub client_id: String,
    /// Whether the broker must discard prior session state.
    pub clean_session: bool,
    /// Keep-alive interval in seconds (0 disables).
    pub keep_alive_secs: u16,
    /// Optional will message.
    pub will: Option<LastWill>,
    /// Optional user name.
    pub username: Option<String>,
    /// Optional password bytes.
    pub password: Option<Bytes>,
}

impl Connect {
    /// A plain clean-session connect with the given client id.
    pub fn new(client_id: impl Into<String>) -> Self {
        Connect {
            client_id: client_id.into(),
            clean_session: true,
            keep_alive_secs: 60,
            will: None,
            username: None,
            password: None,
        }
    }
}

/// CONNACK packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Connack {
    /// Whether the broker resumed stored session state.
    pub session_present: bool,
    /// Accept/refuse code.
    pub code: ConnectReturnCode,
}

/// PUBLISH packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Publish {
    /// Duplicate redelivery flag.
    pub dup: bool,
    /// Delivery QoS.
    pub qos: QoS,
    /// Retain flag.
    pub retain: bool,
    /// Destination topic.
    pub topic: TopicName,
    /// Packet id; present iff `qos > 0`.
    pub packet_id: Option<PacketId>,
    /// Application payload. Stored as [`Bytes`] so one allocation made at
    /// the producer is reference-shared through codec, broker fan-out,
    /// inflight/retained state and every subscriber without copying.
    pub payload: Bytes,
}

impl Publish {
    /// A QoS 0 publication.
    pub fn qos0(topic: TopicName, payload: impl Into<Bytes>) -> Self {
        Publish {
            dup: false,
            qos: QoS::AtMostOnce,
            retain: false,
            topic,
            packet_id: None,
            payload: payload.into(),
        }
    }

    /// A QoS 1 publication with the given packet id.
    pub fn qos1(topic: TopicName, payload: impl Into<Bytes>, packet_id: PacketId) -> Self {
        Publish {
            dup: false,
            qos: QoS::AtLeastOnce,
            retain: false,
            topic,
            packet_id: Some(packet_id),
            payload: payload.into(),
        }
    }
}

/// One (filter, requested QoS) pair inside SUBSCRIBE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscribeFilter {
    /// The requested filter.
    pub filter: TopicFilter,
    /// The maximum QoS the subscriber wants.
    pub qos: QoS,
}

/// SUBSCRIBE packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subscribe {
    /// Packet id of the request.
    pub packet_id: PacketId,
    /// Requested filters (non-empty).
    pub filters: Vec<SubscribeFilter>,
}

/// Per-filter SUBACK result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubackCode {
    /// Granted with the contained maximum QoS.
    Granted(QoS),
    /// The subscription was refused.
    Failure,
}

impl SubackCode {
    /// Wire byte of the code.
    pub fn to_byte(self) -> u8 {
        match self {
            SubackCode::Granted(q) => q.bits(),
            SubackCode::Failure => 0x80,
        }
    }

    /// Parses the wire byte.
    ///
    /// # Errors
    ///
    /// Returns the raw value for bytes that are neither a QoS nor 0x80.
    pub fn from_byte(b: u8) -> Result<Self, u8> {
        if b == 0x80 {
            Ok(SubackCode::Failure)
        } else {
            QoS::from_bits(b).map(SubackCode::Granted)
        }
    }
}

/// SUBACK packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suback {
    /// Packet id being answered.
    pub packet_id: PacketId,
    /// One code per requested filter, in order.
    pub codes: Vec<SubackCode>,
}

/// UNSUBSCRIBE packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unsubscribe {
    /// Packet id of the request.
    pub packet_id: PacketId,
    /// Filters to remove (non-empty).
    pub filters: Vec<TopicFilter>,
}

/// Any MQTT control packet of the implemented subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Client → broker session open.
    Connect(Connect),
    /// Broker → client session accept/refuse.
    Connack(Connack),
    /// Application message, either direction.
    Publish(Publish),
    /// QoS 1 acknowledgement.
    Puback(PacketId),
    /// QoS 2 step 1: receiver got the publish.
    Pubrec(PacketId),
    /// QoS 2 step 2: sender releases the message.
    Pubrel(PacketId),
    /// QoS 2 step 3: receiver completed the handshake.
    Pubcomp(PacketId),
    /// Subscription request.
    Subscribe(Subscribe),
    /// Subscription acknowledgement.
    Suback(Suback),
    /// Unsubscription request.
    Unsubscribe(Unsubscribe),
    /// Unsubscription acknowledgement.
    Unsuback(PacketId),
    /// Keep-alive probe.
    Pingreq,
    /// Keep-alive answer.
    Pingresp,
    /// Orderly session close.
    Disconnect,
}

impl Packet {
    /// The packet-type nibble used in the fixed header.
    pub fn packet_type(&self) -> u8 {
        match self {
            Packet::Connect(_) => 1,
            Packet::Connack(_) => 2,
            Packet::Publish(_) => 3,
            Packet::Puback(_) => 4,
            Packet::Pubrec(_) => 5,
            Packet::Pubrel(_) => 6,
            Packet::Pubcomp(_) => 7,
            Packet::Subscribe(_) => 8,
            Packet::Suback(_) => 9,
            Packet::Unsubscribe(_) => 10,
            Packet::Unsuback(_) => 11,
            Packet::Pingreq => 12,
            Packet::Pingresp => 13,
            Packet::Disconnect => 14,
        }
    }

    /// A short human-readable packet-kind label.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Packet::Connect(_) => "CONNECT",
            Packet::Connack(_) => "CONNACK",
            Packet::Publish(_) => "PUBLISH",
            Packet::Puback(_) => "PUBACK",
            Packet::Pubrec(_) => "PUBREC",
            Packet::Pubrel(_) => "PUBREL",
            Packet::Pubcomp(_) => "PUBCOMP",
            Packet::Subscribe(_) => "SUBSCRIBE",
            Packet::Suback(_) => "SUBACK",
            Packet::Unsubscribe(_) => "UNSUBSCRIBE",
            Packet::Unsuback(_) => "UNSUBACK",
            Packet::Pingreq => "PINGREQ",
            Packet::Pingresp => "PINGRESP",
            Packet::Disconnect => "DISCONNECT",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_bits_round_trip() {
        for q in [QoS::AtMostOnce, QoS::AtLeastOnce, QoS::ExactlyOnce] {
            assert_eq!(QoS::from_bits(q.bits()), Ok(q));
        }
        assert_eq!(QoS::from_bits(3), Err(3));
    }

    #[test]
    fn qos_min_grants_lower() {
        assert_eq!(QoS::AtLeastOnce.min(QoS::AtMostOnce), QoS::AtMostOnce);
        assert_eq!(QoS::AtMostOnce.min(QoS::ExactlyOnce), QoS::AtMostOnce);
        assert_eq!(QoS::AtLeastOnce.min(QoS::AtLeastOnce), QoS::AtLeastOnce);
    }

    #[test]
    fn return_codes_round_trip() {
        for b in 0..=5u8 {
            let code = ConnectReturnCode::from_byte(b).expect("known code");
            assert_eq!(code.to_byte(), b);
        }
        assert_eq!(ConnectReturnCode::from_byte(9), Err(9));
    }

    #[test]
    fn suback_codes_round_trip() {
        for b in [0u8, 1, 2, 0x80] {
            let c = SubackCode::from_byte(b).expect("known code");
            assert_eq!(c.to_byte(), b);
        }
        assert_eq!(SubackCode::from_byte(0x7f), Err(0x7f));
    }

    #[test]
    fn constructors_set_qos() {
        let t = TopicName::new("a").expect("valid");
        let p0 = Publish::qos0(t.clone(), vec![1]);
        assert_eq!(p0.qos, QoS::AtMostOnce);
        assert_eq!(p0.packet_id, None);
        let p1 = Publish::qos1(t, vec![1], 7);
        assert_eq!(p1.qos, QoS::AtLeastOnce);
        assert_eq!(p1.packet_id, Some(7));
    }

    #[test]
    fn packet_types_match_spec() {
        let t = TopicName::new("a").expect("valid");
        assert_eq!(Packet::Connect(Connect::new("c")).packet_type(), 1);
        assert_eq!(Packet::Publish(Publish::qos0(t, vec![])).packet_type(), 3);
        assert_eq!(Packet::Pingreq.packet_type(), 12);
        assert_eq!(Packet::Disconnect.packet_type(), 14);
        assert_eq!(Packet::Pingresp.kind_name(), "PINGRESP");
    }
}
