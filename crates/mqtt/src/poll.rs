//! # Thin readiness poller — epoll on Linux, `poll(2)` elsewhere
//!
//! The C10K front-end rewrite (`net.rs`) replaced one OS thread per
//! connection with one event loop per routing shard; this module is the
//! loop's only OS-facing dependency. It is deliberately minimal — four
//! operations (`register`, `reregister`, `deregister`, `wait`) plus a
//! cross-thread [`Waker`] — so the transport code reads like the sans-I/O
//! state machines it drives and the platform surface stays auditable.
//!
//! No external crate is used: the symbols (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `poll`, `getrlimit`, `close`) come straight from the
//! platform C library that `std` already links.
//!
//! ## Backends
//!
//! * **Linux**: `epoll`, the readiness API every production MQTT broker
//!   sits on. Level-triggered by default; [`Poller::register`] takes an
//!   `edge` flag that arms `EPOLLET` for callers that drain to
//!   `WouldBlock` on every event (see `BrokerConfig::edge_triggered`).
//! * **Other Unix**: a portable `poll(2)` fallback that rebuilds the
//!   `pollfd` array from a registration map on every wait. O(n) per call
//!   — fine for tests and small deployments, not for C10K — and always
//!   level-triggered (the `edge` flag is ignored).
//!
//! ## Wake protocol
//!
//! [`Waker`] is a self-pipe (a `UnixStream` pair, both ends
//! nonblocking). [`Waker::wake`] writes one byte; the read end is
//! registered in the poller under [`WAKE_TOKEN`], so a parked
//! [`Poller::wait`] returns immediately. Bytes accumulate until the loop
//! calls [`Poller::drain_waker`], which means a wake can never be lost:
//! a producer that signals between the loop's last drain and its next
//! `wait` leaves the pipe readable and the `wait` returns at once. A
//! full pipe is equivalent to a pending wake, so `wake` ignores
//! `WouldBlock`.

use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// Token reserved for the poller's own wake pipe; never returned for a
/// registered connection (the slab's generation arithmetic cannot
/// produce it).
pub const WAKE_TOKEN: u64 = u64::MAX;

/// Readiness interest for one registered descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Notify when the descriptor becomes readable (or hung up).
    pub readable: bool,
    /// Notify when the descriptor becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Read-readiness only — the steady state of a drained connection.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read and write readiness — armed only while a partial write left
    /// outbound bytes stranded (re-arming `EPOLLOUT` permanently would
    /// busy-wake on every always-writable socket).
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event. Error/hang-up conditions are folded into both
/// directions so the owner discovers the failure from the `read`/`write`
/// call itself (single error path, no separate teardown branch).
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token supplied at registration ([`WAKE_TOKEN`] for the wake
    /// pipe).
    pub token: u64,
    /// Readable, peer-closed, or errored.
    pub readable: bool,
    /// Writable or errored.
    pub writable: bool,
}

/// Cross-thread wake handle for a [`Poller`] (clone freely; all clones
/// share one pipe).
#[derive(Debug, Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Makes the owning poller's `wait` return promptly. Cheap,
    /// non-blocking, and idempotent between drains: coalescing producers
    /// cost one byte in a pipe, not one syscall per frame.
    pub fn wake(&self) {
        use std::io::Write;
        // WouldBlock = pipe already full of wakes = owner will wake.
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// Raw C-library bindings shared by both backends. `std` links the
/// platform libc, so plain `extern "C"` declarations resolve without any
/// crate dependency.
mod sys {
    use std::os::raw::c_int;
    #[cfg(all(unix, not(target_os = "linux")))]
    use std::os::raw::c_ulong;

    #[cfg(target_os = "linux")]
    pub const EPOLLIN: u32 = 0x001;
    #[cfg(target_os = "linux")]
    pub const EPOLLOUT: u32 = 0x004;
    #[cfg(target_os = "linux")]
    pub const EPOLLERR: u32 = 0x008;
    #[cfg(target_os = "linux")]
    pub const EPOLLHUP: u32 = 0x010;
    #[cfg(target_os = "linux")]
    pub const EPOLLRDHUP: u32 = 0x2000;
    #[cfg(target_os = "linux")]
    pub const EPOLLET: u32 = 1 << 31;

    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_ADD: c_int = 1;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_DEL: c_int = 2;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_MOD: c_int = 3;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CLOEXEC: c_int = 0x80000;

    #[cfg(all(unix, not(target_os = "linux")))]
    pub const POLLIN: i16 = 0x001;
    #[cfg(all(unix, not(target_os = "linux")))]
    pub const POLLOUT: i16 = 0x004;
    #[cfg(all(unix, not(target_os = "linux")))]
    pub const POLLERR: i16 = 0x008;
    #[cfg(all(unix, not(target_os = "linux")))]
    pub const POLLHUP: i16 = 0x010;

    pub const RLIMIT_NOFILE: c_int = 7;

    /// `struct epoll_event`. Packed on x86-64 (the kernel ABI there),
    /// naturally aligned everywhere else — the same layout dance libc
    /// performs.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// `struct pollfd` for the portable fallback.
    #[cfg(all(unix, not(target_os = "linux")))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    /// `struct rlimit` (both fields are `rlim_t`, a 64-bit unsigned on
    /// every modern Unix).
    #[repr(C)]
    pub struct RLimit {
        pub cur: u64,
        pub max: u64,
    }

    extern "C" {
        #[cfg(target_os = "linux")]
        pub fn epoll_create1(flags: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        #[cfg(all(unix, not(target_os = "linux")))]
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn close(fd: c_int) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    }
}

/// The process's soft open-file limit (`RLIMIT_NOFILE`), used by the
/// C10K tests and bench to size connection counts to the host instead of
/// dying on `EMFILE`.
pub fn nofile_limit() -> Option<u64> {
    let mut lim = sys::RLimit { cur: 0, max: 0 };
    // SAFETY: getrlimit writes the out-param on success and touches
    // nothing else.
    let rc = unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) };
    if rc == 0 {
        Some(lim.cur)
    } else {
        None
    }
}

fn duration_to_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            if d.is_zero() {
                0
            } else {
                // Ceil to a whole millisecond so a sub-millisecond
                // residue cannot busy-spin the loop at timeout 0.
                let ms = d.as_millis().saturating_add(1);
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
        }
    }
}

// ---------------------------------------------------------------------
// Linux backend: epoll
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod backend {
    use super::*;

    /// The epoll-backed readiness poller (see the [module docs](super)).
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        wake_rx: UnixStream,
        waker: Waker,
    }

    impl Poller {
        /// A fresh epoll instance with its wake pipe already registered
        /// under [`WAKE_TOKEN`].
        ///
        /// # Errors
        ///
        /// Propagates `epoll_create1`/socketpair failures.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 allocates a new descriptor.
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            let (wake_rx, wake_tx) = match UnixStream::pair() {
                Ok(pair) => pair,
                Err(e) => {
                    // SAFETY: epfd came from epoll_create1 above.
                    unsafe { sys::close(epfd) };
                    return Err(e);
                }
            };
            wake_rx.set_nonblocking(true)?;
            wake_tx.set_nonblocking(true)?;
            let poller = Poller {
                epfd,
                wake_rx,
                waker: Waker {
                    tx: Arc::new(wake_tx),
                },
            };
            // The wake pipe is level-triggered regardless of the
            // connection trigger mode: an undrained wake must keep the
            // loop hot.
            poller.ctl(
                sys::EPOLL_CTL_ADD,
                poller.wake_rx.as_raw_fd(),
                sys::EPOLLIN,
                WAKE_TOKEN,
            )?;
            Ok(poller)
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = sys::EpollEvent {
                events,
                data: token,
            };
            // SAFETY: epfd and fd are live descriptors; ev outlives the
            // call.
            let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        }

        fn event_bits(interest: Interest, edge: bool) -> u32 {
            let mut bits = sys::EPOLLRDHUP;
            if interest.readable {
                bits |= sys::EPOLLIN;
            }
            if interest.writable {
                bits |= sys::EPOLLOUT;
            }
            if edge {
                bits |= sys::EPOLLET;
            }
            bits
        }

        /// Starts watching `fd` under `token`; `edge` arms `EPOLLET`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failures (e.g. an fd watched twice).
        pub fn register(
            &self,
            fd: RawFd,
            token: u64,
            interest: Interest,
            edge: bool,
        ) -> io::Result<()> {
            self.ctl(
                sys::EPOLL_CTL_ADD,
                fd,
                Self::event_bits(interest, edge),
                token,
            )
        }

        /// Replaces the interest set of an already-watched `fd`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failures (e.g. an fd never registered).
        pub fn reregister(
            &self,
            fd: RawFd,
            token: u64,
            interest: Interest,
            edge: bool,
        ) -> io::Result<()> {
            self.ctl(
                sys::EPOLL_CTL_MOD,
                fd,
                Self::event_bits(interest, edge),
                token,
            )
        }

        /// Stops watching `fd`. Call before closing the descriptor.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failures.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Parks until readiness, a wake, or `timeout` (`None` = forever)
        /// and fills `events` with what fired (cleared first; empty on
        /// timeout).
        ///
        /// # Errors
        ///
        /// Propagates `epoll_wait` failures other than `EINTR` (which
        /// retries).
        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 256];
            let n = loop {
                // SAFETY: buf is a live out-array of the stated length.
                let rc = unsafe {
                    sys::epoll_wait(
                        self.epfd,
                        buf.as_mut_ptr(),
                        buf.len() as i32,
                        duration_to_ms(timeout),
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
                // EINTR: retry with the original timeout (a slightly
                // stretched sleep is fine — deadlines re-check on wake).
            };
            for raw in &buf[..n] {
                let bits = raw.events;
                let fail = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
                events.push(Event {
                    token: raw.data,
                    readable: fail || bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                    writable: fail || bits & sys::EPOLLOUT != 0,
                });
            }
            Ok(())
        }

        /// A cross-thread wake handle for this poller.
        pub fn waker(&self) -> Waker {
            self.waker.clone()
        }

        /// Consumes pending wake bytes so the next `wait` can park. Call
        /// once per [`WAKE_TOKEN`] event.
        pub fn drain_waker(&self) {
            use std::io::Read;
            let mut buf = [0u8; 64];
            while matches!((&self.wake_rx).read(&mut buf), Ok(n) if n > 0) {}
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd is owned by this poller and closed once.
            unsafe { sys::close(self.epfd) };
        }
    }

    // The epoll fd and pipe ends move with the owning event-loop thread.
    unsafe impl Send for Poller {}
}

// ---------------------------------------------------------------------
// Portable Unix backend: poll(2)
// ---------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod backend {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    /// The portable `poll(2)`-backed poller (see the [module
    /// docs](super)).
    #[derive(Debug)]
    pub struct Poller {
        registry: Mutex<HashMap<RawFd, (u64, Interest)>>,
        wake_rx: UnixStream,
        waker: Waker,
    }

    impl Poller {
        /// A fresh poller with its wake pipe set up.
        ///
        /// # Errors
        ///
        /// Propagates socketpair failures.
        pub fn new() -> io::Result<Poller> {
            let (wake_rx, wake_tx) = UnixStream::pair()?;
            wake_rx.set_nonblocking(true)?;
            wake_tx.set_nonblocking(true)?;
            Ok(Poller {
                registry: Mutex::new(HashMap::new()),
                wake_rx,
                waker: Waker {
                    tx: Arc::new(wake_tx),
                },
            })
        }

        /// `edge` is accepted for signature parity and ignored: `poll(2)`
        /// is inherently level-triggered.
        pub fn register(
            &self,
            fd: RawFd,
            token: u64,
            interest: Interest,
            _edge: bool,
        ) -> io::Result<()> {
            self.registry.lock().insert(fd, (token, interest));
            Ok(())
        }

        /// Replaces the interest set of a watched `fd`.
        ///
        /// # Errors
        ///
        /// Infallible here; `io::Result` for parity with epoll.
        pub fn reregister(
            &self,
            fd: RawFd,
            token: u64,
            interest: Interest,
            _edge: bool,
        ) -> io::Result<()> {
            self.registry.lock().insert(fd, (token, interest));
            Ok(())
        }

        /// Stops watching `fd`.
        ///
        /// # Errors
        ///
        /// Infallible here; `io::Result` for parity with epoll.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registry.lock().remove(&fd);
            Ok(())
        }

        /// Parks until readiness, a wake, or `timeout` and fills
        /// `events`.
        ///
        /// # Errors
        ///
        /// Propagates `poll(2)` failures other than `EINTR`.
        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            let mut fds: Vec<sys::PollFd> = Vec::new();
            let mut tokens: Vec<u64> = Vec::new();
            fds.push(sys::PollFd {
                fd: self.wake_rx.as_raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            });
            tokens.push(WAKE_TOKEN);
            for (&fd, &(token, interest)) in self.registry.lock().iter() {
                let mut bits = 0i16;
                if interest.readable {
                    bits |= sys::POLLIN;
                }
                if interest.writable {
                    bits |= sys::POLLOUT;
                }
                fds.push(sys::PollFd {
                    fd,
                    events: bits,
                    revents: 0,
                });
                tokens.push(token);
            }
            let n = loop {
                // SAFETY: fds is a live array of the stated length.
                let rc = unsafe {
                    sys::poll(
                        fds.as_mut_ptr(),
                        fds.len() as std::os::raw::c_ulong,
                        duration_to_ms(timeout),
                    )
                };
                if rc >= 0 {
                    break rc;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n == 0 {
                return Ok(());
            }
            for (pfd, &token) in fds.iter().zip(&tokens) {
                let bits = pfd.revents;
                if bits == 0 {
                    continue;
                }
                let fail = bits & (sys::POLLERR | sys::POLLHUP) != 0;
                events.push(Event {
                    token,
                    readable: fail || bits & sys::POLLIN != 0,
                    writable: fail || bits & sys::POLLOUT != 0,
                });
            }
            Ok(())
        }

        /// A cross-thread wake handle for this poller.
        pub fn waker(&self) -> Waker {
            self.waker.clone()
        }

        /// Consumes pending wake bytes so the next `wait` can park.
        pub fn drain_waker(&self) {
            use std::io::Read;
            let mut buf = [0u8; 64];
            while matches!((&self.wake_rx).read(&mut buf), Ok(n) if n > 0) {}
        }
    }
}

#[cfg(not(unix))]
compile_error!("ifot-mqtt's readiness poller requires a Unix platform (epoll or poll(2))");

pub use backend::Poller;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::time::Instant;

    #[test]
    fn timeout_elapses_with_no_events() {
        let poller = Poller::new().expect("poller");
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .expect("wait");
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn waker_interrupts_an_indefinite_wait() {
        let poller = Poller::new().expect("poller");
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let mut events = Vec::new();
        poller.wait(&mut events, None).expect("wait");
        assert!(events.iter().any(|e| e.token == WAKE_TOKEN && e.readable));
        poller.drain_waker();
        handle.join().expect("waker thread");
        // Drained: the next wait times out instead of spinning on the
        // stale wake byte.
        poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .expect("wait");
        assert!(!events.iter().any(|e| e.token == WAKE_TOKEN));
    }

    #[test]
    fn wake_before_wait_is_not_lost() {
        let poller = Poller::new().expect("poller");
        poller.waker().wake();
        let mut events = Vec::new();
        poller.wait(&mut events, None).expect("wait");
        assert!(events.iter().any(|e| e.token == WAKE_TOKEN));
    }

    #[test]
    fn readable_socket_reports_its_token() {
        let (mut a, b) = UnixStream::pair().expect("pair");
        b.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new().expect("poller");
        poller
            .register(b.as_raw_fd(), 7, Interest::READABLE, false)
            .expect("register");
        a.write_all(b"x").expect("write");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        // Writable interest is not armed: no writable-only storm.
        assert!(!events.iter().any(|e| e.token == 7 && !e.readable));
        poller.deregister(b.as_raw_fd()).expect("deregister");
        poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .expect("wait");
        assert!(events.is_empty(), "deregistered fd still reported");
    }

    #[test]
    fn writable_interest_fires_for_an_unfilled_socket() {
        let (a, _b) = UnixStream::pair().expect("pair");
        a.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new().expect("poller");
        poller
            .register(a.as_raw_fd(), 9, Interest::READ_WRITE, false)
            .expect("register");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 9 && e.writable));
    }

    #[test]
    fn nofile_limit_is_reported() {
        let lim = nofile_limit().expect("getrlimit");
        assert!(lim >= 64, "implausible fd limit {lim}");
    }
}
