//! # Sharded routing — a multi-core front for the sans-I/O [`Broker`]
//!
//! The paper's Broker class is the choke point of the whole pipeline
//! (the Table II knee is queueing behind the heavy processing modules),
//! and a single `Mutex<Broker>` serialises every connection through one
//! lock. [`ShardedBroker`] partitions sessions across N independent
//! shards — each shard owns its own [`Broker`] instance — so publishes
//! arriving on different connections route concurrently with no global
//! lock on the hot path.
//!
//! ## Partitioning
//!
//! A session lives on the shard selected by an FNV-1a hash of its MQTT
//! client id ([`shard_of`]). Hashing the *client id* (not the socket)
//! means session takeover, persistent-session resumption and QoS 1/2
//! in-flight state all stay within one shard — the per-shard [`Broker`]
//! keeps the exact semantics of the single-broker build.
//!
//! ## Cross-shard coherence
//!
//! Each shard holds a *replica* subscription tree describing every
//! subscription on every shard, keyed `(shard, client_id)`. Shards keep
//! the replica coherent through a global mutation log with an epoch
//! counter: tree mutations reported by a shard's broker (via
//! [`BrokerEvent`] capture) are appended to the log, and every shard
//! catches up from its last-applied epoch before it computes cross-shard
//! routing. The log is compacted into a master-tree snapshot once it
//! grows past a threshold; a shard that fell behind the snapshot clones
//! the master instead of replaying entries.
//!
//! The resulting invariant (DESIGN.md §7): **a subscribe acknowledged on
//! any shard is visible to every subsequent publish on all shards** —
//! the SUBACK is only returned after the log append (epoch bump)
//! completes, and a publish always catches its shard up to the current
//! epoch before computing forwards.
//!
//! On the steady-state publish path the log mutex is never touched: a
//! lock-free epoch check ([`AtomicU64`]) confirms the replica is current.
//!
//! ## Cross-shard fan-out
//!
//! A publish routed on its origin shard may match subscribers on other
//! shards. The origin computes the distinct set of remote shards from
//! its replica and reports them as [`ShardOutput::forwards`]; the
//! embedding applies each forward with [`ShardedBroker::apply_forward`]
//! (inline in single-threaded runtimes via
//! [`resolve`](ShardedBroker::resolve); over bounded channels between
//! shard service threads in the TCP front-end). Forward application
//! never generates further forwards, so a forwarded publish cannot loop.
//! Retained publishes are forwarded to *all* shards so every shard's
//! retained store replicates and a later subscriber on any shard sees
//! them.
//!
//! ```
//! use ifot_mqtt::broker::{Action, BrokerConfig};
//! use ifot_mqtt::packet::{Connect, Packet, Publish, QoS, Subscribe, SubscribeFilter};
//! use ifot_mqtt::shard::{shard_of, ShardedBroker};
//! use ifot_mqtt::topic::{TopicFilter, TopicName};
//!
//! let broker: ShardedBroker<u32> = ShardedBroker::new(BrokerConfig {
//!     shards: 2,
//!     ..BrokerConfig::default()
//! });
//! // Pick ids that land on different shards.
//! let sub_id = (0..).map(|i| format!("s{i}")).find(|s| shard_of(s, 2) == 0).unwrap();
//! let pub_id = (0..).map(|i| format!("p{i}")).find(|s| shard_of(s, 2) == 1).unwrap();
//!
//! broker.connection_opened(1, 0);
//! broker.handle_packet(&1, Packet::Connect(Connect::new(sub_id)), 0);
//! broker.handle_packet(&1, Packet::Subscribe(Subscribe {
//!     packet_id: 1,
//!     filters: vec![SubscribeFilter { filter: TopicFilter::new("s/#")?, qos: QoS::AtMostOnce }],
//! }), 0);
//!
//! broker.connection_opened(2, 0);
//! broker.handle_packet(&2, Packet::Connect(Connect::new(pub_id)), 0);
//! let out = broker.handle_packet(&2, Packet::Publish(
//!     Publish::qos0(TopicName::new("s/a")?, b"hi".to_vec())), 1);
//! // The publish crossed shards: the origin reported a forward …
//! assert_eq!(out.forwards.len(), 1);
//! // … and resolving it delivers on the subscriber's shard.
//! let actions = broker.resolve(out, 1);
//! assert!(matches!(actions[0], Action::SendFrame { conn: 1, .. }));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, RwLock};

use crate::broker::{Action, Broker, BrokerConfig, BrokerEvent, BrokerStats};
use crate::packet::{Packet, Publish, QoS};
use crate::topic::TopicFilter;
use crate::tree::SubscriptionTree;
use crate::wal::{FileBackend, RecoveryReport, Wal, WalBackend, WalConfig, WalStats};

/// Mutation-log entries accumulated before compaction folds them into
/// the master snapshot. Past this, a lagging shard clones the master
/// instead of replaying (bounded memory either way).
const LOG_COMPACT_CAP: usize = 256;

/// Replica trees key subscriptions by owning shard *and* client id so a
/// client's subscriptions can be dropped without scanning.
type ReplicaKey = (usize, String);

/// FNV-1a hash of a client id mapped onto `shards` buckets. Stable
/// across processes so a reconnecting client always lands on the shard
/// holding its persistent session.
pub fn shard_of(client_id: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in client_id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// One replicated subscription-tree mutation.
#[derive(Debug, Clone)]
enum LogEntry {
    Subscribe {
        shard: usize,
        client: String,
        filter: TopicFilter,
        qos: QoS,
    },
    Unsubscribe {
        shard: usize,
        client: String,
        filter: TopicFilter,
    },
    RemoveClient {
        shard: usize,
        client: String,
    },
}

fn apply_entry(tree: &mut SubscriptionTree<ReplicaKey>, entry: &LogEntry) {
    match entry {
        LogEntry::Subscribe {
            shard,
            client,
            filter,
            qos,
        } => {
            tree.subscribe((*shard, client.clone()), filter, *qos);
        }
        LogEntry::Unsubscribe {
            shard,
            client,
            filter,
        } => {
            tree.unsubscribe(&(*shard, client.clone()), filter);
        }
        LogEntry::RemoveClient { shard, client } => {
            tree.remove_key(&(*shard, client.clone()));
        }
    }
}

/// The global mutation log: a master tree at epoch `base + entries.len()`
/// plus the tail of entries since the last compaction.
struct LogInner {
    master: SubscriptionTree<ReplicaKey>,
    entries: Vec<LogEntry>,
    /// Epoch of the master snapshot (== epoch of `entries[0]`).
    base: u64,
}

struct SubLog {
    inner: Mutex<LogInner>,
    /// Mirror of `base + entries.len()`, readable without the mutex so
    /// the publish hot path can confirm "replica already current" with a
    /// single atomic load.
    epoch: AtomicU64,
}

/// Per-shard state: the shard's own broker plus its replica of the
/// global subscription tree and the log epoch that replica reflects.
struct ShardInner<C> {
    broker: Broker<C>,
    replica: SubscriptionTree<ReplicaKey>,
    applied: u64,
}

/// What one sharded-broker operation produced: transport actions for
/// this shard's connections, plus publishes that must be applied to
/// other shards.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutput<C> {
    /// Actions to apply to this shard's transport connections.
    pub actions: Vec<Action<C>>,
    /// `(target shard, publish)` pairs to hand to
    /// [`ShardedBroker::apply_forward`]. Applying a forward never
    /// produces further forwards.
    pub forwards: Vec<(usize, Publish)>,
}

impl<C> Default for ShardOutput<C> {
    fn default() -> Self {
        ShardOutput {
            actions: Vec::new(),
            forwards: Vec::new(),
        }
    }
}

/// A multi-core routing layer partitioning MQTT sessions across
/// independent [`Broker`] shards. See the [module docs](self) for the
/// architecture; all methods take `&self` (internal locking) so one
/// instance can be shared across reader/service threads.
pub struct ShardedBroker<C> {
    config: BrokerConfig,
    shards: Vec<Mutex<ShardInner<C>>>,
    log: SubLog,
    /// Connection → owning shard, fixed at CONNECT time.
    registry: RwLock<BTreeMap<C, usize>>,
    /// Connections opened but not yet CONNECTed (shard unknown).
    pending: Mutex<BTreeMap<C, u64>>,
    /// Per-shard recovery reports when the broker was opened durably
    /// (empty otherwise).
    recovery: Vec<RecoveryReport>,
}

impl<C: Ord + Clone> ShardedBroker<C> {
    /// Creates a sharded broker with `config.shards` shards (clamped to
    /// at least 1); every shard's inner broker shares the same config.
    ///
    /// When [`BrokerConfig::durability`] is set this opens per-shard WAL
    /// files (`shard-<i>.wal` / `shard-<i>.snap`) under the directory and
    /// replays them, so restarts resume with persistent sessions,
    /// subscriptions, retained messages and QoS 1/2 in-flight state
    /// intact. Panics if the durability directory cannot be opened or
    /// replayed (a broker silently running without its configured
    /// durability would be worse); use [`ShardedBroker::open_durable`]
    /// for a fallible, backend-injected variant.
    pub fn new(config: BrokerConfig) -> Self {
        if let Some(dir) = config.durability.clone() {
            let n = config.shards.max(1);
            let backends = (0..n)
                .map(|i| {
                    FileBackend::open(&dir, &format!("shard-{i}"))
                        .map(|b| Box::new(b) as Box<dyn WalBackend>)
                })
                .collect::<io::Result<Vec<_>>>()
                .unwrap_or_else(|e| panic!("open broker durability dir {dir:?}: {e}"));
            return Self::open_durable(config, backends)
                .unwrap_or_else(|e| panic!("recover broker durability dir {dir:?}: {e}"));
        }
        Self::build(config, None)
    }

    /// Opens a durable sharded broker over explicit per-shard backends
    /// (`backends.len()` must equal the shard count). Each shard recovers
    /// its own log; the replicated subscription master is rebuilt from
    /// the union of the recovered sessions so cross-shard routing sees
    /// restored subscriptions immediately. Inspect what each shard
    /// replayed via [`ShardedBroker::recovery_reports`].
    pub fn open_durable(
        config: BrokerConfig,
        backends: Vec<Box<dyn WalBackend>>,
    ) -> io::Result<Self> {
        let n = config.shards.max(1);
        assert_eq!(backends.len(), n, "one WAL backend per shard");
        let wal_config = WalConfig {
            snapshot_every: config.wal_snapshot_every,
            fsync: config.wal_fsync,
        };
        let mut pairs = Vec::with_capacity(n);
        for backend in backends {
            pairs.push(Wal::open(backend, wal_config)?);
        }
        Ok(Self::build(config, Some(pairs)))
    }

    fn build(config: BrokerConfig, recovered: Option<Vec<(Wal, RecoveryReport)>>) -> Self {
        let n = config.shards.max(1);
        let mut master = SubscriptionTree::new();
        let mut recovery = Vec::new();
        let shards: Vec<Mutex<ShardInner<C>>> = match recovered {
            None => (0..n)
                .map(|_| {
                    let mut broker = Broker::with_config(config.clone());
                    broker.set_event_capture(true);
                    Mutex::new(ShardInner {
                        broker,
                        replica: SubscriptionTree::new(),
                        applied: 0,
                    })
                })
                .collect(),
            Some(pairs) => {
                // First pass: rebuild the replicated subscription master
                // from every shard's recovered sessions, so each shard's
                // replica starts complete (epoch 0, nothing to catch up).
                for (idx, (_, report)) in pairs.iter().enumerate() {
                    for (client, session) in &report.state.sessions {
                        for (filter, qos) in &session.subscriptions {
                            let Ok(filter) = TopicFilter::new(filter.clone()) else {
                                continue;
                            };
                            master.subscribe((idx, client.clone()), &filter, *qos);
                        }
                    }
                }
                pairs
                    .into_iter()
                    .map(|(wal, report)| {
                        let mut broker = Broker::with_config(config.clone());
                        broker.set_event_capture(true);
                        broker.restore(&report.state);
                        broker.attach_wal(wal);
                        recovery.push(report);
                        Mutex::new(ShardInner {
                            broker,
                            replica: master.clone(),
                            applied: 0,
                        })
                    })
                    .collect()
            }
        };
        ShardedBroker {
            config,
            shards,
            log: SubLog {
                inner: Mutex::new(LogInner {
                    master,
                    entries: Vec::new(),
                    base: 0,
                }),
                epoch: AtomicU64::new(0),
            },
            registry: RwLock::new(BTreeMap::new()),
            pending: Mutex::new(BTreeMap::new()),
            recovery,
        }
    }

    /// Per-shard recovery reports from a durable open (empty when the
    /// broker started without durability).
    pub fn recovery_reports(&self) -> &[RecoveryReport] {
        &self.recovery
    }

    /// Aggregated WAL counters across shards, if durability is attached.
    pub fn wal_stats(&self) -> Option<WalStats> {
        let mut total: Option<WalStats> = None;
        for shard in &self.shards {
            if let Some(s) = shard.lock().broker.wal_stats() {
                let t = total.get_or_insert_with(WalStats::default);
                t.records_appended += s.records_appended;
                t.batches_committed += s.batches_committed;
                t.bytes_appended += s.bytes_appended;
                t.append_errors += s.append_errors;
                t.sync_errors += s.sync_errors;
                t.snapshots_installed += s.snapshots_installed;
                t.snapshot_errors += s.snapshot_errors;
            }
        }
        total
    }

    /// The configuration all shards run with.
    pub fn config(&self) -> &BrokerConfig {
        &self.config
    }

    /// Number of routing shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `conn`, if the connection has completed CONNECT.
    pub fn shard_of_conn(&self, conn: &C) -> Option<usize> {
        self.registry.read().get(conn).copied()
    }

    /// Registers a fresh transport connection. The owning shard is
    /// unknown until the CONNECT arrives, so the connection parks in a
    /// pending set.
    ///
    /// Reusing a live connection key (embeddings that identify peers by
    /// stable names, like the simulator, do this on reconnect) resets
    /// the transport record on the owning shard in place — mirroring
    /// [`Broker::connection_opened`]'s overwrite semantics — so the
    /// following CONNECT is a normal session (re)establishment rather
    /// than a protocol violation. The connection stays on its shard;
    /// such embeddings use the client id as the connection key, so the
    /// re-CONNECT re-selects the same shard anyway.
    pub fn connection_opened(&self, conn: C, now_ns: u64) {
        if let Some(idx) = self.shard_of_conn(&conn) {
            let _ = self.run_on_shard(idx, |b| {
                b.connection_opened(conn.clone(), now_ns);
                Vec::new()
            });
            return;
        }
        self.pending.lock().insert(conn, now_ns);
    }

    /// Handles one inbound packet. The first packet on a connection must
    /// be CONNECT (it selects the shard); anything else closes the
    /// connection, as the MQTT spec requires.
    pub fn handle_packet(&self, conn: &C, packet: Packet, now_ns: u64) -> ShardOutput<C> {
        if let Some(idx) = self.shard_of_conn(conn) {
            return self.run_on_shard(idx, |b| b.handle_packet(conn, packet, now_ns));
        }
        self.pending.lock().remove(conn);
        let Packet::Connect(c) = packet else {
            return ShardOutput {
                actions: vec![Action::Close { conn: conn.clone() }],
                forwards: Vec::new(),
            };
        };
        let idx = shard_of(&c.client_id, self.shards.len());
        self.registry.write().insert(conn.clone(), idx);
        self.run_on_shard(idx, |b| {
            b.connection_opened(conn.clone(), now_ns);
            b.handle_packet(conn, Packet::Connect(c), now_ns)
        })
    }

    /// Transport-level connection loss (no DISCONNECT seen): the owning
    /// shard publishes the will and keeps persistent session state.
    pub fn connection_lost(&self, conn: &C, now_ns: u64) -> ShardOutput<C> {
        self.pending.lock().remove(conn);
        let idx = self.registry.write().remove(conn);
        match idx {
            Some(idx) => self.run_on_shard(idx, |b| b.connection_lost(conn, now_ns)),
            None => ShardOutput::default(),
        }
    }

    /// Runs one shard's timer work (keep-alive expiry, retransmissions).
    pub fn poll_shard(&self, shard: usize, now_ns: u64) -> ShardOutput<C> {
        self.run_on_shard(shard, |b| b.poll(now_ns))
    }

    /// Runs timer work on every shard (single-threaded embeddings).
    pub fn poll(&self, now_ns: u64) -> ShardOutput<C> {
        let mut out = ShardOutput::default();
        for shard in 0..self.shards.len() {
            let mut one = self.poll_shard(shard, now_ns);
            out.actions.append(&mut one.actions);
            out.forwards.append(&mut one.forwards);
        }
        out
    }

    /// The earliest instant at which [`ShardedBroker::poll_shard`] has
    /// work for `shard`, if any. Shard service threads park on exactly
    /// this deadline instead of sleep-polling.
    pub fn next_deadline_ns(&self, shard: usize) -> Option<u64> {
        self.shards[shard].lock().broker.next_deadline_ns()
    }

    /// The earliest deadline across all shards.
    pub fn next_deadline_any_ns(&self) -> Option<u64> {
        (0..self.shards.len())
            .filter_map(|s| self.next_deadline_ns(s))
            .min()
    }

    /// Applies a cross-shard forward on its target shard, returning the
    /// delivery actions for that shard's connections. Never produces
    /// further forwards (loop freedom by construction).
    pub fn apply_forward(&self, shard: usize, publish: Publish, now_ns: u64) -> Vec<Action<C>> {
        let mut inner = self.shards[shard].lock();
        let actions = inner.broker.publish_internal(publish, now_ns);
        // The only events a publish application can raise are Routed
        // echoes of this same publish; dropping them is what prevents
        // forward loops.
        let _ = inner.broker.take_events();
        actions
    }

    /// Applies `out.forwards` inline and returns every action. The
    /// convenience path for single-threaded embeddings (the simulator
    /// and the in-process runtimes); the TCP front-end ships forwards
    /// over channels between shard threads instead.
    pub fn resolve(&self, out: ShardOutput<C>, now_ns: u64) -> Vec<Action<C>> {
        let ShardOutput {
            mut actions,
            forwards,
        } = out;
        for (shard, publish) in forwards {
            actions.extend(self.apply_forward(shard, publish, now_ns));
        }
        actions
    }

    /// Publishes a broker-originated message (e.g. `$SYS` status) on
    /// every shard: each shard routes to its local subscribers and
    /// stores retained state, so the result matches a single broker.
    pub fn publish_internal(&self, publish: Publish, now_ns: u64) -> Vec<Action<C>> {
        let mut actions = Vec::new();
        for shard in &self.shards {
            let mut inner = shard.lock();
            actions.extend(inner.broker.publish_internal(publish.clone(), now_ns));
            let _ = inner.broker.take_events();
        }
        actions
    }

    /// Aggregated statistics across shards. Counters sum; the retained
    /// count is the maximum over shards because the retained store is
    /// replicated, not partitioned.
    pub fn stats(&self) -> BrokerStats {
        let mut total = BrokerStats::default();
        for shard in &self.shards {
            let s = shard.lock().broker.stats();
            total.messages_in += s.messages_in;
            total.messages_out += s.messages_out;
            total.messages_dropped += s.messages_dropped;
            total.clients_connected += s.clients_connected;
            total.retransmissions += s.retransmissions;
            total.retained_count = total.retained_count.max(s.retained_count);
        }
        total
    }

    /// `$SYS` status publications describing the aggregated load, in the
    /// same shape as [`Broker::sys_stats_packets`].
    pub fn sys_stats_packets(&self) -> Vec<Publish> {
        Broker::<C>::sys_packets_for(self.stats())
    }

    /// Locks shard `idx`, runs `f` on its broker, then drains the
    /// captured events: tree mutations are appended to the global log
    /// (keeping this shard's replica and the master coherent) and routed
    /// publishes are matched against the replica to compute cross-shard
    /// forwards.
    fn run_on_shard(
        &self,
        idx: usize,
        f: impl FnOnce(&mut Broker<C>) -> Vec<Action<C>>,
    ) -> ShardOutput<C> {
        let mut shard = self.shards[idx].lock();
        let actions = f(&mut shard.broker);
        let events = shard.broker.take_events();
        let forwards = self.sync_and_forward(idx, &mut shard, events);
        ShardOutput { actions, forwards }
    }

    /// The coherence step. Fast path: no mutations in this batch and the
    /// replica is already at the current epoch (one atomic load) — the
    /// log mutex is never taken. Slow path: catch the replica up from
    /// the log (or the master snapshot if compaction passed us by),
    /// append this batch's mutations, and bump the epoch *before* the
    /// enclosing call returns its actions — that ordering is what makes
    /// an acknowledged subscribe visible to every subsequent publish.
    fn sync_and_forward(
        &self,
        idx: usize,
        shard: &mut ShardInner<C>,
        events: Vec<BrokerEvent>,
    ) -> Vec<(usize, Publish)> {
        let has_mutations = events.iter().any(|e| !matches!(e, BrokerEvent::Routed(_)));
        let mut forwards = Vec::new();
        if !has_mutations {
            if shard.applied == self.log.epoch.load(Ordering::Acquire) {
                for event in events {
                    if let BrokerEvent::Routed(p) = event {
                        self.collect_forwards(idx, &shard.replica, p, &mut forwards);
                    }
                }
                return forwards;
            }
            self.catch_up(shard);
            for event in events {
                if let BrokerEvent::Routed(p) = event {
                    self.collect_forwards(idx, &shard.replica, p, &mut forwards);
                }
            }
            return forwards;
        }

        let mut log = self.log.inner.lock();
        // Catch up first so appends land on a current replica.
        if shard.applied < log.base {
            shard.replica = log.master.clone();
        } else {
            for entry in &log.entries[(shard.applied - log.base) as usize..] {
                apply_entry(&mut shard.replica, entry);
            }
        }
        shard.applied = log.base + log.entries.len() as u64;
        // Process the batch in order: a will routed before a session was
        // cleared must see the pre-clear replica, and vice versa.
        for event in events {
            let entry = match event {
                BrokerEvent::Routed(p) => {
                    self.collect_forwards(idx, &shard.replica, p, &mut forwards);
                    continue;
                }
                BrokerEvent::Subscribed {
                    client,
                    filter,
                    qos,
                } => LogEntry::Subscribe {
                    shard: idx,
                    client,
                    filter,
                    qos,
                },
                BrokerEvent::Unsubscribed { client, filter } => LogEntry::Unsubscribe {
                    shard: idx,
                    client,
                    filter,
                },
                BrokerEvent::SessionCleared { client } => {
                    LogEntry::RemoveClient { shard: idx, client }
                }
            };
            apply_entry(&mut shard.replica, &entry);
            apply_entry(&mut log.master, &entry);
            log.entries.push(entry);
            shard.applied += 1;
        }
        if log.entries.len() > LOG_COMPACT_CAP {
            log.base += log.entries.len() as u64;
            log.entries.clear();
        }
        self.log
            .epoch
            .store(log.base + log.entries.len() as u64, Ordering::Release);
        forwards
    }

    /// Brings a shard's replica up to the current log epoch without
    /// appending anything.
    fn catch_up(&self, shard: &mut ShardInner<C>) {
        let log = self.log.inner.lock();
        if shard.applied < log.base {
            shard.replica = log.master.clone();
        } else {
            for entry in &log.entries[(shard.applied - log.base) as usize..] {
                apply_entry(&mut shard.replica, entry);
            }
        }
        shard.applied = log.base + log.entries.len() as u64;
    }

    /// Computes the remote shards a routed publish must reach. Retained
    /// publishes go to every other shard (the retained store is
    /// replicated); others go only to shards with a matching subscriber.
    fn collect_forwards(
        &self,
        origin: usize,
        replica: &SubscriptionTree<ReplicaKey>,
        publish: Publish,
        out: &mut Vec<(usize, Publish)>,
    ) {
        let n = self.shards.len();
        if n == 1 {
            return;
        }
        let mut fwd = publish;
        fwd.dup = false;
        fwd.packet_id = None;
        if fwd.retain {
            for shard in (0..n).filter(|&s| s != origin) {
                out.push((shard, fwd.clone()));
            }
            return;
        }
        let mut hit = vec![false; n];
        for sub in replica.matches_shared(&fwd.topic).iter() {
            hit[sub.key.0] = true;
        }
        hit[origin] = false;
        for shard in (0..n).filter(|&s| hit[s]) {
            out.push((shard, fwd.clone()));
        }
    }
}

impl<C: Ord + Clone> std::fmt::Debug for ShardedBroker<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedBroker")
            .field("shards", &self.shards.len())
            .field("epoch", &self.log.epoch.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Connect, LastWill, Subscribe, SubscribeFilter, Unsubscribe};
    use crate::topic::TopicName;

    fn topic(s: &str) -> TopicName {
        TopicName::new(s).expect("valid topic")
    }

    fn filter(s: &str) -> TopicFilter {
        TopicFilter::new(s).expect("valid filter")
    }

    /// First id of the form `{prefix}{i}` that hashes onto `target`.
    fn id_on_shard(prefix: &str, target: usize, shards: usize) -> String {
        (0..1000)
            .map(|i| format!("{prefix}{i}"))
            .find(|id| shard_of(id, shards) == target)
            .expect("some id lands on every shard")
    }

    fn two_shard() -> (ShardedBroker<u32>, String, String) {
        let sb = ShardedBroker::new(BrokerConfig {
            shards: 2,
            ..BrokerConfig::default()
        });
        let sub_id = id_on_shard("sub", 0, 2);
        let pub_id = id_on_shard("pub", 1, 2);
        (sb, sub_id, pub_id)
    }

    fn connect(sb: &ShardedBroker<u32>, conn: u32, id: &str) {
        sb.connection_opened(conn, 0);
        let out = sb.handle_packet(&conn, Packet::Connect(Connect::new(id)), 0);
        assert!(
            out.actions.iter().any(|a| matches!(
                a,
                Action::Send {
                    packet: Packet::Connack(_),
                    ..
                }
            )),
            "connect must be acknowledged: {:?}",
            out.actions
        );
    }

    fn subscribe(sb: &ShardedBroker<u32>, conn: u32, f: &str, qos: QoS) {
        let out = sb.handle_packet(
            &conn,
            Packet::Subscribe(Subscribe {
                packet_id: 7,
                filters: vec![SubscribeFilter {
                    filter: filter(f),
                    qos,
                }],
            }),
            0,
        );
        assert!(out.actions.iter().any(|a| matches!(
            a,
            Action::Send {
                packet: Packet::Suback(_),
                ..
            }
        )),);
    }

    fn sends_to(actions: &[Action<u32>], conn: u32) -> Vec<Packet> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { conn: c, packet } if *c == conn => Some(packet.clone()),
                Action::SendFrame { conn: c, frame } if *c == conn => {
                    let (p, used) = crate::codec::decode(frame)
                        .expect("valid")
                        .expect("complete");
                    assert_eq!(used, frame.len());
                    Some(p)
                }
                _ => None,
            })
            .collect()
    }

    #[test]
    fn reused_connection_key_reconnects_instead_of_violating() {
        // Embeddings with stable peer names (the simulator) reuse the
        // same connection key across transport sessions: a reconnect is
        // connection_opened + CONNECT again, not a fresh key. The
        // second CONNECT must be a session (re)establishment, never a
        // "second CONNECT on a live connection" protocol close.
        let (sb, sub_id, pub_id) = two_shard();
        connect(&sb, 1, &sub_id);
        subscribe(&sb, 1, "s/#", QoS::AtMostOnce);
        connect(&sb, 2, &pub_id);

        // Transport drop + reconnect on the same key (same client id).
        connect(&sb, 1, &sub_id);
        subscribe(&sb, 1, "s/#", QoS::AtMostOnce);
        assert_eq!(sb.shard_of_conn(&1), Some(0), "stays on its home shard");

        // Cross-shard delivery still reaches the re-established session.
        let out = sb.handle_packet(
            &2,
            Packet::Publish(Publish::qos0(topic("s/a"), b"x".to_vec())),
            1,
        );
        let actions = sb.resolve(out, 1);
        assert_eq!(
            sends_to(&actions, 1).len(),
            1,
            "delivered once: {actions:?}"
        );
    }

    #[test]
    fn shard_hash_is_stable_and_in_range() {
        for shards in 1..8 {
            for i in 0..100 {
                let id = format!("client-{i}");
                let s = shard_of(&id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(&id, shards), "deterministic");
            }
        }
        // Single shard degenerates to the classic broker.
        assert_eq!(shard_of("anything", 1), 0);
    }

    #[test]
    fn cross_shard_qos0_publish_is_forwarded_and_delivered() {
        let (sb, sub_id, pub_id) = two_shard();
        connect(&sb, 1, &sub_id);
        subscribe(&sb, 1, "s/#", QoS::AtMostOnce);
        connect(&sb, 2, &pub_id);
        assert_eq!(sb.shard_of_conn(&1), Some(0));
        assert_eq!(sb.shard_of_conn(&2), Some(1));

        let out = sb.handle_packet(
            &2,
            Packet::Publish(Publish::qos0(topic("s/a"), b"x".to_vec())),
            1,
        );
        // No subscriber on the publisher's shard: delivery happens
        // entirely through the forward.
        assert_eq!(out.forwards.len(), 1);
        assert_eq!(out.forwards[0].0, 0);
        let actions = sb.resolve(out, 1);
        let got = sends_to(&actions, 1);
        assert!(
            got.iter()
                .any(|p| matches!(p, Packet::Publish(p) if p.payload.as_ref() == b"x")),
            "forwarded publish must reach the remote subscriber: {got:?}"
        );
    }

    #[test]
    fn same_shard_publish_produces_no_forwards() {
        let shards = 2;
        let sb: ShardedBroker<u32> = ShardedBroker::new(BrokerConfig {
            shards,
            ..BrokerConfig::default()
        });
        let a = id_on_shard("a", 0, shards);
        let b = id_on_shard("b", 0, shards);
        connect(&sb, 1, &a);
        subscribe(&sb, 1, "s/#", QoS::AtMostOnce);
        connect(&sb, 2, &b);
        let out = sb.handle_packet(
            &2,
            Packet::Publish(Publish::qos0(topic("s/a"), b"x".to_vec())),
            1,
        );
        assert!(out.forwards.is_empty(), "local fan-out needs no forwards");
        assert!(!sends_to(&out.actions, 1).is_empty());
    }

    #[test]
    fn publish_with_no_remote_match_is_not_forwarded() {
        let (sb, sub_id, pub_id) = two_shard();
        connect(&sb, 1, &sub_id);
        subscribe(&sb, 1, "other/#", QoS::AtMostOnce);
        connect(&sb, 2, &pub_id);
        let out = sb.handle_packet(
            &2,
            Packet::Publish(Publish::qos0(topic("s/a"), b"x".to_vec())),
            1,
        );
        assert!(out.forwards.is_empty());
    }

    #[test]
    fn retained_publish_replicates_to_every_shard() {
        let (sb, sub_id, pub_id) = two_shard();
        connect(&sb, 2, &pub_id);
        let mut p = Publish::qos0(topic("s/state"), b"42".to_vec());
        p.retain = true;
        let out = sb.handle_packet(&2, Packet::Publish(p), 1);
        // Retained ⇒ forwarded to all other shards even with no match.
        assert_eq!(out.forwards.len(), 1);
        let _ = sb.resolve(out, 1);

        // A later subscriber on the *other* shard sees the retained copy.
        connect(&sb, 1, &sub_id);
        let out = sb.handle_packet(
            &1,
            Packet::Subscribe(Subscribe {
                packet_id: 9,
                filters: vec![SubscribeFilter {
                    filter: filter("s/#"),
                    qos: QoS::AtMostOnce,
                }],
            }),
            2,
        );
        let got = sends_to(&out.actions, 1);
        assert!(
            got.iter().any(|p| matches!(
                p,
                Packet::Publish(p) if p.payload.as_ref() == b"42" && p.retain
            )),
            "replicated retained message must be delivered on subscribe: {got:?}"
        );
        assert_eq!(sb.stats().retained_count, 1, "replicated, not summed");
    }

    #[test]
    fn cross_shard_qos1_delivery_retransmits_on_target_shard() {
        let (sb, sub_id, pub_id) = two_shard();
        connect(&sb, 1, &sub_id);
        subscribe(&sb, 1, "s/a", QoS::AtLeastOnce);
        connect(&sb, 2, &pub_id);

        let out = sb.handle_packet(
            &2,
            Packet::Publish(Publish::qos1(topic("s/a"), b"m".to_vec(), 1)),
            0,
        );
        // Publisher handshake completes on the origin shard.
        assert!(sends_to(&out.actions, 2)
            .iter()
            .any(|p| matches!(p, Packet::Puback(1))),);
        let actions = sb.resolve(out, 0);
        let delivered: Vec<_> = sends_to(&actions, 1);
        let Some(Packet::Publish(first)) =
            delivered.iter().find(|p| matches!(p, Packet::Publish(_)))
        else {
            panic!("QoS1 forward must deliver: {delivered:?}");
        };
        let pid = first.packet_id.expect("qos1 delivery has pid");

        // Unacked ⇒ the *subscriber's* shard owns the retransmit timer.
        let timeout = BrokerConfig::default().retransmit_timeout_ns;
        assert_eq!(sb.next_deadline_ns(0), Some(timeout));
        let out = sb.poll_shard(0, timeout);
        assert!(
            sends_to(&out.actions, 1)
                .iter()
                .any(|p| matches!(p, Packet::Publish(p) if p.dup)),
            "retransmission fires on the target shard"
        );
        assert!(out.forwards.is_empty(), "retransmits never re-forward");

        // Acking on the subscriber's shard clears the deadline.
        let out = sb.handle_packet(&1, Packet::Puback(pid), timeout + 1);
        assert!(out.actions.is_empty() && out.forwards.is_empty());
    }

    #[test]
    fn will_publication_crosses_shards() {
        let (sb, sub_id, pub_id) = two_shard();
        connect(&sb, 1, &sub_id);
        subscribe(&sb, 1, "dead/#", QoS::AtMostOnce);

        sb.connection_opened(2, 0);
        let mut c = Connect::new(pub_id);
        c.will = Some(LastWill {
            topic: topic("dead/pub"),
            payload: b"gone".to_vec().into(),
            qos: QoS::AtMostOnce,
            retain: false,
        });
        sb.handle_packet(&2, Packet::Connect(c), 0);

        let out = sb.connection_lost(&2, 1);
        assert_eq!(out.forwards.len(), 1, "will must cross shards");
        let actions = sb.resolve(out, 1);
        assert!(sends_to(&actions, 1)
            .iter()
            .any(|p| matches!(p, Packet::Publish(p) if p.payload.as_ref() == b"gone")),);
    }

    #[test]
    fn first_packet_must_be_connect() {
        let sb: ShardedBroker<u32> = ShardedBroker::new(BrokerConfig::default());
        sb.connection_opened(9, 0);
        let out = sb.handle_packet(&9, Packet::Pingreq, 0);
        assert_eq!(out.actions, vec![Action::Close { conn: 9 }]);
        assert_eq!(sb.shard_of_conn(&9), None);
    }

    #[test]
    fn session_takeover_stays_on_one_shard() {
        let sb: ShardedBroker<u32> = ShardedBroker::new(BrokerConfig {
            shards: 4,
            ..BrokerConfig::default()
        });
        connect(&sb, 1, "dev");
        let home = sb.shard_of_conn(&1).expect("registered");
        sb.connection_opened(2, 1);
        let out = sb.handle_packet(&2, Packet::Connect(Connect::new("dev")), 1);
        assert!(
            out.actions
                .iter()
                .any(|a| matches!(a, Action::Close { conn: 1 })),
            "takeover closes the old connection"
        );
        assert_eq!(sb.shard_of_conn(&2), Some(home), "same id, same shard");
        // Stale transport close for the taken-over conn is a no-op.
        let out = sb.connection_lost(&1, 2);
        assert!(out.actions.is_empty() && out.forwards.is_empty());
        assert_eq!(sb.stats().clients_connected, 1);
    }

    #[test]
    fn unsubscribe_stops_cross_shard_forwarding() {
        let (sb, sub_id, pub_id) = two_shard();
        connect(&sb, 1, &sub_id);
        subscribe(&sb, 1, "s/#", QoS::AtMostOnce);
        connect(&sb, 2, &pub_id);

        let publish = |sb: &ShardedBroker<u32>, t: u64| {
            sb.handle_packet(
                &2,
                Packet::Publish(Publish::qos0(topic("s/a"), b"x".to_vec())),
                t,
            )
        };
        assert_eq!(publish(&sb, 1).forwards.len(), 1);

        sb.handle_packet(
            &1,
            Packet::Unsubscribe(Unsubscribe {
                packet_id: 3,
                filters: vec![filter("s/#")],
            }),
            2,
        );
        assert!(
            publish(&sb, 3).forwards.is_empty(),
            "the unsubscribe must reach the publisher's replica"
        );
    }

    #[test]
    fn lagging_shard_catches_up_across_log_compaction() {
        let (sb, sub_id, pub_id) = two_shard();
        connect(&sb, 1, &sub_id);
        connect(&sb, 2, &pub_id);
        // Churn far past the compaction cap, all on shard 0 — shard 1's
        // replica epoch falls behind the compacted base.
        for i in 0..(2 * LOG_COMPACT_CAP as u16) {
            sb.handle_packet(
                &1,
                Packet::Subscribe(Subscribe {
                    packet_id: i + 1,
                    filters: vec![SubscribeFilter {
                        filter: filter("churn/x"),
                        qos: QoS::AtMostOnce,
                    }],
                }),
                0,
            );
            sb.handle_packet(
                &1,
                Packet::Unsubscribe(Unsubscribe {
                    packet_id: i + 1,
                    filters: vec![filter("churn/x")],
                }),
                0,
            );
        }
        subscribe(&sb, 1, "s/#", QoS::AtMostOnce);
        // Shard 1 must recover via the master snapshot and still see the
        // live subscription (and not the churned-away one).
        let out = sb.handle_packet(
            &2,
            Packet::Publish(Publish::qos0(topic("s/a"), b"x".to_vec())),
            1,
        );
        assert_eq!(out.forwards.len(), 1);
        let out = sb.handle_packet(
            &2,
            Packet::Publish(Publish::qos0(topic("churn/x"), b"y".to_vec())),
            2,
        );
        assert!(out.forwards.is_empty());
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let (sb, sub_id, pub_id) = two_shard();
        connect(&sb, 1, &sub_id);
        subscribe(&sb, 1, "s/#", QoS::AtMostOnce);
        connect(&sb, 2, &pub_id);
        let out = sb.handle_packet(
            &2,
            Packet::Publish(Publish::qos0(topic("s/a"), b"x".to_vec())),
            1,
        );
        let _ = sb.resolve(out, 1);
        let stats = sb.stats();
        assert_eq!(stats.clients_connected, 2);
        assert_eq!(stats.messages_in, 1, "counted only at the origin shard");
        assert_eq!(stats.messages_out, 1, "delivered exactly once");
        assert!(!sb.sys_stats_packets().is_empty());
    }

    #[test]
    fn subscribers_on_both_shards_each_get_one_copy() {
        let shards = 2;
        let sb: ShardedBroker<u32> = ShardedBroker::new(BrokerConfig {
            shards,
            ..BrokerConfig::default()
        });
        let local = id_on_shard("l", 1, shards);
        let remote = id_on_shard("r", 0, shards);
        let publisher = id_on_shard("p", 1, shards);
        connect(&sb, 1, &local);
        subscribe(&sb, 1, "s/#", QoS::AtMostOnce);
        connect(&sb, 2, &remote);
        subscribe(&sb, 2, "s/#", QoS::AtMostOnce);
        connect(&sb, 3, &publisher);
        let out = sb.handle_packet(
            &3,
            Packet::Publish(Publish::qos0(topic("s/a"), b"x".to_vec())),
            1,
        );
        let actions = sb.resolve(out, 1);
        assert_eq!(sends_to(&actions, 1).len(), 1);
        assert_eq!(sends_to(&actions, 2).len(), 1);
        assert_eq!(sb.stats().messages_out, 2);
    }
}
