//! # Generational connection slab
//!
//! The event-loop front-end (`net.rs`) identifies each connection it
//! owns by a dense token that doubles as the poller registration key.
//! A plain `Vec` index would suffer ABA hazards: epoll can deliver an
//! event batch in which an early event tears a connection down and a
//! later event carries the dead connection's (now recycled) index. The
//! slab therefore pairs every slot with a generation counter and packs
//! `generation << 32 | index` into the token — a stale token fails the
//! generation check and the event is ignored instead of being applied to
//! whichever new connection inherited the slot.
//!
//! Slots are recycled through a free list, so a loop that churns through
//! millions of short-lived connections keeps its memory bounded by the
//! peak concurrent count, and lookups stay a bounds-check plus an array
//! access — no hashing on the per-event hot path.

/// A slot map keyed by generational tokens. See the [module docs](self).
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn token_of(generation: u32, index: u32) -> u64 {
        (u64::from(generation) << 32) | u64::from(index)
    }

    fn parts(token: u64) -> (u32, usize) {
        ((token >> 32) as u32, (token & 0xFFFF_FFFF) as usize)
    }

    /// Stores `value` and returns its token.
    pub fn insert(&mut self, value: T) -> u64 {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none(), "free-listed slot was occupied");
            slot.value = Some(value);
            return Self::token_of(slot.generation, index);
        }
        let index = u32::try_from(self.slots.len()).expect("slab outgrew u32 indexing");
        self.slots.push(Slot {
            generation: 0,
            value: Some(value),
        });
        Self::token_of(0, index)
    }

    /// The entry for `token`, unless it was removed (stale tokens return
    /// `None`, never a recycled slot's new occupant).
    pub fn get(&self, token: u64) -> Option<&T> {
        let (generation, index) = Self::parts(token);
        let slot = self.slots.get(index)?;
        if slot.generation != generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Mutable access with the same staleness guarantee as
    /// [`get`](Self::get).
    pub fn get_mut(&mut self, token: u64) -> Option<&mut T> {
        let (generation, index) = Self::parts(token);
        let slot = self.slots.get_mut(index)?;
        if slot.generation != generation {
            return None;
        }
        slot.value.as_mut()
    }

    /// Removes and returns the entry, bumping the slot's generation so
    /// every outstanding token for it goes stale.
    pub fn remove(&mut self, token: u64) -> Option<T> {
        let (generation, index) = Self::parts(token);
        let slot = self.slots.get_mut(index)?;
        if slot.generation != generation {
            return None;
        }
        let value = slot.value.take()?;
        // Wrapping keeps the slot usable forever; a token would have to
        // survive 2^32 reuses of one slot to collide.
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(index as u32);
        self.len -= 1;
        Some(value)
    }

    /// Tokens of every live entry (teardown sweeps; allocation is fine
    /// off the hot path).
    pub fn tokens(&self) -> Vec<u64> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.value.is_some())
            .map(|(i, s)| Self::token_of(s.generation, i as u32))
            .collect()
    }

    /// Iterates live entries.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value
                .as_ref()
                .map(|v| (Self::token_of(s.generation, i as u32), v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.remove(a), None, "double remove is inert");
    }

    #[test]
    fn stale_token_does_not_alias_the_recycled_slot() {
        let mut slab = Slab::new();
        let old = slab.insert(1u32);
        slab.remove(old);
        // The freed slot is recycled for the next insert …
        let new = slab.insert(2u32);
        assert_ne!(old, new, "generation must disambiguate slot reuse");
        // … and the stale token sees nothing, not the new tenant.
        assert_eq!(slab.get(old), None);
        assert_eq!(slab.get_mut(old), None);
        assert_eq!(slab.remove(old), None);
        assert_eq!(slab.get(new), Some(&2));
    }

    #[test]
    fn tokens_and_iter_cover_exactly_the_live_set() {
        let mut slab = Slab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        let c = slab.insert(30);
        slab.remove(b);
        let mut tokens = slab.tokens();
        tokens.sort_unstable();
        let mut expect = vec![a, c];
        expect.sort_unstable();
        assert_eq!(tokens, expect);
        let values: Vec<i32> = slab.iter().map(|(_, v)| *v).collect();
        assert_eq!(values.iter().sum::<i32>(), 40);
    }

    #[test]
    fn churn_reuses_slots_without_growth() {
        let mut slab = Slab::new();
        let mut live = Vec::new();
        for i in 0..64 {
            live.push(slab.insert(i));
        }
        for _ in 0..10_000 {
            let t = live.pop().expect("live");
            slab.remove(t);
            live.push(slab.insert(0));
        }
        assert_eq!(slab.len(), 64);
        assert!(
            slab.slots.len() <= 65,
            "slot storage grew past the peak live count: {}",
            slab.slots.len()
        );
    }

    #[test]
    fn tokens_never_collide_with_the_wake_sentinel() {
        // WAKE_TOKEN is u64::MAX = generation u32::MAX | index
        // 0xFFFF_FFFF; a slab would need 2^32 slots and 2^32 removals of
        // the last one to mint it. Check the arithmetic anyway.
        assert_ne!(Slab::<u8>::token_of(0, 0), crate::poll::WAKE_TOKEN);
        assert_ne!(Slab::<u8>::token_of(1, 7), crate::poll::WAKE_TOKEN);
    }
}
