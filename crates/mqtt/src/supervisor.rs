//! Connection supervision for the sans-I/O [`crate::client::Client`]:
//! keep-alive dead-peer detection and automatic reconnect with
//! exponential backoff.
//!
//! The MQTT keep-alive mechanism is asymmetric: the *broker* expires a
//! client that stays silent for 1.5× the negotiated keep-alive, but the
//! protocol gives the client no equivalent rule — a client only learns
//! that its peer died when the transport tells it, and a datagram or
//! simulated transport never does. [`ReconnectSupervisor`] closes that
//! gap on the client side:
//!
//! * **Dead-peer detection** — the owner reports every inbound packet
//!   via [`ReconnectSupervisor::on_inbound`]; if a connected session
//!   receives nothing for `keep_alive_factor ×` the keep-alive interval
//!   (the client pings an idle link, so a live broker always produces
//!   traffic), the supervisor declares the transport lost.
//! * **CONNACK timeout** — a CONNECT that stays unanswered past
//!   [`ReconnectConfig::connect_timeout_ns`] is abandoned the same way
//!   (covers a broker that crashes mid-handshake).
//! * **Reconnect backoff** — after each failure the next CONNECT is
//!   scheduled at `base × 2^attempt` (capped) plus a jitter drawn from a
//!   caller-supplied random source, so a fleet of clients does not
//!   thunder back in lock-step. The caller passes its deterministic RNG
//!   (the simulator's seeded stream in virtual-time runs), which keeps
//!   reconnect schedules bit-reproducible.
//!
//! Like the client itself the supervisor is sans-I/O: it owns no clock
//! and no socket. The owner calls [`ReconnectSupervisor::poll`]
//! periodically and executes the returned [`SupervisorAction`].

use crate::client::ClientState;

/// Tuning knobs of the reconnect supervisor.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconnectConfig {
    /// Declare a connected peer dead after this multiple of the
    /// keep-alive interval without any inbound traffic (MQTT uses 1.5 on
    /// the broker side; the client mirrors it).
    pub keep_alive_factor: f64,
    /// Abandon a CONNECT whose CONNACK has not arrived after this many
    /// nanoseconds.
    pub connect_timeout_ns: u64,
    /// First reconnect delay in nanoseconds; doubles on every
    /// consecutive failure.
    pub backoff_base_ns: u64,
    /// Upper bound on the (pre-jitter) reconnect delay in nanoseconds.
    pub backoff_max_ns: u64,
    /// Additive jitter as a fraction of the delay: the actual wait is
    /// `delay + uniform(0, jitter_frac × delay)`.
    pub jitter_frac: f64,
}

impl Default for ReconnectConfig {
    fn default() -> Self {
        ReconnectConfig {
            keep_alive_factor: 1.5,
            connect_timeout_ns: 1_000_000_000,
            backoff_base_ns: 250_000_000,
            backoff_max_ns: 8_000_000_000,
            jitter_frac: 0.25,
        }
    }
}

/// What the owner of the session must do right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub enum SupervisorAction {
    /// Nothing to do.
    None,
    /// The peer is gone (dead-peer or CONNACK timeout): call
    /// [`crate::client::Client::transport_lost`] and treat the session
    /// as offline. A reconnect has already been scheduled.
    TransportLost,
    /// The backoff delay elapsed: issue a CONNECT (and report it via
    /// [`ReconnectSupervisor::on_connect_sent`]).
    Connect,
}

/// Counters describing the supervisor's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SupervisorStats {
    /// Transport-lost declarations of either kind.
    pub transport_lost: u64,
    /// Dead-peer detections (silence beyond the keep-alive grace).
    pub dead_peer_detections: u64,
    /// CONNECTs abandoned because no CONNACK arrived in time.
    pub connect_timeouts: u64,
    /// CONNECTs issued after the first one (reconnect attempts).
    pub reconnects: u64,
}

/// Keep-alive dead-peer detector plus reconnect-backoff scheduler. See
/// the [module docs](self).
#[derive(Debug)]
pub struct ReconnectSupervisor {
    config: ReconnectConfig,
    keep_alive_ns: u64,
    last_inbound_ns: u64,
    connect_sent_ns: Option<u64>,
    next_attempt_ns: Option<u64>,
    attempt: u32,
    connects_sent: u64,
    stats: SupervisorStats,
}

impl ReconnectSupervisor {
    /// Creates a supervisor for a session with the given keep-alive.
    pub fn new(config: ReconnectConfig, keep_alive_secs: u16) -> Self {
        ReconnectSupervisor {
            config,
            keep_alive_ns: keep_alive_secs as u64 * 1_000_000_000,
            last_inbound_ns: 0,
            connect_sent_ns: None,
            next_attempt_ns: None,
            attempt: 0,
            connects_sent: 0,
            stats: SupervisorStats::default(),
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> SupervisorStats {
        self.stats
    }

    /// Consecutive failures since the last successful CONNACK.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// When the next CONNECT is due, if one is scheduled.
    pub fn next_attempt_ns(&self) -> Option<u64> {
        self.next_attempt_ns
    }

    /// Nanoseconds of inbound silence after which a connected peer is
    /// declared dead (0 disables detection, like a zero keep-alive).
    pub fn grace_ns(&self) -> u64 {
        (self.keep_alive_ns as f64 * self.config.keep_alive_factor) as u64
    }

    /// Records inbound traffic from the broker (any packet counts —
    /// PINGRESP, acks, deliveries).
    pub fn on_inbound(&mut self, now_ns: u64) {
        self.last_inbound_ns = self.last_inbound_ns.max(now_ns);
    }

    /// Records that a CONNECT was put on the wire.
    pub fn on_connect_sent(&mut self, now_ns: u64) {
        self.connect_sent_ns = Some(now_ns);
        self.next_attempt_ns = None;
        self.connects_sent += 1;
        if self.connects_sent > 1 {
            self.stats.reconnects += 1;
        }
    }

    /// Records a successful CONNACK: the backoff resets and dead-peer
    /// detection restarts from `now_ns`.
    pub fn on_connected(&mut self, now_ns: u64) {
        self.attempt = 0;
        self.connect_sent_ns = None;
        self.next_attempt_ns = None;
        self.last_inbound_ns = self.last_inbound_ns.max(now_ns);
    }

    /// Drives detection and reconnect scheduling; call periodically.
    ///
    /// `rand` supplies the backoff jitter and is only invoked when a new
    /// attempt is scheduled, so a deterministic caller consumes its RNG
    /// stream reproducibly.
    pub fn poll(
        &mut self,
        state: ClientState,
        now_ns: u64,
        rand: &mut dyn FnMut() -> u64,
    ) -> SupervisorAction {
        match state {
            ClientState::Connected => {
                self.connect_sent_ns = None;
                let grace = self.grace_ns();
                if grace > 0 && now_ns.saturating_sub(self.last_inbound_ns) >= grace {
                    self.stats.dead_peer_detections += 1;
                    self.stats.transport_lost += 1;
                    self.schedule_retry(now_ns, rand);
                    return SupervisorAction::TransportLost;
                }
                SupervisorAction::None
            }
            ClientState::Connecting => {
                let sent = *self.connect_sent_ns.get_or_insert(now_ns);
                if now_ns.saturating_sub(sent) >= self.config.connect_timeout_ns {
                    self.stats.connect_timeouts += 1;
                    self.stats.transport_lost += 1;
                    self.connect_sent_ns = None;
                    self.schedule_retry(now_ns, rand);
                    return SupervisorAction::TransportLost;
                }
                SupervisorAction::None
            }
            ClientState::Disconnected => {
                match self.next_attempt_ns {
                    Some(at) if now_ns >= at => SupervisorAction::Connect,
                    Some(_) => SupervisorAction::None,
                    None => {
                        // Externally observed loss (refused CONNACK, a
                        // transport_lost by the owner): back off too.
                        self.schedule_retry(now_ns, rand);
                        SupervisorAction::None
                    }
                }
            }
        }
    }

    fn schedule_retry(&mut self, now_ns: u64, rand: &mut dyn FnMut() -> u64) {
        let shift = self.attempt.min(32);
        let delay = self
            .config
            .backoff_base_ns
            .saturating_mul(1u64 << shift)
            .min(self.config.backoff_max_ns);
        let jitter_span = (delay as f64 * self.config.jitter_frac) as u64;
        let jitter = if jitter_span > 0 {
            rand() % jitter_span
        } else {
            0
        };
        self.next_attempt_ns = Some(now_ns + delay + jitter);
        self.attempt = self.attempt.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    fn sup(keep_alive_secs: u16) -> ReconnectSupervisor {
        ReconnectSupervisor::new(ReconnectConfig::default(), keep_alive_secs)
    }

    /// A SplitMix64 stream as the deterministic jitter source.
    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn dead_broker_is_detected_within_grace() {
        let mut s = sup(10);
        let mut r = rng(1);
        s.on_connected(0);
        // Just under 1.5× keep-alive: still considered alive.
        assert_eq!(
            s.poll(ClientState::Connected, 15 * SEC - 1, &mut r),
            SupervisorAction::None
        );
        // At the grace boundary: dead.
        assert_eq!(
            s.poll(ClientState::Connected, 15 * SEC, &mut r),
            SupervisorAction::TransportLost
        );
        assert_eq!(s.stats().dead_peer_detections, 1);
        assert!(s.next_attempt_ns().is_some(), "a retry must be scheduled");
    }

    #[test]
    fn live_broker_with_jittered_latency_is_never_declared_dead() {
        let mut s = sup(2);
        let mut r = rng(2);
        s.on_connected(0);
        // Ping responses arrive late and irregularly, but always inside
        // the 3 s grace window (keep-alive 2 s × 1.5).
        let mut now = 0;
        for latency_ms in [300u64, 700, 150, 900, 450, 820, 60, 990] {
            now += 2 * SEC + latency_ms * 1_000_000;
            assert_eq!(
                s.poll(ClientState::Connected, now - 1, &mut r),
                SupervisorAction::None,
                "falsely declared dead at {now}"
            );
            s.on_inbound(now);
        }
        assert_eq!(s.stats().dead_peer_detections, 0);
        assert_eq!(s.stats().transport_lost, 0);
    }

    #[test]
    fn zero_keep_alive_disables_dead_peer_detection() {
        let mut s = sup(0);
        let mut r = rng(3);
        s.on_connected(0);
        assert_eq!(
            s.poll(ClientState::Connected, 3600 * SEC, &mut r),
            SupervisorAction::None
        );
    }

    #[test]
    fn connack_timeout_abandons_the_attempt() {
        let mut s = sup(10);
        let mut r = rng(4);
        s.on_connect_sent(0);
        assert_eq!(
            s.poll(ClientState::Connecting, SEC - 1, &mut r),
            SupervisorAction::None
        );
        assert_eq!(
            s.poll(ClientState::Connecting, SEC, &mut r),
            SupervisorAction::TransportLost
        );
        assert_eq!(s.stats().connect_timeouts, 1);
    }

    #[test]
    fn backoff_doubles_up_to_the_cap_and_jitter_is_bounded() {
        let cfg = ReconnectConfig::default();
        let mut s = ReconnectSupervisor::new(cfg.clone(), 10);
        let mut r = rng(5);
        let mut now = 0u64;
        let mut prev_delay = 0u64;
        for failure in 0..8 {
            s.on_connect_sent(now);
            now += cfg.connect_timeout_ns;
            assert_eq!(
                s.poll(ClientState::Connecting, now, &mut r),
                SupervisorAction::TransportLost
            );
            let at = s.next_attempt_ns().expect("scheduled");
            let delay = at - now;
            let nominal = (cfg.backoff_base_ns << failure).min(cfg.backoff_max_ns);
            assert!(
                delay >= nominal && delay as f64 <= nominal as f64 * (1.0 + cfg.jitter_frac),
                "failure {failure}: delay {delay} outside [{nominal}, +{}%]",
                cfg.jitter_frac * 100.0
            );
            if nominal < cfg.backoff_max_ns {
                assert!(delay > prev_delay, "backoff must grow before the cap");
            }
            prev_delay = delay;
            // Not due yet, then due.
            assert_eq!(
                s.poll(ClientState::Disconnected, at - 1, &mut r),
                SupervisorAction::None
            );
            assert_eq!(
                s.poll(ClientState::Disconnected, at, &mut r),
                SupervisorAction::Connect
            );
            now = at;
        }
    }

    #[test]
    fn identical_rng_streams_give_identical_schedules() {
        let schedule = |seed: u64| -> Vec<u64> {
            let mut s = sup(10);
            let mut r = rng(seed);
            let mut now = 0;
            let mut out = Vec::new();
            for _ in 0..6 {
                s.on_connect_sent(now);
                now += 2 * SEC;
                let _ = s.poll(ClientState::Connecting, now, &mut r);
                let at = s.next_attempt_ns().expect("scheduled");
                out.push(at);
                now = at;
            }
            out
        };
        assert_eq!(schedule(42), schedule(42));
        assert_ne!(
            schedule(42),
            schedule(43),
            "jitter must depend on the stream"
        );
    }

    #[test]
    fn success_resets_the_backoff() {
        let mut s = sup(10);
        let mut r = rng(6);
        for _ in 0..4 {
            s.on_connect_sent(0);
            let _ = s.poll(ClientState::Connecting, 2 * SEC, &mut r);
        }
        assert!(s.attempt() >= 4);
        s.on_connect_sent(3 * SEC);
        s.on_connected(3 * SEC);
        assert_eq!(s.attempt(), 0);
        assert_eq!(s.next_attempt_ns(), None);
        // The next failure starts from the base delay again.
        let _ = s.poll(ClientState::Connected, 20 * SEC, &mut r);
        let at = s.next_attempt_ns().expect("scheduled");
        let delay = at - 20 * SEC;
        assert!(delay < 2 * ReconnectConfig::default().backoff_base_ns);
    }

    #[test]
    fn unscheduled_disconnect_backs_off_before_reconnecting() {
        // A refused CONNACK moves the client to Disconnected without the
        // supervisor having declared anything: the first poll schedules,
        // later polls fire the CONNECT.
        let mut s = sup(10);
        let mut r = rng(7);
        assert_eq!(
            s.poll(ClientState::Disconnected, 0, &mut r),
            SupervisorAction::None
        );
        let at = s.next_attempt_ns().expect("scheduled");
        assert_eq!(
            s.poll(ClientState::Disconnected, at, &mut r),
            SupervisorAction::Connect
        );
    }

    #[test]
    fn reconnect_counter_skips_the_first_connect() {
        let mut s = sup(10);
        s.on_connect_sent(0);
        assert_eq!(s.stats().reconnects, 0);
        s.on_connect_sent(SEC);
        s.on_connect_sent(2 * SEC);
        assert_eq!(s.stats().reconnects, 2);
    }
}
