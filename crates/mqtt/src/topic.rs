//! Topic names and subscription filters, with MQTT 3.1.1 wildcard
//! semantics.
//!
//! * A **topic name** is what messages are published to: `sensor/a/accel`.
//!   It may not contain wildcards.
//! * A **topic filter** is what clients subscribe with. `+` matches exactly
//!   one level, `#` (only at the end) matches any number of remaining
//!   levels including zero.
//!
//! Per the spec, leading-`$` topics (`$SYS/...`) are not matched by filters
//! starting with a wildcard.

use core::fmt;

use crate::error::TopicError;

const MAX_TOPIC_BYTES: usize = 65_535;

fn validate_common(s: &str) -> Result<(), TopicError> {
    if s.is_empty() {
        return Err(TopicError::Empty);
    }
    if s.len() > MAX_TOPIC_BYTES {
        return Err(TopicError::TooLong);
    }
    if s.contains('\0') {
        return Err(TopicError::NulCharacter);
    }
    Ok(())
}

/// A validated topic name (no wildcards).
///
/// ```
/// use ifot_mqtt::topic::TopicName;
///
/// let t = TopicName::new("sensor/a/accel")?;
/// assert_eq!(t.as_str(), "sensor/a/accel");
/// assert!(TopicName::new("sensor/+/accel").is_err());
/// # Ok::<(), ifot_mqtt::error::TopicError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TopicName(String);

impl TopicName {
    /// Validates and wraps a topic name.
    ///
    /// # Errors
    ///
    /// Returns [`TopicError`] if the name is empty, contains NUL or a
    /// wildcard character, or exceeds 65535 bytes.
    pub fn new(s: impl Into<String>) -> Result<Self, TopicError> {
        let s = s.into();
        validate_common(&s)?;
        if s.contains('+') || s.contains('#') {
            return Err(TopicError::WildcardInName);
        }
        Ok(TopicName(s))
    }

    /// The topic as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Iterates over the `/`-separated levels.
    pub fn levels(&self) -> impl Iterator<Item = &str> {
        self.0.split('/')
    }

    /// Consumes the name, returning the inner string.
    pub fn into_inner(self) -> String {
        self.0
    }
}

impl fmt::Display for TopicName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for TopicName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl core::str::FromStr for TopicName {
    type Err = TopicError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TopicName::new(s)
    }
}

/// A validated subscription filter (may contain `+` and `#`).
///
/// ```
/// use ifot_mqtt::topic::{TopicFilter, TopicName};
///
/// let f = TopicFilter::new("sensor/+/accel")?;
/// assert!(f.matches(&TopicName::new("sensor/a/accel")?));
/// assert!(!f.matches(&TopicName::new("sensor/a/gyro")?));
/// # Ok::<(), ifot_mqtt::error::TopicError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TopicFilter(String);

impl TopicFilter {
    /// Validates and wraps a subscription filter.
    ///
    /// # Errors
    ///
    /// Returns [`TopicError`] if the filter is empty, contains NUL,
    /// exceeds 65535 bytes, or misuses a wildcard (`#` not last / not a
    /// whole level, `+` not a whole level).
    pub fn new(s: impl Into<String>) -> Result<Self, TopicError> {
        let s = s.into();
        validate_common(&s)?;
        let levels: Vec<&str> = s.split('/').collect();
        for (i, level) in levels.iter().enumerate() {
            if level.contains('#') {
                if *level != "#" {
                    return Err(TopicError::InvalidMultiLevelWildcard);
                }
                if i != levels.len() - 1 {
                    return Err(TopicError::InvalidMultiLevelWildcard);
                }
            }
            if level.contains('+') && *level != "+" {
                return Err(TopicError::InvalidSingleLevelWildcard);
            }
        }
        Ok(TopicFilter(s))
    }

    /// The filter as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Iterates over the `/`-separated levels.
    pub fn levels(&self) -> impl Iterator<Item = &str> {
        self.0.split('/')
    }

    /// Consumes the filter, returning the inner string.
    pub fn into_inner(self) -> String {
        self.0
    }

    /// Whether this filter matches the given topic name, per the MQTT
    /// 3.1.1 wildcard rules (including the `$`-topic exception).
    pub fn matches(&self, topic: &TopicName) -> bool {
        // Filters starting with a wildcard do not match $-topics.
        if topic.as_str().starts_with('$') && (self.0.starts_with('+') || self.0.starts_with('#')) {
            return false;
        }
        let mut filter_levels = self.0.split('/');
        let mut topic_levels = topic.as_str().split('/');
        loop {
            match (filter_levels.next(), topic_levels.next()) {
                (Some("#"), _) => return true,
                (Some("+"), Some(_)) => continue,
                (Some(f), Some(t)) if f == t => continue,
                (Some(_), Some(_)) => return false,
                // Filter longer than topic: only a trailing "#" matches the
                // parent, and that case was consumed by the first arm.
                (Some(_), None) => return false,
                (None, Some(_)) => return false,
                (None, None) => return true,
            }
        }
    }
}

impl fmt::Display for TopicFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for TopicFilter {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl core::str::FromStr for TopicFilter {
    type Err = TopicError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TopicFilter::new(s)
    }
}

impl From<TopicName> for TopicFilter {
    fn from(name: TopicName) -> Self {
        // Every valid topic name is a valid (wildcard-free) filter.
        TopicFilter(name.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> TopicName {
        TopicName::new(s).expect("valid name")
    }

    fn filter(s: &str) -> TopicFilter {
        TopicFilter::new(s).expect("valid filter")
    }

    #[test]
    fn name_validation() {
        assert!(TopicName::new("a/b/c").is_ok());
        assert!(TopicName::new("/leading").is_ok());
        assert!(TopicName::new("trailing/").is_ok());
        assert!(TopicName::new("with space/ok").is_ok());
        assert_eq!(TopicName::new(""), Err(TopicError::Empty));
        assert_eq!(TopicName::new("a/+/c"), Err(TopicError::WildcardInName));
        assert_eq!(TopicName::new("a/#"), Err(TopicError::WildcardInName));
        assert_eq!(TopicName::new("a\0b"), Err(TopicError::NulCharacter));
    }

    #[test]
    fn filter_validation() {
        assert!(TopicFilter::new("a/b/c").is_ok());
        assert!(TopicFilter::new("#").is_ok());
        assert!(TopicFilter::new("a/#").is_ok());
        assert!(TopicFilter::new("+/+/+").is_ok());
        assert_eq!(TopicFilter::new(""), Err(TopicError::Empty));
        assert_eq!(
            TopicFilter::new("a/#/b"),
            Err(TopicError::InvalidMultiLevelWildcard)
        );
        assert_eq!(
            TopicFilter::new("a/b#"),
            Err(TopicError::InvalidMultiLevelWildcard)
        );
        assert_eq!(
            TopicFilter::new("a/b+/c"),
            Err(TopicError::InvalidSingleLevelWildcard)
        );
    }

    #[test]
    fn exact_match() {
        assert!(filter("a/b/c").matches(&name("a/b/c")));
        assert!(!filter("a/b/c").matches(&name("a/b")));
        assert!(!filter("a/b").matches(&name("a/b/c")));
        assert!(!filter("a/b/c").matches(&name("a/b/d")));
    }

    #[test]
    fn single_level_wildcard() {
        assert!(filter("a/+/c").matches(&name("a/b/c")));
        assert!(filter("a/+/c").matches(&name("a/x/c")));
        assert!(!filter("a/+/c").matches(&name("a/b/d")));
        assert!(!filter("a/+").matches(&name("a/b/c")));
        assert!(filter("+").matches(&name("a")));
        assert!(!filter("+").matches(&name("a/b")));
        // "+" matches an empty level.
        assert!(filter("a/+/c").matches(&name("a//c")));
    }

    #[test]
    fn multi_level_wildcard() {
        assert!(filter("#").matches(&name("a")));
        assert!(filter("#").matches(&name("a/b/c")));
        assert!(filter("a/#").matches(&name("a/b")));
        assert!(filter("a/#").matches(&name("a/b/c/d")));
        assert!(!filter("a/#").matches(&name("b/c")));
        // Per spec, "a/#" also matches the parent "a".
        assert!(filter("a/#").matches(&name("a")));
    }

    #[test]
    fn parent_match_via_hash_only() {
        // "sport/tennis/player1/#" matches "sport/tennis/player1".
        assert!(filter("sport/tennis/player1/#").matches(&name("sport/tennis/player1")));
        assert!(!filter("sport/tennis/player1/+").matches(&name("sport/tennis/player1")));
    }

    #[test]
    fn dollar_topics_hidden_from_leading_wildcards() {
        assert!(!filter("#").matches(&name("$SYS/broker/load")));
        assert!(!filter("+/broker/load").matches(&name("$SYS/broker/load")));
        assert!(filter("$SYS/#").matches(&name("$SYS/broker/load")));
        assert!(filter("$SYS/broker/load").matches(&name("$SYS/broker/load")));
    }

    #[test]
    fn name_converts_to_filter() {
        let f: TopicFilter = name("a/b").into();
        assert!(f.matches(&name("a/b")));
    }

    #[test]
    fn from_str_parses() {
        let t: TopicName = "x/y".parse().expect("valid");
        assert_eq!(t.as_str(), "x/y");
        let f: TopicFilter = "x/#".parse().expect("valid");
        assert_eq!(f.as_str(), "x/#");
    }

    #[test]
    fn levels_iterate() {
        let t = name("a/b/c");
        assert_eq!(t.levels().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        let f = filter("a/+/#");
        assert_eq!(f.levels().count(), 3);
    }

    #[test]
    fn display_round_trips() {
        assert_eq!(name("a/b").to_string(), "a/b");
        assert_eq!(filter("a/#").to_string(), "a/#");
    }
}
