//! Subscription trie: maps topic names to the set of matching
//! subscriptions without scanning every filter.
//!
//! Each node of the trie is one topic level; `+` and `#` are stored as
//! dedicated children. Matching walks the trie level by level, branching
//! into literal, `+` and `#` children, which makes a lookup proportional
//! to the number of levels times the branching of wildcards actually
//! present — not to the total number of subscriptions.

use std::cell::RefCell;
use std::collections::btree_map::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

use crate::packet::QoS;
use crate::topic::{TopicFilter, TopicName};

/// Maximum number of memoised topic lookups kept in the match cache.
/// The broker's steady-state workload cycles over a bounded set of sensor
/// topics; the cap only guards against unbounded adversarial topic churn.
const MATCH_CACHE_CAP: usize = 1024;

/// One stored subscription: the subscriber key and its granted QoS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subscription<K> {
    /// Subscriber key (client id in the broker).
    pub key: K,
    /// Granted maximum QoS for this subscription.
    pub qos: QoS,
}

#[derive(Debug, Clone)]
struct Node<K> {
    children: BTreeMap<String, Node<K>>,
    subscribers: Vec<Subscription<K>>,
}

impl<K> Default for Node<K> {
    fn default() -> Self {
        Node {
            children: BTreeMap::new(),
            subscribers: Vec::new(),
        }
    }
}

impl<K: Ord + Clone> Node<K> {
    fn is_empty(&self) -> bool {
        self.children.is_empty() && self.subscribers.is_empty()
    }

    fn prune(&mut self) {
        self.children.retain(|_, child| {
            child.prune();
            !child.is_empty()
        });
    }
}

/// A trie of topic filters with per-subscriber granted QoS.
///
/// ```
/// use ifot_mqtt::packet::QoS;
/// use ifot_mqtt::topic::{TopicFilter, TopicName};
/// use ifot_mqtt::tree::SubscriptionTree;
///
/// let mut tree: SubscriptionTree<&'static str> = SubscriptionTree::new();
/// tree.subscribe("e", &TopicFilter::new("sensor/#")?, QoS::AtLeastOnce);
/// let hits = tree.matches(&TopicName::new("sensor/a")?);
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].key, "e");
/// # Ok::<(), ifot_mqtt::error::TopicError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SubscriptionTree<K> {
    root: Node<K>,
    len: usize,
    /// Memoised lookup results keyed by topic name, shared as `Arc` slices
    /// so a cache hit is allocation-free. Invalidation rule: *every*
    /// mutating call ([`subscribe`](Self::subscribe),
    /// [`unsubscribe`](Self::unsubscribe), [`remove_key`](Self::remove_key))
    /// clears the whole cache — coarse, but mutations are rare next to
    /// per-publish lookups in the steady-state flow workload.
    cache: RefCell<HashMap<String, Arc<[Subscription<K>]>>>,
}

impl<K> Default for SubscriptionTree<K> {
    fn default() -> Self {
        SubscriptionTree {
            root: Node::default(),
            len: 0,
            cache: RefCell::new(HashMap::new()),
        }
    }
}

impl<K: Ord + Clone> SubscriptionTree<K> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored (key, filter) subscriptions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no subscription is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts or updates the subscription of `key` under `filter`,
    /// returning the previous QoS if the subscription already existed.
    pub fn subscribe(&mut self, key: K, filter: &TopicFilter, qos: QoS) -> Option<QoS> {
        self.cache.get_mut().clear();
        let mut node = &mut self.root;
        for level in filter.levels() {
            node = node.children.entry(level.to_owned()).or_default();
        }
        if let Some(existing) = node.subscribers.iter_mut().find(|s| s.key == key) {
            let old = existing.qos;
            existing.qos = qos;
            Some(old)
        } else {
            node.subscribers.push(Subscription { key, qos });
            self.len += 1;
            None
        }
    }

    /// Removes the subscription of `key` under `filter`; returns whether
    /// it existed.
    pub fn unsubscribe(&mut self, key: &K, filter: &TopicFilter) -> bool {
        self.cache.get_mut().clear();
        let mut node = &mut self.root;
        for level in filter.levels() {
            match node.children.get_mut(level) {
                Some(child) => node = child,
                None => return false,
            }
        }
        let before = node.subscribers.len();
        node.subscribers.retain(|s| &s.key != key);
        let removed = node.subscribers.len() != before;
        if removed {
            self.len -= 1;
            self.root.prune();
        }
        removed
    }

    /// Removes every subscription of `key`; returns how many were removed.
    pub fn remove_key(&mut self, key: &K) -> usize {
        self.cache.get_mut().clear();
        fn walk<K: Ord>(node: &mut Node<K>, key: &K) -> usize {
            let before = node.subscribers.len();
            node.subscribers.retain(|s| &s.key != key);
            let mut removed = before - node.subscribers.len();
            for child in node.children.values_mut() {
                removed += walk(child, key);
            }
            removed
        }
        let removed = walk(&mut self.root, key);
        self.len -= removed;
        self.root.prune();
        removed
    }

    /// All subscriptions whose filter matches `topic`. A subscriber
    /// matching through several filters appears once with the maximum
    /// granted QoS (the overlapping-subscription rule brokers apply).
    ///
    /// Convenience wrapper over [`matches_shared`](Self::matches_shared)
    /// that clones the shared result into an owned `Vec`.
    pub fn matches(&self, topic: &TopicName) -> Vec<Subscription<K>> {
        self.matches_shared(topic).to_vec()
    }

    /// Like [`matches`](Self::matches), but returns the memoised
    /// reference-counted result: a cache hit performs zero heap
    /// allocations (one `Arc` refcount bump). This is the broker's
    /// per-publish fast path — sensor flows publish the same few topics
    /// at high rate, so steady state is all hits.
    pub fn matches_shared(&self, topic: &TopicName) -> Arc<[Subscription<K>]> {
        let name = topic.as_str();
        if let Some(hit) = self.cache.borrow().get(name) {
            return Arc::clone(hit);
        }

        // Miss: walk the trie over `split('/')` positions directly — no
        // intermediate level Vec — then dedup in place.
        let mut raw: Vec<Subscription<K>> = Vec::new();
        collect(
            &self.root,
            Some(name),
            true,
            name.starts_with('$'),
            &mut raw,
        );

        // Deduplicate by key keeping the strongest QoS; sort ascending by
        // key (descending QoS within a key) so the retained first element
        // per key carries the maximum granted QoS, in deterministic order.
        raw.sort_by(|a, b| {
            a.key
                .cmp(&b.key)
                .then_with(|| (b.qos as u8).cmp(&(a.qos as u8)))
        });
        raw.dedup_by(|next, kept| next.key == kept.key);

        let shared: Arc<[Subscription<K>]> = raw.into();
        let mut cache = self.cache.borrow_mut();
        if cache.len() >= MATCH_CACHE_CAP {
            cache.clear();
        }
        cache.insert(name.to_owned(), Arc::clone(&shared));
        shared
    }

    /// Iterates over every stored (filter, key, qos) triple, mainly for
    /// introspection and tests. Filters are reconstructed from the trie
    /// into a single scratch buffer that grows and shrinks with the walk,
    /// instead of cloning every level string at every node.
    pub fn iter(&self) -> Vec<(String, K, QoS)> {
        fn walk<K: Clone>(node: &Node<K>, prefix: &mut String, out: &mut Vec<(String, K, QoS)>) {
            for sub in &node.subscribers {
                out.push((prefix.clone(), sub.key.clone(), sub.qos));
            }
            for (level, child) in &node.children {
                let saved = prefix.len();
                if !prefix.is_empty() {
                    prefix.push('/');
                }
                prefix.push_str(level);
                walk(child, prefix, out);
                prefix.truncate(saved);
            }
        }
        let mut out = Vec::new();
        let mut prefix = String::new();
        walk(&self.root, &mut prefix, &mut out);
        out
    }
}

/// Trie walk over the unconsumed topic suffix. `remainder` is `None` once
/// every level is consumed; `Some(s)` holds the rest of the topic string
/// (its first `/`-separated segment is the current level, so no level
/// vector is ever materialised).
fn collect<K: Ord + Clone>(
    node: &Node<K>,
    remainder: Option<&str>,
    at_root: bool,
    skip_wildcard_root: bool,
    out: &mut Vec<Subscription<K>>,
) {
    let rem = match remainder {
        None => {
            out.extend(node.subscribers.iter().cloned());
            // "a/#" also matches "a": a trailing "#" child matches the parent.
            if let Some(hash) = node.children.get("#") {
                if !(skip_wildcard_root && at_root) {
                    out.extend(hash.subscribers.iter().cloned());
                }
            }
            return;
        }
        Some(rem) => rem,
    };
    let (level, rest) = match rem.find('/') {
        Some(i) => (&rem[..i], Some(&rem[i + 1..])),
        None => (rem, None),
    };
    if let Some(child) = node.children.get(level) {
        collect(child, rest, false, skip_wildcard_root, out);
    }
    let wildcards_allowed = !(skip_wildcard_root && at_root);
    if wildcards_allowed {
        if let Some(plus) = node.children.get("+") {
            collect(plus, rest, false, skip_wildcard_root, out);
        }
        if let Some(hash) = node.children.get("#") {
            out.extend(hash.subscribers.iter().cloned());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> TopicName {
        TopicName::new(s).expect("valid name")
    }

    fn filter(s: &str) -> TopicFilter {
        TopicFilter::new(s).expect("valid filter")
    }

    fn keys(tree: &SubscriptionTree<&'static str>, topic: &str) -> Vec<&'static str> {
        tree.matches(&name(topic))
            .into_iter()
            .map(|s| s.key)
            .collect()
    }

    #[test]
    fn exact_and_wildcard_matching() {
        let mut t = SubscriptionTree::new();
        t.subscribe("exact", &filter("a/b"), QoS::AtMostOnce);
        t.subscribe("plus", &filter("a/+"), QoS::AtMostOnce);
        t.subscribe("hash", &filter("a/#"), QoS::AtMostOnce);
        t.subscribe("other", &filter("x/y"), QoS::AtMostOnce);
        assert_eq!(keys(&t, "a/b"), vec!["exact", "hash", "plus"]);
        assert_eq!(keys(&t, "a/c"), vec!["hash", "plus"]);
        assert_eq!(keys(&t, "a/b/c"), vec!["hash"]);
        assert_eq!(keys(&t, "a"), vec!["hash"]);
        assert_eq!(keys(&t, "q"), Vec::<&str>::new());
    }

    #[test]
    fn overlapping_subscriptions_dedupe_with_max_qos() {
        let mut t = SubscriptionTree::new();
        t.subscribe("e", &filter("s/#"), QoS::AtMostOnce);
        t.subscribe("e", &filter("s/a"), QoS::AtLeastOnce);
        let hits = t.matches(&name("s/a"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].qos, QoS::AtLeastOnce);
    }

    #[test]
    fn resubscribe_updates_qos() {
        let mut t = SubscriptionTree::new();
        assert_eq!(t.subscribe("e", &filter("a"), QoS::AtMostOnce), None);
        assert_eq!(
            t.subscribe("e", &filter("a"), QoS::AtLeastOnce),
            Some(QoS::AtMostOnce)
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.matches(&name("a"))[0].qos, QoS::AtLeastOnce);
    }

    #[test]
    fn unsubscribe_removes_only_that_filter() {
        let mut t = SubscriptionTree::new();
        t.subscribe("e", &filter("a/+"), QoS::AtMostOnce);
        t.subscribe("e", &filter("a/b"), QoS::AtMostOnce);
        assert!(t.unsubscribe(&"e", &filter("a/+")));
        assert!(!t.unsubscribe(&"e", &filter("a/+")));
        assert_eq!(t.len(), 1);
        assert_eq!(keys(&t, "a/b"), vec!["e"]);
        assert_eq!(keys(&t, "a/c"), Vec::<&str>::new());
    }

    #[test]
    fn remove_key_clears_everything_for_client() {
        let mut t = SubscriptionTree::new();
        t.subscribe("e", &filter("a/#"), QoS::AtMostOnce);
        t.subscribe("e", &filter("b"), QoS::AtMostOnce);
        t.subscribe("f", &filter("b"), QoS::AtMostOnce);
        assert_eq!(t.remove_key(&"e"), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(keys(&t, "b"), vec!["f"]);
    }

    #[test]
    fn dollar_topics_not_matched_by_leading_wildcards() {
        let mut t = SubscriptionTree::new();
        t.subscribe("hash", &filter("#"), QoS::AtMostOnce);
        t.subscribe("plus", &filter("+/x"), QoS::AtMostOnce);
        t.subscribe("sys", &filter("$SYS/#"), QoS::AtMostOnce);
        assert_eq!(keys(&t, "$SYS/x"), vec!["sys"]);
        assert_eq!(keys(&t, "normal/x"), vec!["hash", "plus"]);
    }

    #[test]
    fn empty_tree_matches_nothing() {
        let t: SubscriptionTree<&str> = SubscriptionTree::new();
        assert!(t.is_empty());
        assert!(t.matches(&name("a")).is_empty());
    }

    #[test]
    fn iter_reconstructs_filters() {
        let mut t = SubscriptionTree::new();
        t.subscribe("e", &filter("a/+/c"), QoS::AtLeastOnce);
        t.subscribe("f", &filter("#"), QoS::AtMostOnce);
        let mut triples = t.iter();
        triples.sort();
        assert_eq!(
            triples,
            vec![
                ("#".to_owned(), "f", QoS::AtMostOnce),
                ("a/+/c".to_owned(), "e", QoS::AtLeastOnce),
            ]
        );
    }

    #[test]
    fn pruning_keeps_tree_small_after_unsubscribes() {
        let mut t = SubscriptionTree::new();
        for i in 0..100 {
            t.subscribe(i, &filter(&format!("deep/{i}/leaf")), QoS::AtMostOnce);
        }
        for i in 0..100 {
            assert!(t.unsubscribe(&i, &filter(&format!("deep/{i}/leaf"))));
        }
        assert!(t.is_empty());
        assert!(t.root.children.is_empty(), "trie not pruned");
    }

    #[test]
    fn repeated_lookup_hits_cache_without_reallocating() {
        let mut t = SubscriptionTree::new();
        t.subscribe("e", &filter("a/#"), QoS::AtMostOnce);
        let first = t.matches_shared(&name("a/b"));
        let second = t.matches_shared(&name("a/b"));
        assert!(
            Arc::ptr_eq(&first, &second),
            "cache hit must return the same shared slice"
        );
        assert_eq!(first.len(), 1);
    }

    #[test]
    fn mutations_invalidate_the_match_cache() {
        let mut t = SubscriptionTree::new();
        t.subscribe("e", &filter("a/#"), QoS::AtMostOnce);
        assert_eq!(t.matches_shared(&name("a/b")).len(), 1);

        t.subscribe("f", &filter("a/b"), QoS::AtLeastOnce);
        assert_eq!(t.matches_shared(&name("a/b")).len(), 2, "after subscribe");

        t.unsubscribe(&"f", &filter("a/b"));
        assert_eq!(t.matches_shared(&name("a/b")).len(), 1, "after unsubscribe");

        t.remove_key(&"e");
        assert_eq!(t.matches_shared(&name("a/b")).len(), 0, "after remove_key");
    }

    #[test]
    fn shared_and_owned_lookups_agree() {
        let mut t = SubscriptionTree::new();
        t.subscribe("exact", &filter("a/b"), QoS::AtMostOnce);
        t.subscribe("plus", &filter("a/+"), QoS::AtLeastOnce);
        t.subscribe("hash", &filter("#"), QoS::ExactlyOnce);
        for topic in ["a/b", "a/c", "a", "x/y/z", "$SYS/x"] {
            assert_eq!(
                t.matches(&name(topic)),
                t.matches_shared(&name(topic)).to_vec(),
                "topic {topic}"
            );
        }
    }
}
