//! Subscription trie: maps topic names to the set of matching
//! subscriptions without scanning every filter.
//!
//! Each node of the trie is one topic level; `+` and `#` are stored as
//! dedicated children. Matching walks the trie level by level, branching
//! into literal, `+` and `#` children, which makes a lookup proportional
//! to the number of levels times the branching of wildcards actually
//! present — not to the total number of subscriptions.

use std::collections::btree_map::BTreeMap;

use crate::packet::QoS;
use crate::topic::{TopicFilter, TopicName};

/// One stored subscription: the subscriber key and its granted QoS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subscription<K> {
    /// Subscriber key (client id in the broker).
    pub key: K,
    /// Granted maximum QoS for this subscription.
    pub qos: QoS,
}

#[derive(Debug, Clone)]
struct Node<K> {
    children: BTreeMap<String, Node<K>>,
    subscribers: Vec<Subscription<K>>,
}

impl<K> Default for Node<K> {
    fn default() -> Self {
        Node {
            children: BTreeMap::new(),
            subscribers: Vec::new(),
        }
    }
}

impl<K: Ord + Clone> Node<K> {
    fn is_empty(&self) -> bool {
        self.children.is_empty() && self.subscribers.is_empty()
    }

    fn prune(&mut self) {
        self.children.retain(|_, child| {
            child.prune();
            !child.is_empty()
        });
    }
}

/// A trie of topic filters with per-subscriber granted QoS.
///
/// ```
/// use ifot_mqtt::packet::QoS;
/// use ifot_mqtt::topic::{TopicFilter, TopicName};
/// use ifot_mqtt::tree::SubscriptionTree;
///
/// let mut tree: SubscriptionTree<&'static str> = SubscriptionTree::new();
/// tree.subscribe("e", &TopicFilter::new("sensor/#")?, QoS::AtLeastOnce);
/// let hits = tree.matches(&TopicName::new("sensor/a")?);
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].key, "e");
/// # Ok::<(), ifot_mqtt::error::TopicError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SubscriptionTree<K> {
    root: Node<K>,
    len: usize,
}

impl<K> Default for SubscriptionTree<K> {
    fn default() -> Self {
        SubscriptionTree {
            root: Node::default(),
            len: 0,
        }
    }
}

impl<K: Ord + Clone> SubscriptionTree<K> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored (key, filter) subscriptions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no subscription is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts or updates the subscription of `key` under `filter`,
    /// returning the previous QoS if the subscription already existed.
    pub fn subscribe(&mut self, key: K, filter: &TopicFilter, qos: QoS) -> Option<QoS> {
        let mut node = &mut self.root;
        for level in filter.levels() {
            node = node.children.entry(level.to_owned()).or_default();
        }
        if let Some(existing) = node.subscribers.iter_mut().find(|s| s.key == key) {
            let old = existing.qos;
            existing.qos = qos;
            Some(old)
        } else {
            node.subscribers.push(Subscription { key, qos });
            self.len += 1;
            None
        }
    }

    /// Removes the subscription of `key` under `filter`; returns whether
    /// it existed.
    pub fn unsubscribe(&mut self, key: &K, filter: &TopicFilter) -> bool {
        let mut node = &mut self.root;
        for level in filter.levels() {
            match node.children.get_mut(level) {
                Some(child) => node = child,
                None => return false,
            }
        }
        let before = node.subscribers.len();
        node.subscribers.retain(|s| &s.key != key);
        let removed = node.subscribers.len() != before;
        if removed {
            self.len -= 1;
            self.root.prune();
        }
        removed
    }

    /// Removes every subscription of `key`; returns how many were removed.
    pub fn remove_key(&mut self, key: &K) -> usize {
        fn walk<K: Ord>(node: &mut Node<K>, key: &K) -> usize {
            let before = node.subscribers.len();
            node.subscribers.retain(|s| &s.key != key);
            let mut removed = before - node.subscribers.len();
            for child in node.children.values_mut() {
                removed += walk(child, key);
            }
            removed
        }
        let removed = walk(&mut self.root, key);
        self.len -= removed;
        self.root.prune();
        removed
    }

    /// All subscriptions whose filter matches `topic`. A subscriber
    /// matching through several filters appears once with the maximum
    /// granted QoS (the overlapping-subscription rule brokers apply).
    pub fn matches(&self, topic: &TopicName) -> Vec<Subscription<K>> {
        let levels: Vec<&str> = topic.as_str().split('/').collect();
        let skip_wildcard_root = topic.as_str().starts_with('$');
        let mut raw: Vec<Subscription<K>> = Vec::new();
        collect(&self.root, &levels, 0, skip_wildcard_root, &mut raw);

        // Deduplicate by key keeping the strongest QoS; deterministic order.
        let mut best: BTreeMap<K, QoS> = BTreeMap::new();
        for sub in raw {
            best.entry(sub.key)
                .and_modify(|q| {
                    if (sub.qos as u8) > (*q as u8) {
                        *q = sub.qos;
                    }
                })
                .or_insert(sub.qos);
        }
        best.into_iter()
            .map(|(key, qos)| Subscription { key, qos })
            .collect()
    }

    /// Iterates over every stored (filter, key, qos) triple, mainly for
    /// introspection and tests. Filters are reconstructed from the trie.
    pub fn iter(&self) -> Vec<(String, K, QoS)> {
        fn walk<K: Clone>(node: &Node<K>, prefix: &str, out: &mut Vec<(String, K, QoS)>) {
            for sub in &node.subscribers {
                out.push((prefix.to_owned(), sub.key.clone(), sub.qos));
            }
            for (level, child) in &node.children {
                let next = if prefix.is_empty() {
                    level.clone()
                } else {
                    format!("{prefix}/{level}")
                };
                walk(child, &next, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.root, "", &mut out);
        out
    }
}

fn collect<K: Ord + Clone>(
    node: &Node<K>,
    levels: &[&str],
    depth: usize,
    skip_wildcard_root: bool,
    out: &mut Vec<Subscription<K>>,
) {
    if depth == levels.len() {
        out.extend(node.subscribers.iter().cloned());
        // "a/#" also matches "a": a trailing "#" child matches the parent.
        if let Some(hash) = node.children.get("#") {
            if !(skip_wildcard_root && depth == 0) {
                out.extend(hash.subscribers.iter().cloned());
            }
        }
        return;
    }
    let level = levels[depth];
    if let Some(child) = node.children.get(level) {
        collect(child, levels, depth + 1, skip_wildcard_root, out);
    }
    let wildcards_allowed = !(skip_wildcard_root && depth == 0);
    if wildcards_allowed {
        if let Some(plus) = node.children.get("+") {
            collect(plus, levels, depth + 1, skip_wildcard_root, out);
        }
        if let Some(hash) = node.children.get("#") {
            out.extend(hash.subscribers.iter().cloned());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> TopicName {
        TopicName::new(s).expect("valid name")
    }

    fn filter(s: &str) -> TopicFilter {
        TopicFilter::new(s).expect("valid filter")
    }

    fn keys(tree: &SubscriptionTree<&'static str>, topic: &str) -> Vec<&'static str> {
        tree.matches(&name(topic)).into_iter().map(|s| s.key).collect()
    }

    #[test]
    fn exact_and_wildcard_matching() {
        let mut t = SubscriptionTree::new();
        t.subscribe("exact", &filter("a/b"), QoS::AtMostOnce);
        t.subscribe("plus", &filter("a/+"), QoS::AtMostOnce);
        t.subscribe("hash", &filter("a/#"), QoS::AtMostOnce);
        t.subscribe("other", &filter("x/y"), QoS::AtMostOnce);
        assert_eq!(keys(&t, "a/b"), vec!["exact", "hash", "plus"]);
        assert_eq!(keys(&t, "a/c"), vec!["hash", "plus"]);
        assert_eq!(keys(&t, "a/b/c"), vec!["hash"]);
        assert_eq!(keys(&t, "a"), vec!["hash"]);
        assert_eq!(keys(&t, "q"), Vec::<&str>::new());
    }

    #[test]
    fn overlapping_subscriptions_dedupe_with_max_qos() {
        let mut t = SubscriptionTree::new();
        t.subscribe("e", &filter("s/#"), QoS::AtMostOnce);
        t.subscribe("e", &filter("s/a"), QoS::AtLeastOnce);
        let hits = t.matches(&name("s/a"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].qos, QoS::AtLeastOnce);
    }

    #[test]
    fn resubscribe_updates_qos() {
        let mut t = SubscriptionTree::new();
        assert_eq!(t.subscribe("e", &filter("a"), QoS::AtMostOnce), None);
        assert_eq!(
            t.subscribe("e", &filter("a"), QoS::AtLeastOnce),
            Some(QoS::AtMostOnce)
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.matches(&name("a"))[0].qos, QoS::AtLeastOnce);
    }

    #[test]
    fn unsubscribe_removes_only_that_filter() {
        let mut t = SubscriptionTree::new();
        t.subscribe("e", &filter("a/+"), QoS::AtMostOnce);
        t.subscribe("e", &filter("a/b"), QoS::AtMostOnce);
        assert!(t.unsubscribe(&"e", &filter("a/+")));
        assert!(!t.unsubscribe(&"e", &filter("a/+")));
        assert_eq!(t.len(), 1);
        assert_eq!(keys(&t, "a/b"), vec!["e"]);
        assert_eq!(keys(&t, "a/c"), Vec::<&str>::new());
    }

    #[test]
    fn remove_key_clears_everything_for_client() {
        let mut t = SubscriptionTree::new();
        t.subscribe("e", &filter("a/#"), QoS::AtMostOnce);
        t.subscribe("e", &filter("b"), QoS::AtMostOnce);
        t.subscribe("f", &filter("b"), QoS::AtMostOnce);
        assert_eq!(t.remove_key(&"e"), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(keys(&t, "b"), vec!["f"]);
    }

    #[test]
    fn dollar_topics_not_matched_by_leading_wildcards() {
        let mut t = SubscriptionTree::new();
        t.subscribe("hash", &filter("#"), QoS::AtMostOnce);
        t.subscribe("plus", &filter("+/x"), QoS::AtMostOnce);
        t.subscribe("sys", &filter("$SYS/#"), QoS::AtMostOnce);
        assert_eq!(keys(&t, "$SYS/x"), vec!["sys"]);
        assert_eq!(keys(&t, "normal/x"), vec!["hash", "plus"]);
    }

    #[test]
    fn empty_tree_matches_nothing() {
        let t: SubscriptionTree<&str> = SubscriptionTree::new();
        assert!(t.is_empty());
        assert!(t.matches(&name("a")).is_empty());
    }

    #[test]
    fn iter_reconstructs_filters() {
        let mut t = SubscriptionTree::new();
        t.subscribe("e", &filter("a/+/c"), QoS::AtLeastOnce);
        t.subscribe("f", &filter("#"), QoS::AtMostOnce);
        let mut triples = t.iter();
        triples.sort();
        assert_eq!(
            triples,
            vec![
                ("#".to_owned(), "f", QoS::AtMostOnce),
                ("a/+/c".to_owned(), "e", QoS::AtLeastOnce),
            ]
        );
    }

    #[test]
    fn pruning_keeps_tree_small_after_unsubscribes() {
        let mut t = SubscriptionTree::new();
        for i in 0..100 {
            t.subscribe(i, &filter(&format!("deep/{i}/leaf")), QoS::AtMostOnce);
        }
        for i in 0..100 {
            assert!(t.unsubscribe(&i, &filter(&format!("deep/{i}/leaf"))));
        }
        assert!(t.is_empty());
        assert!(t.root.children.is_empty(), "trie not pruned");
    }
}
