//! Write-ahead log + snapshot durability for broker state.
//!
//! The broker itself stays sans-I/O: every mutation of durable state
//! (persistent sessions, subscriptions, retained messages, QoS 1/2
//! in-flight transitions) is described as a [`WalRecord`] and buffered in a
//! [`Wal`]. At the end of each top-level broker entry point
//! (`handle_packet`, `poll`, `publish_internal`, `connection_lost`) the
//! buffered records are committed as **one atomic batch** — appended to the
//! backend *before* the resulting actions are handed to the transport. A
//! crash before the append means the actions were never sent, so the peer
//! retransmits and no state is invented; a crash after means the batch is on
//! disk and replay reconstructs exactly the state the actions assumed.
//!
//! ## Framing
//!
//! A batch on the wire (same varint style as `ifot-core`'s `wire.rs`):
//!
//! ```text
//! varint len(body) | u32-LE crc32(body) | body
//! body = u8 version | varint lsn | varint record-count | records...
//! ```
//!
//! Each record is a `u8` kind tag followed by kind-specific fields (strings
//! and payloads are varint-length-prefixed). The CRC covers the whole body,
//! making a batch all-or-nothing: the tolerant [`recover`] reader truncates
//! the log at the first torn or corrupt batch instead of panicking.
//!
//! [`recover`] itself is read-only; [`Wal::open`] additionally *repairs* the
//! backend before the writer accepts traffic: a torn log tail is physically
//! truncated to the clean prefix ([`WalBackend::truncate_log`]) and a
//! corrupt snapshot is replaced by a fresh snapshot of the recovered state.
//! Without the repair, post-restart appends would land *behind* the torn
//! bytes and a second crash would silently lose everything acknowledged
//! since the first restart.
//!
//! ## Snapshots
//!
//! Every [`WalConfig::snapshot_every`] records the broker serialises its
//! full durable state as a single batch (led by a [`WalRecord::SnapshotHeader`]
//! carrying the log-sequence-number watermark) and asks the backend to
//! install it and truncate the log. Replay applies the snapshot first, then
//! skips any log batch whose LSN is at or below the watermark — so a crash
//! between snapshot install and log truncation never double-applies
//! non-idempotent records (e.g. offline-queue pushes).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Debug;
use std::fs;
use std::io::{self, Read as _, Seek as _, Write as _};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::packet::QoS;

/// Current on-disk format version; batches with any other version are
/// treated as corrupt and truncate the readable prefix.
pub const WAL_VERSION: u8 = 1;

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected) — implemented locally so the crate gains no deps.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE 802.3 polynomial) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Varint + field helpers (LEB128, matching wire.rs)
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

fn put_slice(out: &mut Vec<u8>, s: &[u8]) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s);
}

fn get_slice<'a>(buf: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let len = get_varint(buf, pos)? as usize;
    let end = pos.checked_add(len)?;
    if end > buf.len() {
        return None;
    }
    let s = &buf[*pos..end];
    *pos = end;
    Some(s)
}

fn get_string(buf: &[u8], pos: &mut usize) -> Option<String> {
    let s = get_slice(buf, pos)?;
    std::str::from_utf8(s).ok().map(str::to_owned)
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// Outbound QoS 1/2 delivery stage, mirrored from the broker's private
/// in-flight state machine so it can be persisted and restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WalStage {
    /// QoS 1: waiting for PUBACK.
    AwaitPuback,
    /// QoS 2: waiting for PUBREC.
    AwaitPubrec,
    /// QoS 2: PUBREL sent, waiting for PUBCOMP.
    AwaitPubcomp,
}

impl WalStage {
    fn bits(self) -> u8 {
        match self {
            WalStage::AwaitPuback => 0,
            WalStage::AwaitPubrec => 1,
            WalStage::AwaitPubcomp => 2,
        }
    }

    fn from_bits(b: u8) -> Option<Self> {
        match b {
            0 => Some(WalStage::AwaitPuback),
            1 => Some(WalStage::AwaitPubrec),
            2 => Some(WalStage::AwaitPubcomp),
            _ => None,
        }
    }
}

/// A message payload as persisted in the log: enough to reconstruct the
/// broker-side `Publish` (packet ids are reassigned from record context).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DurablePublish {
    /// Topic the message was published to.
    pub topic: String,
    /// Delivery QoS (for retained messages, the QoS it was published with).
    pub qos: QoS,
    /// Whether the retain flag should be set on redelivery.
    pub retain: bool,
    /// Application payload (shared, cheap to clone).
    pub payload: Bytes,
}

/// One durable mutation of broker state.
///
/// Records are grouped into atomic batches; replay applies them in order via
/// [`DurableState::apply`]. All records are scoped to persistent sessions or
/// to the retained-message store — transient (clean-session) state is never
/// logged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// First record of a snapshot batch: replay must skip log batches with
    /// `lsn <= last_lsn` because the snapshot already covers them.
    SnapshotHeader {
        /// Highest LSN whose effects are folded into this snapshot.
        last_lsn: u64,
    },
    /// A persistent session was created or re-attached (CONNECT with
    /// `clean_session = false`).
    SessionStarted {
        /// Client identifier.
        client: String,
        /// Packet-id allocator position at the time of the record.
        next_pid: u16,
    },
    /// A previously persistent session was discarded (CONNECT with
    /// `clean_session = true`).
    SessionCleared {
        /// Client identifier.
        client: String,
    },
    /// A subscription was granted (or its QoS replaced).
    Subscribed {
        /// Client identifier.
        client: String,
        /// Topic filter string.
        filter: String,
        /// Granted QoS.
        qos: QoS,
    },
    /// A subscription was removed.
    Unsubscribed {
        /// Client identifier.
        client: String,
        /// Topic filter string.
        filter: String,
    },
    /// A retained message was stored (replacing any previous one).
    RetainSet {
        /// The retained message; `message.topic` keys the store.
        message: DurablePublish,
    },
    /// The retained message for a topic was cleared (empty-payload publish).
    RetainCleared {
        /// Topic whose retained slot was emptied.
        topic: String,
    },
    /// A message was appended to a session's offline/overflow queue.
    Queued {
        /// Client identifier.
        client: String,
        /// The queued message.
        message: DurablePublish,
    },
    /// The head of a session's queue was popped for delivery.
    QueuePopped {
        /// Client identifier.
        client: String,
    },
    /// An outbound QoS 1/2 message entered the in-flight window.
    InflightInsert {
        /// Client identifier.
        client: String,
        /// Assigned packet id.
        pid: u16,
        /// Initial delivery stage.
        stage: WalStage,
        /// The in-flight message.
        message: DurablePublish,
    },
    /// An in-flight message advanced a stage (QoS 2 PUBREC → PUBCOMP wait).
    InflightStage {
        /// Client identifier.
        client: String,
        /// Packet id.
        pid: u16,
        /// New stage.
        stage: WalStage,
    },
    /// An in-flight message completed (PUBACK / PUBCOMP received).
    InflightRemove {
        /// Client identifier.
        client: String,
        /// Packet id.
        pid: u16,
    },
    /// An inbound QoS 2 publish was accepted (exactly-once dedup set).
    InQos2Insert {
        /// Client identifier.
        client: String,
        /// Inbound packet id.
        pid: u16,
    },
    /// An inbound QoS 2 exchange completed (PUBREL received).
    InQos2Remove {
        /// Client identifier.
        client: String,
        /// Inbound packet id.
        pid: u16,
    },
}

const K_SNAPSHOT_HEADER: u8 = 0x01;
const K_SESSION_STARTED: u8 = 0x02;
const K_SESSION_CLEARED: u8 = 0x03;
const K_SUBSCRIBED: u8 = 0x04;
const K_UNSUBSCRIBED: u8 = 0x05;
const K_RETAIN_SET: u8 = 0x06;
const K_RETAIN_CLEARED: u8 = 0x07;
const K_QUEUED: u8 = 0x08;
const K_QUEUE_POPPED: u8 = 0x09;
const K_INFLIGHT_INSERT: u8 = 0x0a;
const K_INFLIGHT_STAGE: u8 = 0x0b;
const K_INFLIGHT_REMOVE: u8 = 0x0c;
const K_INQOS2_INSERT: u8 = 0x0d;
const K_INQOS2_REMOVE: u8 = 0x0e;

fn put_message(out: &mut Vec<u8>, m: &DurablePublish) {
    put_slice(out, m.topic.as_bytes());
    out.push(m.qos.bits());
    out.push(u8::from(m.retain));
    put_slice(out, &m.payload);
}

fn get_message(buf: &[u8], pos: &mut usize) -> Option<DurablePublish> {
    let topic = get_string(buf, pos)?;
    let qos = QoS::from_bits(*buf.get(*pos)?).ok()?;
    *pos += 1;
    let retain = match *buf.get(*pos)? {
        0 => false,
        1 => true,
        _ => return None,
    };
    *pos += 1;
    let payload = Bytes::copy_from_slice(get_slice(buf, pos)?);
    Some(DurablePublish {
        topic,
        qos,
        retain,
        payload,
    })
}

/// Encode one record (kind tag + fields) onto `out`.
pub fn encode_record(out: &mut Vec<u8>, rec: &WalRecord) {
    match rec {
        WalRecord::SnapshotHeader { last_lsn } => {
            out.push(K_SNAPSHOT_HEADER);
            put_varint(out, *last_lsn);
        }
        WalRecord::SessionStarted { client, next_pid } => {
            out.push(K_SESSION_STARTED);
            put_slice(out, client.as_bytes());
            put_varint(out, u64::from(*next_pid));
        }
        WalRecord::SessionCleared { client } => {
            out.push(K_SESSION_CLEARED);
            put_slice(out, client.as_bytes());
        }
        WalRecord::Subscribed {
            client,
            filter,
            qos,
        } => {
            out.push(K_SUBSCRIBED);
            put_slice(out, client.as_bytes());
            put_slice(out, filter.as_bytes());
            out.push(qos.bits());
        }
        WalRecord::Unsubscribed { client, filter } => {
            out.push(K_UNSUBSCRIBED);
            put_slice(out, client.as_bytes());
            put_slice(out, filter.as_bytes());
        }
        WalRecord::RetainSet { message } => {
            out.push(K_RETAIN_SET);
            put_message(out, message);
        }
        WalRecord::RetainCleared { topic } => {
            out.push(K_RETAIN_CLEARED);
            put_slice(out, topic.as_bytes());
        }
        WalRecord::Queued { client, message } => {
            out.push(K_QUEUED);
            put_slice(out, client.as_bytes());
            put_message(out, message);
        }
        WalRecord::QueuePopped { client } => {
            out.push(K_QUEUE_POPPED);
            put_slice(out, client.as_bytes());
        }
        WalRecord::InflightInsert {
            client,
            pid,
            stage,
            message,
        } => {
            out.push(K_INFLIGHT_INSERT);
            put_slice(out, client.as_bytes());
            put_varint(out, u64::from(*pid));
            out.push(stage.bits());
            put_message(out, message);
        }
        WalRecord::InflightStage { client, pid, stage } => {
            out.push(K_INFLIGHT_STAGE);
            put_slice(out, client.as_bytes());
            put_varint(out, u64::from(*pid));
            out.push(stage.bits());
        }
        WalRecord::InflightRemove { client, pid } => {
            out.push(K_INFLIGHT_REMOVE);
            put_slice(out, client.as_bytes());
            put_varint(out, u64::from(*pid));
        }
        WalRecord::InQos2Insert { client, pid } => {
            out.push(K_INQOS2_INSERT);
            put_slice(out, client.as_bytes());
            put_varint(out, u64::from(*pid));
        }
        WalRecord::InQos2Remove { client, pid } => {
            out.push(K_INQOS2_REMOVE);
            put_slice(out, client.as_bytes());
            put_varint(out, u64::from(*pid));
        }
    }
}

fn get_pid(buf: &[u8], pos: &mut usize) -> Option<u16> {
    let v = get_varint(buf, pos)?;
    u16::try_from(v).ok()
}

/// Decode one record starting at `pos`; `None` on any malformed field (the
/// enclosing batch is then treated as corrupt).
pub fn decode_record(buf: &[u8], pos: &mut usize) -> Option<WalRecord> {
    let kind = *buf.get(*pos)?;
    *pos += 1;
    match kind {
        K_SNAPSHOT_HEADER => Some(WalRecord::SnapshotHeader {
            last_lsn: get_varint(buf, pos)?,
        }),
        K_SESSION_STARTED => Some(WalRecord::SessionStarted {
            client: get_string(buf, pos)?,
            next_pid: get_pid(buf, pos)?,
        }),
        K_SESSION_CLEARED => Some(WalRecord::SessionCleared {
            client: get_string(buf, pos)?,
        }),
        K_SUBSCRIBED => Some(WalRecord::Subscribed {
            client: get_string(buf, pos)?,
            filter: get_string(buf, pos)?,
            qos: {
                let q = QoS::from_bits(*buf.get(*pos)?).ok()?;
                *pos += 1;
                q
            },
        }),
        K_UNSUBSCRIBED => Some(WalRecord::Unsubscribed {
            client: get_string(buf, pos)?,
            filter: get_string(buf, pos)?,
        }),
        K_RETAIN_SET => Some(WalRecord::RetainSet {
            message: get_message(buf, pos)?,
        }),
        K_RETAIN_CLEARED => Some(WalRecord::RetainCleared {
            topic: get_string(buf, pos)?,
        }),
        K_QUEUED => Some(WalRecord::Queued {
            client: get_string(buf, pos)?,
            message: get_message(buf, pos)?,
        }),
        K_QUEUE_POPPED => Some(WalRecord::QueuePopped {
            client: get_string(buf, pos)?,
        }),
        K_INFLIGHT_INSERT => Some(WalRecord::InflightInsert {
            client: get_string(buf, pos)?,
            pid: get_pid(buf, pos)?,
            stage: {
                let s = WalStage::from_bits(*buf.get(*pos)?)?;
                *pos += 1;
                s
            },
            message: get_message(buf, pos)?,
        }),
        K_INFLIGHT_STAGE => Some(WalRecord::InflightStage {
            client: get_string(buf, pos)?,
            pid: get_pid(buf, pos)?,
            stage: {
                let s = WalStage::from_bits(*buf.get(*pos)?)?;
                *pos += 1;
                s
            },
        }),
        K_INFLIGHT_REMOVE => Some(WalRecord::InflightRemove {
            client: get_string(buf, pos)?,
            pid: get_pid(buf, pos)?,
        }),
        K_INQOS2_INSERT => Some(WalRecord::InQos2Insert {
            client: get_string(buf, pos)?,
            pid: get_pid(buf, pos)?,
        }),
        K_INQOS2_REMOVE => Some(WalRecord::InQos2Remove {
            client: get_string(buf, pos)?,
            pid: get_pid(buf, pos)?,
        }),
        _ => None,
    }
}

/// Frame a batch of already-encoded record bytes:
/// `varint len | crc32 LE | version | varint lsn | varint nrec | records`.
fn frame_batch(lsn: u64, nrec: u64, records: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(records.len() + 12);
    body.push(WAL_VERSION);
    put_varint(&mut body, lsn);
    put_varint(&mut body, nrec);
    body.extend_from_slice(records);
    let mut out = Vec::with_capacity(body.len() + 10);
    put_varint(&mut out, body.len() as u64);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Parse a framed stream into `(lsn, records)` batches.
///
/// Returns the clean prefix, `true` if the stream was truncated at a torn
/// or corrupt batch (bad length, short body, CRC mismatch, unknown version,
/// or undecodable record), and the byte length of the clean prefix — the
/// offset a physical repair should truncate the log to. Never panics.
pub fn parse_stream(buf: &[u8]) -> (Vec<(u64, Vec<WalRecord>)>, bool, u64) {
    let mut batches = Vec::new();
    let mut pos = 0usize;
    let mut clean = 0usize;
    while pos < buf.len() {
        let start = pos;
        let Some(len) = get_varint(buf, &mut pos) else {
            return (batches, true, clean as u64);
        };
        let Ok(len) = usize::try_from(len) else {
            return (batches, true, clean as u64);
        };
        let Some(body_start) = pos.checked_add(4) else {
            return (batches, true, clean as u64);
        };
        let Some(end) = body_start.checked_add(len) else {
            return (batches, true, clean as u64);
        };
        if end > buf.len() {
            return (batches, true, clean as u64);
        }
        let crc = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]);
        let body = &buf[body_start..end];
        if crc32(body) != crc {
            return (batches, true, clean as u64);
        }
        match parse_body(body) {
            Some(batch) => batches.push(batch),
            None => return (batches, true, clean as u64),
        }
        pos = end;
        clean = end;
        debug_assert!(pos > start);
    }
    (batches, false, clean as u64)
}

fn parse_body(body: &[u8]) -> Option<(u64, Vec<WalRecord>)> {
    let mut pos = 0usize;
    let version = *body.get(pos)?;
    pos += 1;
    if version != WAL_VERSION {
        return None;
    }
    let lsn = get_varint(body, &mut pos)?;
    let nrec = get_varint(body, &mut pos)?;
    let mut records = Vec::with_capacity(nrec.min(1024) as usize);
    for _ in 0..nrec {
        records.push(decode_record(body, &mut pos)?);
    }
    if pos != body.len() {
        return None;
    }
    Some((lsn, records))
}

// ---------------------------------------------------------------------------
// Durable state model
// ---------------------------------------------------------------------------

/// Persistent-session state as reconstructed from the log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurableSession {
    /// Granted subscriptions (filter string, QoS).
    pub subscriptions: Vec<(String, QoS)>,
    /// Packet-id allocator position (monotone max of observed ids).
    pub next_pid: u16,
    /// Outbound in-flight window keyed by packet id.
    pub inflight: BTreeMap<u16, (DurablePublish, WalStage)>,
    /// Offline/overflow publish queue, in delivery order.
    pub queue: VecDeque<DurablePublish>,
    /// Inbound QoS 2 packet ids awaiting PUBREL.
    pub incoming_qos2: BTreeSet<u16>,
}

/// Full durable broker state: what survives a restart.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurableState {
    /// Persistent sessions keyed by client id.
    pub sessions: BTreeMap<String, DurableSession>,
    /// Retained messages keyed by topic.
    pub retained: BTreeMap<String, DurablePublish>,
}

impl DurableState {
    /// Apply one record. All operations are defensive: records referencing
    /// unknown sessions create them (a snapshot may have elided an empty
    /// session), removals of absent entries are no-ops, and `next_pid` only
    /// moves forward — so applying a snapshot built *from* this state is a
    /// fixpoint.
    pub fn apply(&mut self, rec: &WalRecord) {
        match rec {
            WalRecord::SnapshotHeader { .. } => {}
            WalRecord::SessionStarted { client, next_pid } => {
                let s = self.sessions.entry(client.clone()).or_default();
                s.next_pid = s.next_pid.max(*next_pid);
            }
            WalRecord::SessionCleared { client } => {
                self.sessions.remove(client);
            }
            WalRecord::Subscribed {
                client,
                filter,
                qos,
            } => {
                let s = self.sessions.entry(client.clone()).or_default();
                s.subscriptions.retain(|(f, _)| f != filter);
                s.subscriptions.push((filter.clone(), *qos));
            }
            WalRecord::Unsubscribed { client, filter } => {
                if let Some(s) = self.sessions.get_mut(client) {
                    s.subscriptions.retain(|(f, _)| f != filter);
                }
            }
            WalRecord::RetainSet { message } => {
                self.retained.insert(message.topic.clone(), message.clone());
            }
            WalRecord::RetainCleared { topic } => {
                self.retained.remove(topic);
            }
            WalRecord::Queued { client, message } => {
                let s = self.sessions.entry(client.clone()).or_default();
                s.queue.push_back(message.clone());
            }
            WalRecord::QueuePopped { client } => {
                if let Some(s) = self.sessions.get_mut(client) {
                    s.queue.pop_front();
                }
            }
            WalRecord::InflightInsert {
                client,
                pid,
                stage,
                message,
            } => {
                let s = self.sessions.entry(client.clone()).or_default();
                s.next_pid = s.next_pid.max(*pid);
                s.inflight.insert(*pid, (message.clone(), *stage));
            }
            WalRecord::InflightStage { client, pid, stage } => {
                if let Some(s) = self.sessions.get_mut(client) {
                    if let Some(entry) = s.inflight.get_mut(pid) {
                        entry.1 = *stage;
                    }
                }
            }
            WalRecord::InflightRemove { client, pid } => {
                if let Some(s) = self.sessions.get_mut(client) {
                    s.inflight.remove(pid);
                }
            }
            WalRecord::InQos2Insert { client, pid } => {
                let s = self.sessions.entry(client.clone()).or_default();
                s.incoming_qos2.insert(*pid);
            }
            WalRecord::InQos2Remove { client, pid } => {
                if let Some(s) = self.sessions.get_mut(client) {
                    s.incoming_qos2.remove(pid);
                }
            }
        }
    }

    /// Serialise this state as snapshot records: applying them to an empty
    /// state reproduces it exactly (the state-level analogue of
    /// `Broker::durable_records`). Used by [`Wal::open`] to rebuild a
    /// corrupt snapshot from whatever recovery salvaged.
    pub fn to_records(&self) -> Vec<WalRecord> {
        let mut out = Vec::new();
        for (client, s) in &self.sessions {
            out.push(WalRecord::SessionStarted {
                client: client.clone(),
                next_pid: s.next_pid,
            });
            for (filter, qos) in &s.subscriptions {
                out.push(WalRecord::Subscribed {
                    client: client.clone(),
                    filter: filter.clone(),
                    qos: *qos,
                });
            }
            for pid in &s.incoming_qos2 {
                out.push(WalRecord::InQos2Insert {
                    client: client.clone(),
                    pid: *pid,
                });
            }
            for (pid, (message, stage)) in &s.inflight {
                out.push(WalRecord::InflightInsert {
                    client: client.clone(),
                    pid: *pid,
                    stage: *stage,
                    message: message.clone(),
                });
            }
            for message in &s.queue {
                out.push(WalRecord::Queued {
                    client: client.clone(),
                    message: message.clone(),
                });
            }
        }
        for message in self.retained.values() {
            out.push(WalRecord::RetainSet {
                message: message.clone(),
            });
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------------

/// Storage backend for a [`Wal`]: an append-only log plus an atomically
/// replaceable snapshot.
///
/// `install_snapshot` must replace the snapshot and truncate the log as close
/// to atomically as the medium allows; [`recover`] tolerates a crash between
/// the two because snapshot batches carry their LSN watermark.
pub trait WalBackend: Send + Debug {
    /// Append one framed batch to the log. A partial write followed by an
    /// error models a torn tail; the committed prefix must remain readable.
    fn append(&mut self, frame: &[u8]) -> io::Result<()>;
    /// Read the entire log stream.
    fn read_log(&mut self) -> io::Result<Vec<u8>>;
    /// Read the current snapshot, if any.
    fn read_snapshot(&mut self) -> io::Result<Option<Vec<u8>>>;
    /// Replace the snapshot with `snapshot` and truncate the log.
    fn install_snapshot(&mut self, snapshot: &[u8]) -> io::Result<()>;
    /// Truncate the log to its first `len` bytes, discarding a torn or
    /// corrupt tail so subsequent appends extend the clean prefix.
    fn truncate_log(&mut self, len: u64) -> io::Result<()>;
    /// Flush appended batches to durable storage (fsync for file-backed
    /// logs). Memory backends have nothing to flush.
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Crash-injection point for [`MemBackend::crash_next_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotCrash {
    /// Fail before anything changes: old snapshot and full log survive.
    BeforeInstall,
    /// Install the new snapshot but crash before truncating the log —
    /// replay must skip the now-stale log batches via the LSN watermark.
    BetweenInstallAndTruncate,
    /// Write only the first `n` bytes of the new snapshot (torn snapshot
    /// replace on a backend without atomic rename), keeping the full log.
    TornWrite(u64),
}

#[derive(Debug, Default)]
struct MemState {
    log: Vec<u8>,
    snapshot: Option<Vec<u8>>,
    torn_at: Option<u64>,
    snapshot_crash: Option<SnapshotCrash>,
}

/// Deterministic in-memory backend for tests.
///
/// Cloning shares the underlying storage, so a test can keep a handle,
/// "crash" the broker by dropping it, and hand a fresh clone to
/// [`crate::broker::Broker::open_durable`] to model a restart. Fault
/// injection: [`MemBackend::tear_log_at`] cuts future appends at an absolute
/// byte offset (partial final record), and
/// [`MemBackend::crash_next_snapshot`] aborts the next snapshot install at a
/// chosen point.
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    state: Arc<Mutex<MemState>>,
}

impl MemBackend {
    /// New empty backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current log length in bytes.
    pub fn log_len(&self) -> u64 {
        self.state.lock().log.len() as u64
    }

    /// Copy of the raw log bytes (for corruption tests).
    pub fn raw_log(&self) -> Vec<u8> {
        self.state.lock().log.clone()
    }

    /// Replace the raw log bytes (for corruption tests).
    pub fn set_raw_log(&self, bytes: Vec<u8>) {
        self.state.lock().log = bytes;
    }

    /// Copy of the raw snapshot bytes, if a snapshot is installed.
    pub fn raw_snapshot(&self) -> Option<Vec<u8>> {
        self.state.lock().snapshot.clone()
    }

    /// Replace the raw snapshot bytes (for corruption tests).
    pub fn set_raw_snapshot(&self, bytes: Option<Vec<u8>>) {
        self.state.lock().snapshot = bytes;
    }

    /// All future appends are cut at absolute log offset `offset`: bytes up
    /// to it are written, the rest discarded, and the append reports an
    /// error (as does every later append until [`MemBackend::clear_tear`]).
    pub fn tear_log_at(&self, offset: u64) {
        self.state.lock().torn_at = Some(offset);
    }

    /// Remove a tear installed by [`MemBackend::tear_log_at`].
    pub fn clear_tear(&self) {
        self.state.lock().torn_at = None;
    }

    /// Make the next `install_snapshot` fail at the given point (one-shot).
    pub fn crash_next_snapshot(&self, mode: SnapshotCrash) {
        self.state.lock().snapshot_crash = Some(mode);
    }
}

impl WalBackend for MemBackend {
    fn append(&mut self, frame: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock();
        if let Some(t) = s.torn_at {
            let end = s.log.len() as u64 + frame.len() as u64;
            if end > t {
                let take = t.saturating_sub(s.log.len() as u64) as usize;
                let take = take.min(frame.len());
                s.log.extend_from_slice(&frame[..take]);
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "torn write injected",
                ));
            }
        }
        s.log.extend_from_slice(frame);
        Ok(())
    }

    fn read_log(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.state.lock().log.clone())
    }

    fn read_snapshot(&mut self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.state.lock().snapshot.clone())
    }

    fn truncate_log(&mut self, len: u64) -> io::Result<()> {
        let mut s = self.state.lock();
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        if len < s.log.len() {
            s.log.truncate(len);
        }
        Ok(())
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock();
        match s.snapshot_crash.take() {
            Some(SnapshotCrash::BeforeInstall) => Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "crash injected before snapshot install",
            )),
            Some(SnapshotCrash::BetweenInstallAndTruncate) => {
                s.snapshot = Some(snapshot.to_vec());
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "crash injected before log truncation",
                ))
            }
            Some(SnapshotCrash::TornWrite(n)) => {
                let n = (n as usize).min(snapshot.len());
                s.snapshot = Some(snapshot[..n].to_vec());
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "torn snapshot write injected",
                ))
            }
            None => {
                s.snapshot = Some(snapshot.to_vec());
                s.log.clear();
                Ok(())
            }
        }
    }
}

/// File-system backend: `<prefix>.wal` append-only log and `<prefix>.snap`
/// snapshot under a directory.
///
/// Snapshot install writes `<prefix>.snap.tmp`, fsyncs, renames over the
/// snapshot, fsyncs the directory (so the rename itself survives power
/// loss), then truncates the log — a crash at any point leaves either the
/// old snapshot + full log or the new snapshot (+ possibly stale log, which
/// replay skips via the LSN watermark). A partial append (e.g. `ENOSPC`) is
/// rolled back with `set_len` so torn bytes never sit mid-log. Appends are
/// buffered by the OS by default, protecting against process crashes only;
/// [`WalConfig::fsync`] opts into an fsync per committed batch for
/// power-loss durability at a throughput cost.
#[derive(Debug)]
pub struct FileBackend {
    log_path: PathBuf,
    snap_path: PathBuf,
    log: fs::File,
    /// Byte length of the log as written through this handle; used to roll
    /// back partial appends without a metadata syscall per batch.
    len: u64,
}

impl FileBackend {
    /// Open (creating as needed) the backing files for `prefix` under `dir`.
    pub fn open(dir: impl Into<PathBuf>, prefix: &str) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let log_path = dir.join(format!("{prefix}.wal"));
        let snap_path = dir.join(format!("{prefix}.snap"));
        let log = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&log_path)?;
        let len = log.metadata()?.len();
        Ok(Self {
            log_path,
            snap_path,
            log,
            len,
        })
    }

    /// fsync the directory holding the snapshot so a just-renamed snapshot
    /// entry is durable, not only its contents. Best-effort: some
    /// filesystems refuse directory fsync, and the rename is still
    /// process-crash-safe without it.
    fn sync_dir(&self) {
        if let Some(parent) = self.snap_path.parent() {
            if let Ok(d) = fs::File::open(parent) {
                let _ = d.sync_all();
            }
        }
    }
}

impl WalBackend for FileBackend {
    fn append(&mut self, frame: &[u8]) -> io::Result<()> {
        match self.log.write_all(frame) {
            Ok(()) => {
                self.len += frame.len() as u64;
                Ok(())
            }
            Err(e) => {
                // Undo any partially-written bytes so the next successful
                // append extends the clean prefix, not a torn batch. If the
                // rollback itself fails the forced resync snapshot (see
                // `Wal::commit`) truncates the log anyway.
                let _ = self.log.set_len(self.len);
                Err(e)
            }
        }
    }

    fn read_log(&mut self) -> io::Result<Vec<u8>> {
        self.log.flush()?;
        let mut buf = Vec::new();
        let mut f = fs::File::open(&self.log_path)?;
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn read_snapshot(&mut self) -> io::Result<Option<Vec<u8>>> {
        match fs::read(&self.snap_path) {
            Ok(buf) => Ok(Some(buf)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) -> io::Result<()> {
        let tmp = self.snap_path.with_extension("snap.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(snapshot)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.snap_path)?;
        self.sync_dir();
        self.log.flush()?;
        self.log.set_len(0)?;
        self.log.seek(io::SeekFrom::Start(0))?;
        self.len = 0;
        Ok(())
    }

    fn truncate_log(&mut self, len: u64) -> io::Result<()> {
        if len < self.len {
            self.log.flush()?;
            self.log.set_len(len)?;
            self.log.sync_data()?;
            self.len = len;
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.log.sync_data()
    }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// What [`recover`] reconstructed, with enough counters for tests and
/// operators to see exactly what happened.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The rebuilt durable state.
    pub state: DurableState,
    /// Highest LSN observed (snapshot watermark or log batch); the writer
    /// resumes above it.
    pub last_lsn: u64,
    /// Records applied from the snapshot (excluding the header).
    pub snapshot_records: u64,
    /// Log batches applied.
    pub log_batches: u64,
    /// Log records applied.
    pub log_records: u64,
    /// Log batches skipped because the snapshot already covered their LSN.
    pub stale_batches_skipped: u64,
    /// True if the log ended in a torn/corrupt batch that was dropped.
    pub log_truncated: bool,
    /// True if the snapshot was corrupt (fully or partially unreadable).
    pub snapshot_corrupt: bool,
    /// Byte length of the clean log prefix — where a physical repair
    /// truncates the log when [`RecoveryReport::log_truncated`] is set.
    pub clean_log_bytes: u64,
}

/// Rebuild durable state from a backend: apply the snapshot (if readable),
/// then every log batch above the snapshot's LSN watermark, truncating at
/// the first torn or corrupt batch. Never panics on malformed input; `Err`
/// is only ever an I/O error from the backend itself.
///
/// This is a read-only pass: the backend keeps its torn bytes. Use
/// [`Wal::open`] to recover *and* physically repair before writing.
pub fn recover(backend: &mut dyn WalBackend) -> io::Result<RecoveryReport> {
    let mut report = RecoveryReport::default();
    let mut floor = 0u64;
    if let Some(snap) = backend.read_snapshot()? {
        let (batches, torn, _) = parse_stream(&snap);
        if torn {
            report.snapshot_corrupt = true;
        }
        for (lsn, records) in &batches {
            for rec in records {
                if let WalRecord::SnapshotHeader { last_lsn } = rec {
                    floor = floor.max(*last_lsn);
                } else {
                    report.state.apply(rec);
                    report.snapshot_records += 1;
                }
            }
            floor = floor.max(*lsn);
        }
    }
    let log = backend.read_log()?;
    let (batches, torn, clean) = parse_stream(&log);
    report.log_truncated = torn;
    report.clean_log_bytes = clean;
    let mut last = floor;
    for (lsn, records) in &batches {
        if *lsn <= floor {
            report.stale_batches_skipped += 1;
            continue;
        }
        for rec in records {
            report.state.apply(rec);
            report.log_records += 1;
        }
        report.log_batches += 1;
        last = last.max(*lsn);
    }
    report.last_lsn = last;
    Ok(report)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Tuning for a [`Wal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Install a snapshot (and truncate the log) after this many records
    /// have been appended since the last one. `0` disables automatic
    /// snapshots (a failed append still forces one — see
    /// [`Wal::snapshot_due`]).
    pub snapshot_every: u64,
    /// fsync the log after every committed batch. Off by default: the OS
    /// page cache already survives process crashes, and per-batch fsync
    /// costs throughput; turn it on when acknowledged state must survive
    /// power loss too.
    pub fsync: bool,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            snapshot_every: 4096,
            fsync: false,
        }
    }
}

/// Counters describing WAL activity since the writer was opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records committed to the log.
    pub records_appended: u64,
    /// Atomic batches committed to the log.
    pub batches_committed: u64,
    /// Framed bytes appended to the log.
    pub bytes_appended: u64,
    /// Batch appends the backend rejected. The batch is lost from the log,
    /// so the writer forces a resync snapshot at the next
    /// [`Wal::snapshot_due`] check — for the broker that is the same
    /// barrier, before any action reaches the transport.
    pub append_errors: u64,
    /// fsync failures after a committed batch ([`WalConfig::fsync`] only);
    /// each also forces a resync snapshot.
    pub sync_errors: u64,
    /// Snapshots successfully installed.
    pub snapshots_installed: u64,
    /// Snapshot installs the backend rejected (retried at the next
    /// [`Wal::snapshot_due`] check).
    pub snapshot_errors: u64,
}

/// The write half: buffers records and commits them as atomic batches.
#[derive(Debug)]
pub struct Wal {
    backend: Box<dyn WalBackend>,
    config: WalConfig,
    next_lsn: u64,
    pending: Vec<u8>,
    pending_count: u64,
    records_since_snapshot: u64,
    /// Set when the log and in-memory state may have diverged (failed
    /// append/fsync, failed snapshot, unrepaired open): the next snapshot
    /// install resyncs them and clears it.
    force_snapshot: bool,
    stats: WalStats,
}

impl Wal {
    /// Writer over a fresh/empty backend (first LSN is 1).
    pub fn new(backend: Box<dyn WalBackend>, config: WalConfig) -> Self {
        Self::resume(backend, config, 0)
    }

    /// Writer resuming above `last_lsn` (from a [`RecoveryReport`]).
    pub fn resume(backend: Box<dyn WalBackend>, config: WalConfig, last_lsn: u64) -> Self {
        Self {
            backend,
            config,
            next_lsn: last_lsn + 1,
            pending: Vec::new(),
            pending_count: 0,
            records_since_snapshot: 0,
            force_snapshot: false,
            stats: WalStats::default(),
        }
    }

    /// Recover the backend's state, **physically repair** any damage found,
    /// and return a writer positioned after the recovered history.
    ///
    /// Repair matters for the double-crash case: without it, appends after
    /// a torn-tail restart would land *behind* the corrupt bytes (replay
    /// stops at the first bad batch) and a second crash would silently lose
    /// everything acknowledged since the first restart. A corrupt snapshot
    /// is replaced by a fresh snapshot of the recovered state (which also
    /// truncates the log); a torn log tail is truncated to the clean
    /// prefix. If the snapshot rebuild fails, the writer stays marked for a
    /// forced snapshot so the embedder retries at its next
    /// [`Wal::snapshot_due`] check.
    pub fn open(
        mut backend: Box<dyn WalBackend>,
        config: WalConfig,
    ) -> io::Result<(Self, RecoveryReport)> {
        let report = recover(backend.as_mut())?;
        let mut wal = Self::resume(backend, config, report.last_lsn);
        if report.snapshot_corrupt {
            wal.install_snapshot(&report.state.to_records());
        }
        if report.log_truncated && wal.stats.snapshots_installed == 0 {
            wal.backend.truncate_log(report.clean_log_bytes)?;
        }
        Ok((wal, report))
    }

    /// Buffer one record into the current batch (nothing is written yet).
    pub fn record(&mut self, rec: &WalRecord) {
        encode_record(&mut self.pending, rec);
        self.pending_count += 1;
    }

    /// Number of records buffered but not yet committed.
    pub fn pending_records(&self) -> u64 {
        self.pending_count
    }

    /// Commit the buffered records as one atomic CRC-framed batch. A no-op
    /// when nothing is buffered. On backend error the batch is dropped from
    /// the log (counted in [`WalStats::append_errors`]) and the writer
    /// flags a forced snapshot so the embedder's next [`Wal::snapshot_due`]
    /// check resyncs the log with its in-memory state — repairing any torn
    /// bytes the failed append left behind.
    pub fn commit(&mut self) {
        if self.pending_count == 0 {
            return;
        }
        let frame = frame_batch(self.next_lsn, self.pending_count, &self.pending);
        self.next_lsn += 1;
        match self.backend.append(&frame) {
            Ok(()) => {
                self.stats.records_appended += self.pending_count;
                self.stats.batches_committed += 1;
                self.stats.bytes_appended += frame.len() as u64;
                self.records_since_snapshot += self.pending_count;
                if self.config.fsync && self.backend.sync().is_err() {
                    self.stats.sync_errors += 1;
                    self.force_snapshot = true;
                }
            }
            Err(_) => {
                self.stats.append_errors += 1;
                self.force_snapshot = true;
            }
        }
        self.pending.clear();
        self.pending_count = 0;
    }

    /// True when enough records have accumulated for an automatic snapshot,
    /// or when a failed append/fsync/install forces one to resync the log
    /// with the embedder's state (this overrides `snapshot_every == 0`).
    pub fn snapshot_due(&self) -> bool {
        self.force_snapshot
            || (self.config.snapshot_every > 0
                && self.records_since_snapshot >= self.config.snapshot_every)
    }

    /// Serialise `records` (a full durable-state dump) as a snapshot batch
    /// and ask the backend to install it and truncate the log. Success
    /// clears any pending forced snapshot; failure sets one so the install
    /// is retried at the next [`Wal::snapshot_due`] check.
    pub fn install_snapshot(&mut self, records: &[WalRecord]) {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let mut encoded = Vec::new();
        encode_record(&mut encoded, &WalRecord::SnapshotHeader { last_lsn: lsn });
        for rec in records {
            encode_record(&mut encoded, rec);
        }
        let frame = frame_batch(lsn, records.len() as u64 + 1, &encoded);
        match self.backend.install_snapshot(&frame) {
            Ok(()) => {
                self.stats.snapshots_installed += 1;
                self.records_since_snapshot = 0;
                self.force_snapshot = false;
            }
            Err(_) => {
                self.stats.snapshot_errors += 1;
                self.force_snapshot = true;
            }
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Next log sequence number the writer will stamp.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }
}

/// Replay-time measurement for the recovery study: wall-clock time to
/// [`recover`] from a backend, with the sizes involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayMeasurement {
    /// Log bytes read.
    pub log_bytes: u64,
    /// Snapshot bytes read.
    pub snapshot_bytes: u64,
    /// Records applied (snapshot + log).
    pub records_applied: u64,
    /// Recovery wall-clock time in nanoseconds.
    pub elapsed_ns: u64,
}

/// Time a recovery pass over `backend` (used by the `wal_recovery` bench).
pub fn measure_replay(backend: &mut dyn WalBackend) -> io::Result<ReplayMeasurement> {
    let log_bytes = backend.read_log()?.len() as u64;
    let snapshot_bytes = backend.read_snapshot()?.map_or(0, |s| s.len() as u64);
    let start = Instant::now();
    let report = recover(backend)?;
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    Ok(ReplayMeasurement {
        log_bytes,
        snapshot_bytes,
        records_applied: report.snapshot_records + report.log_records,
        elapsed_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec_retain(topic: &str, payload: &[u8]) -> WalRecord {
        WalRecord::RetainSet {
            message: DurablePublish {
                topic: topic.to_owned(),
                qos: QoS::AtLeastOnce,
                retain: true,
                payload: Bytes::copy_from_slice(payload),
            },
        }
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn record_round_trip_all_kinds() {
        let msg = DurablePublish {
            topic: "a/b".into(),
            qos: QoS::ExactlyOnce,
            retain: true,
            payload: Bytes::from_static(b"xyz"),
        };
        let records = vec![
            WalRecord::SnapshotHeader { last_lsn: 7 },
            WalRecord::SessionStarted {
                client: "c1".into(),
                next_pid: 42,
            },
            WalRecord::SessionCleared {
                client: "c1".into(),
            },
            WalRecord::Subscribed {
                client: "c1".into(),
                filter: "a/+".into(),
                qos: QoS::AtLeastOnce,
            },
            WalRecord::Unsubscribed {
                client: "c1".into(),
                filter: "a/+".into(),
            },
            WalRecord::RetainSet {
                message: msg.clone(),
            },
            WalRecord::RetainCleared {
                topic: "a/b".into(),
            },
            WalRecord::Queued {
                client: "c1".into(),
                message: msg.clone(),
            },
            WalRecord::QueuePopped {
                client: "c1".into(),
            },
            WalRecord::InflightInsert {
                client: "c1".into(),
                pid: 9,
                stage: WalStage::AwaitPubrec,
                message: msg,
            },
            WalRecord::InflightStage {
                client: "c1".into(),
                pid: 9,
                stage: WalStage::AwaitPubcomp,
            },
            WalRecord::InflightRemove {
                client: "c1".into(),
                pid: 9,
            },
            WalRecord::InQos2Insert {
                client: "c1".into(),
                pid: 3,
            },
            WalRecord::InQos2Remove {
                client: "c1".into(),
                pid: 3,
            },
        ];
        for rec in &records {
            let mut buf = Vec::new();
            encode_record(&mut buf, rec);
            let mut pos = 0;
            let back = decode_record(&buf, &mut pos).expect("decode");
            assert_eq!(&back, rec);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn commit_and_recover_round_trip() {
        let backend = MemBackend::new();
        let mut wal = Wal::new(Box::new(backend.clone()), WalConfig::default());
        wal.record(&rec_retain("t/1", b"one"));
        wal.record(&WalRecord::SessionStarted {
            client: "c".into(),
            next_pid: 0,
        });
        wal.commit();
        wal.record(&rec_retain("t/2", b"two"));
        wal.commit();
        let report = recover(&mut backend.clone()).unwrap();
        assert!(!report.log_truncated);
        assert_eq!(report.log_batches, 2);
        assert_eq!(report.log_records, 3);
        assert_eq!(report.state.retained.len(), 2);
        assert!(report.state.sessions.contains_key("c"));
        assert_eq!(report.last_lsn, 2);
    }

    #[test]
    fn empty_commit_is_noop() {
        let backend = MemBackend::new();
        let mut wal = Wal::new(Box::new(backend.clone()), WalConfig::default());
        wal.commit();
        assert_eq!(backend.log_len(), 0);
        assert_eq!(wal.stats().batches_committed, 0);
    }

    #[test]
    fn torn_tail_truncates_to_clean_prefix() {
        let backend = MemBackend::new();
        let mut wal = Wal::new(Box::new(backend.clone()), WalConfig::default());
        wal.record(&rec_retain("t/1", b"one"));
        wal.commit();
        let clean = backend.log_len();
        backend.tear_log_at(clean + 3);
        wal.record(&rec_retain("t/2", b"two"));
        wal.commit();
        assert_eq!(wal.stats().append_errors, 1);
        assert_eq!(backend.log_len(), clean + 3);
        let report = recover(&mut backend.clone()).unwrap();
        assert!(report.log_truncated);
        assert_eq!(report.log_records, 1);
        assert_eq!(
            report.state.retained.keys().collect::<Vec<_>>(),
            vec!["t/1"]
        );
    }

    #[test]
    fn bit_flip_in_tail_drops_only_that_batch() {
        let backend = MemBackend::new();
        let mut wal = Wal::new(Box::new(backend.clone()), WalConfig::default());
        wal.record(&rec_retain("t/1", b"one"));
        wal.commit();
        let clean = backend.log_len() as usize;
        wal.record(&rec_retain("t/2", b"two"));
        wal.commit();
        let mut raw = backend.raw_log();
        let last = raw.len() - 1;
        raw[last] ^= 0x40;
        backend.set_raw_log(raw);
        let report = recover(&mut backend.clone()).unwrap();
        assert!(report.log_truncated);
        assert_eq!(report.log_records, 1);
        assert!(backend.raw_log().len() > clean);
    }

    #[test]
    fn snapshot_truncates_and_replay_skips_stale() {
        let backend = MemBackend::new();
        let mut wal = Wal::new(
            Box::new(backend.clone()),
            WalConfig {
                snapshot_every: 1,
                ..WalConfig::default()
            },
        );
        let mut model = DurableState::default();
        for i in 0..5 {
            let rec = rec_retain(&format!("t/{i}"), b"v");
            model.apply(&rec);
            wal.record(&rec);
            wal.commit();
            if wal.snapshot_due() {
                let dump: Vec<WalRecord> = model
                    .retained
                    .values()
                    .map(|m| WalRecord::RetainSet { message: m.clone() })
                    .collect();
                wal.install_snapshot(&dump);
            }
        }
        assert_eq!(backend.log_len(), 0);
        assert!(backend.raw_snapshot().is_some());
        let report = recover(&mut backend.clone()).unwrap();
        assert_eq!(report.state, model);
        assert_eq!(report.log_batches, 0);
    }

    #[test]
    fn crash_between_install_and_truncate_does_not_double_apply() {
        let backend = MemBackend::new();
        let mut wal = Wal::new(
            Box::new(backend.clone()),
            WalConfig {
                snapshot_every: 0,
                ..WalConfig::default()
            },
        );
        let queued = WalRecord::Queued {
            client: "c".into(),
            message: DurablePublish {
                topic: "t".into(),
                qos: QoS::AtLeastOnce,
                retain: false,
                payload: Bytes::from_static(b"m"),
            },
        };
        wal.record(&queued);
        wal.commit();
        let mut model = DurableState::default();
        model.apply(&queued);
        let dump = vec![
            WalRecord::SessionStarted {
                client: "c".into(),
                next_pid: 0,
            },
            queued.clone(),
        ];
        backend.crash_next_snapshot(SnapshotCrash::BetweenInstallAndTruncate);
        wal.install_snapshot(&dump);
        assert_eq!(wal.stats().snapshot_errors, 1);
        // Log still holds the Queued batch AND the snapshot holds it; the
        // LSN watermark must prevent a double push.
        assert!(backend.log_len() > 0);
        let report = recover(&mut backend.clone()).unwrap();
        assert_eq!(report.stale_batches_skipped, 1);
        assert_eq!(report.state.sessions["c"].queue.len(), 1);
    }

    #[test]
    fn crash_before_install_keeps_old_state() {
        let backend = MemBackend::new();
        let mut wal = Wal::new(
            Box::new(backend.clone()),
            WalConfig {
                snapshot_every: 0,
                ..WalConfig::default()
            },
        );
        wal.record(&rec_retain("t/1", b"one"));
        wal.commit();
        backend.crash_next_snapshot(SnapshotCrash::BeforeInstall);
        wal.install_snapshot(&[rec_retain("t/1", b"one")]);
        assert!(backend.raw_snapshot().is_none());
        let report = recover(&mut backend.clone()).unwrap();
        assert_eq!(report.state.retained.len(), 1);
    }

    #[test]
    fn torn_snapshot_falls_back_to_log() {
        let backend = MemBackend::new();
        let mut wal = Wal::new(
            Box::new(backend.clone()),
            WalConfig {
                snapshot_every: 0,
                ..WalConfig::default()
            },
        );
        wal.record(&rec_retain("t/1", b"one"));
        wal.commit();
        backend.crash_next_snapshot(SnapshotCrash::TornWrite(5));
        wal.install_snapshot(&[rec_retain("t/1", b"one")]);
        let report = recover(&mut backend.clone()).unwrap();
        assert!(report.snapshot_corrupt);
        assert_eq!(report.state.retained.len(), 1);
        assert_eq!(report.log_records, 1);
    }

    #[test]
    fn file_backend_round_trip() {
        let dir = std::env::temp_dir().join(format!("ifot-wal-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let backend = FileBackend::open(&dir, "unit").unwrap();
            let mut wal = Wal::new(
                Box::new(backend),
                WalConfig {
                    snapshot_every: 2,
                    ..WalConfig::default()
                },
            );
            wal.record(&rec_retain("t/1", b"one"));
            wal.record(&rec_retain("t/2", b"two"));
            wal.commit();
            assert!(wal.snapshot_due());
            wal.install_snapshot(&[rec_retain("t/1", b"one"), rec_retain("t/2", b"two")]);
            wal.record(&rec_retain("t/3", b"three"));
            wal.commit();
        }
        {
            let mut backend = FileBackend::open(&dir, "unit").unwrap();
            let report = recover(&mut backend).unwrap();
            assert!(!report.log_truncated && !report.snapshot_corrupt);
            assert_eq!(report.state.retained.len(), 3);
            assert_eq!(report.snapshot_records, 2);
            assert_eq!(report.log_records, 1);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lsn_resumes_above_recovered_state() {
        let backend = MemBackend::new();
        let mut wal = Wal::new(Box::new(backend.clone()), WalConfig::default());
        wal.record(&rec_retain("t/1", b"one"));
        wal.commit();
        let (mut wal2, report) =
            Wal::open(Box::new(backend.clone()), WalConfig::default()).unwrap();
        assert_eq!(report.last_lsn, 1);
        assert_eq!(wal2.next_lsn(), 2);
        wal2.record(&rec_retain("t/2", b"two"));
        wal2.commit();
        let report = recover(&mut backend.clone()).unwrap();
        assert_eq!(report.log_batches, 2);
        assert_eq!(report.state.retained.len(), 2);
    }

    #[test]
    fn open_physically_truncates_torn_tail() {
        // The double-crash scenario from the review: a torn tail must be
        // chopped off the log at open, or every batch committed after the
        // restart sits behind the corrupt bytes and a second crash loses
        // them all.
        let backend = MemBackend::new();
        let mut wal = Wal::new(Box::new(backend.clone()), WalConfig::default());
        wal.record(&rec_retain("t/1", b"one"));
        wal.commit();
        let clean = backend.log_len();
        backend.tear_log_at(clean + 3);
        wal.record(&rec_retain("t/2", b"two"));
        wal.commit();
        drop(wal); // first crash, with 3 torn bytes on the tail
        backend.clear_tear();

        let (mut wal, report) = Wal::open(Box::new(backend.clone()), WalConfig::default()).unwrap();
        assert!(report.log_truncated);
        assert_eq!(report.clean_log_bytes, clean);
        assert_eq!(backend.log_len(), clean, "torn tail must be chopped");
        wal.record(&rec_retain("t/3", b"three"));
        wal.commit();
        drop(wal); // second crash

        let report = recover(&mut backend.clone()).unwrap();
        assert!(!report.log_truncated, "repaired log replays cleanly");
        assert_eq!(
            report.state.retained.keys().collect::<Vec<_>>(),
            vec!["t/1", "t/3"],
            "post-restart commits must survive the second crash"
        );
    }

    #[test]
    fn open_rebuilds_corrupt_snapshot() {
        let backend = MemBackend::new();
        let mut wal = Wal::new(
            Box::new(backend.clone()),
            WalConfig {
                snapshot_every: 0,
                ..WalConfig::default()
            },
        );
        wal.record(&rec_retain("t/1", b"one"));
        wal.commit();
        // A torn snapshot replace: the crash leaves half a snapshot and
        // the full (untruncated) log behind.
        backend.crash_next_snapshot(SnapshotCrash::TornWrite(5));
        wal.install_snapshot(&[rec_retain("t/1", b"one")]);
        wal.record(&rec_retain("t/2", b"two"));
        wal.commit();
        drop(wal); // crash

        let (wal, report) = Wal::open(Box::new(backend.clone()), WalConfig::default()).unwrap();
        assert!(report.snapshot_corrupt);
        assert_eq!(report.state.retained.len(), 2, "log replay salvaged all");
        assert_eq!(wal.stats().snapshots_installed, 1, "snapshot rebuilt");
        assert_eq!(backend.log_len(), 0, "rebuild truncated the log");

        let report = recover(&mut backend.clone()).unwrap();
        assert!(!report.snapshot_corrupt && !report.log_truncated);
        assert_eq!(report.state.retained.len(), 2);
    }

    #[test]
    fn append_error_forces_resync_snapshot() {
        let backend = MemBackend::new();
        let mut wal = Wal::new(
            Box::new(backend.clone()),
            WalConfig {
                snapshot_every: 0,
                ..WalConfig::default()
            },
        );
        wal.record(&rec_retain("t/1", b"one"));
        wal.commit();
        assert!(!wal.snapshot_due());
        backend.tear_log_at(backend.log_len() + 2);
        wal.record(&rec_retain("t/2", b"two"));
        wal.commit();
        assert_eq!(wal.stats().append_errors, 1);
        assert!(
            wal.snapshot_due(),
            "a lost batch must force a resync snapshot even with snapshot_every = 0"
        );
        // The embedder reacts by installing a snapshot of its state; that
        // clears the flag and replaces the torn log.
        wal.install_snapshot(&[rec_retain("t/1", b"one"), rec_retain("t/2", b"two")]);
        assert!(!wal.snapshot_due());
        let report = recover(&mut backend.clone()).unwrap();
        assert!(!report.log_truncated);
        assert_eq!(report.state.retained.len(), 2, "nothing lost after resync");
    }

    #[test]
    fn failed_snapshot_install_stays_due() {
        let backend = MemBackend::new();
        let mut wal = Wal::new(
            Box::new(backend.clone()),
            WalConfig {
                snapshot_every: 0,
                ..WalConfig::default()
            },
        );
        wal.record(&rec_retain("t/1", b"one"));
        wal.commit();
        backend.crash_next_snapshot(SnapshotCrash::BeforeInstall);
        wal.install_snapshot(&[rec_retain("t/1", b"one")]);
        assert_eq!(wal.stats().snapshot_errors, 1);
        assert!(wal.snapshot_due(), "failed install must be retried");
        wal.install_snapshot(&[rec_retain("t/1", b"one")]);
        assert!(!wal.snapshot_due());
    }

    #[test]
    fn file_backend_truncates_torn_tail_on_open() {
        let dir = std::env::temp_dir().join(format!("ifot-wal-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let clean = {
            let backend = FileBackend::open(&dir, "unit").unwrap();
            let mut wal = Wal::new(
                Box::new(backend),
                WalConfig {
                    snapshot_every: 0,
                    ..WalConfig::default()
                },
            );
            wal.record(&rec_retain("t/1", b"one"));
            wal.commit();
            wal.stats().bytes_appended
        };
        // A machine that died mid-append: garbage on the physical tail.
        {
            let mut f = fs::OpenOptions::new()
                .append(true)
                .open(dir.join("unit.wal"))
                .unwrap();
            f.write_all(&[0x7f, 0x00, 0x01]).unwrap();
        }
        {
            let backend = FileBackend::open(&dir, "unit").unwrap();
            let (mut wal, report) = Wal::open(Box::new(backend), WalConfig::default()).unwrap();
            assert!(report.log_truncated);
            assert_eq!(report.clean_log_bytes, clean);
            assert_eq!(
                fs::metadata(dir.join("unit.wal")).unwrap().len(),
                clean,
                "open must chop the torn bytes off the file"
            );
            wal.record(&rec_retain("t/2", b"two"));
            wal.commit();
        }
        {
            let mut backend = FileBackend::open(&dir, "unit").unwrap();
            let report = recover(&mut backend).unwrap();
            assert!(!report.log_truncated);
            assert_eq!(report.state.retained.len(), 2);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_fsync_knob_round_trip() {
        let dir = std::env::temp_dir().join(format!("ifot-wal-fsync-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let backend = FileBackend::open(&dir, "unit").unwrap();
            let mut wal = Wal::new(
                Box::new(backend),
                WalConfig {
                    fsync: true,
                    ..WalConfig::default()
                },
            );
            wal.record(&rec_retain("t/1", b"one"));
            wal.commit();
            assert_eq!(wal.stats().sync_errors, 0);
            assert_eq!(wal.stats().batches_committed, 1);
        }
        {
            let mut backend = FileBackend::open(&dir, "unit").unwrap();
            let report = recover(&mut backend).unwrap();
            assert_eq!(report.state.retained.len(), 1);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn to_records_round_trips_state() {
        let mut state = DurableState::default();
        for rec in [
            rec_retain("t/1", b"one"),
            WalRecord::SessionStarted {
                client: "c".into(),
                next_pid: 7,
            },
            WalRecord::Subscribed {
                client: "c".into(),
                filter: "a/+".into(),
                qos: QoS::AtLeastOnce,
            },
            WalRecord::Queued {
                client: "c".into(),
                message: DurablePublish {
                    topic: "q".into(),
                    qos: QoS::AtLeastOnce,
                    retain: false,
                    payload: Bytes::from_static(b"m"),
                },
            },
            WalRecord::InQos2Insert {
                client: "c".into(),
                pid: 3,
            },
        ] {
            state.apply(&rec);
        }
        let mut rebuilt = DurableState::default();
        for rec in state.to_records() {
            rebuilt.apply(&rec);
        }
        assert_eq!(rebuilt, state);
    }

    #[test]
    fn parse_stream_never_panics_on_garbage() {
        for seed in 0u64..64 {
            let mut bytes = Vec::new();
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            for _ in 0..(seed % 40 + 1) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                bytes.push(x as u8);
            }
            let (_batches, _torn, _clean) = parse_stream(&bytes);
        }
    }
}
