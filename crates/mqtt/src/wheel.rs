//! # Event-driven timer wheel
//!
//! The original TCP front-end woke every 100 ms to call
//! [`Broker::poll`](crate::broker::Broker::poll) whether or not any
//! timer could possibly fire — an idle broker still burned a wakeup ten
//! times a second, and a retransmission could sit up to 100 ms past its
//! deadline. [`TimerWheel`] inverts that: the service thread parks until
//! *exactly* the earliest deadline reported by
//! [`Broker::next_deadline_ns`](crate::broker::Broker::next_deadline_ns)
//! (or forever while idle), and producers that create an **earlier**
//! deadline — e.g. a reader thread that just accepted a QoS 1 publish —
//! wake it precisely once.
//!
//! The wheel itself owns no clock and no parking primitive: it is the
//! shared arithmetic between one sleeping consumer and many producers
//! (a compare-and-swap-min over the parked deadline plus wakeup
//! accounting), so the same state machine drives a condvar, a channel
//! `recv_timeout`, or a virtual-time unit test unchanged. That is what
//! makes "an idle broker makes zero timer wakeups between deadlines"
//! testable deterministically.
//!
//! Protocol:
//!
//! 1. the owner computes its broker's next deadline and calls
//!    [`TimerWheel::arm`], sleeping for the returned duration (`None` =
//!    sleep until signalled);
//! 2. producers call [`TimerWheel::note_deadline`] after feeding the
//!    broker; a `true` return means the owner is parked past the new
//!    deadline and must be signalled through the transport's wake
//!    channel;
//! 3. on any wakeup the owner calls [`TimerWheel::on_wake`] and
//!    re-enters step 1.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sentinel for "no deadline": the owner sleeps until signalled.
const NO_DEADLINE: u64 = u64::MAX;

/// Why [`TimerWheel::on_wake`] believes the owner woke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// The armed deadline was reached: time to poll the broker.
    Deadline,
    /// Woken before the armed deadline (new work or an earlier deadline
    /// arrived); the owner should re-compute and re-arm.
    Early,
}

/// Shared timer state between one parked service thread and its
/// producers. See the [module docs](self) for the protocol.
#[derive(Debug, Default)]
pub struct TimerWheel {
    /// Deadline the owner is currently parked until (`NO_DEADLINE` when
    /// idle or awake).
    parked_ns: AtomicU64,
    /// Total wakeups the owner went through.
    wakeups: AtomicU64,
    /// Wakeups that fired at an armed deadline.
    deadline_wakeups: AtomicU64,
}

impl TimerWheel {
    /// Creates an idle wheel.
    pub fn new() -> Self {
        TimerWheel {
            parked_ns: AtomicU64::new(NO_DEADLINE),
            wakeups: AtomicU64::new(0),
            deadline_wakeups: AtomicU64::new(0),
        }
    }

    /// The owner is about to wait until `deadline` (`None` = no timer
    /// work pending, sleep until signalled). Returns how long to sleep
    /// from `now_ns`: `None` means indefinitely, `Some(ZERO)` means the
    /// deadline already passed — poll immediately without sleeping.
    pub fn arm(&self, now_ns: u64, deadline: Option<u64>) -> Option<Duration> {
        let deadline = deadline.unwrap_or(NO_DEADLINE);
        self.parked_ns.store(deadline, Ordering::Release);
        if deadline == NO_DEADLINE {
            None
        } else {
            Some(Duration::from_nanos(deadline.saturating_sub(now_ns)))
        }
    }

    /// A producer created timer state due at `deadline_ns`. Folds it
    /// into the parked deadline (compare-and-swap min) and returns
    /// `true` iff the owner is parked *past* it and must be signalled.
    /// Producers whose deadline is not earlier than the parked one
    /// return `false` — the owner will wake in time anyway — which is
    /// what keeps steady-state traffic from generating any timer
    /// signalling at all.
    pub fn note_deadline(&self, deadline_ns: u64) -> bool {
        let mut current = self.parked_ns.load(Ordering::Acquire);
        while deadline_ns < current {
            match self.parked_ns.compare_exchange_weak(
                current,
                deadline_ns,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(seen) => current = seen,
            }
        }
        false
    }

    /// The owner woke at `now_ns`. Classifies the wakeup against the
    /// armed deadline, records it, and disarms.
    pub fn on_wake(&self, now_ns: u64) -> Wake {
        let armed = self.parked_ns.swap(NO_DEADLINE, Ordering::AcqRel);
        self.wakeups.fetch_add(1, Ordering::Relaxed);
        if armed != NO_DEADLINE && now_ns >= armed {
            self.deadline_wakeups.fetch_add(1, Ordering::Relaxed);
            Wake::Deadline
        } else {
            Wake::Early
        }
    }

    /// Total wakeups observed.
    pub fn wakeups(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }

    /// Wakeups that coincided with an armed deadline.
    pub fn deadline_wakeups(&self) -> u64 {
        self.deadline_wakeups.load(Ordering::Relaxed)
    }

    /// Wakeups that happened before the armed deadline (signals).
    pub fn early_wakeups(&self) -> u64 {
        self.wakeups() - self.deadline_wakeups()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_wheel_sleeps_indefinitely_with_zero_wakeups() {
        let w = TimerWheel::new();
        // No deadline ⇒ no sleep bound ⇒ the owner parks forever. The
        // old transport would have woken (and polled) 10×/second here.
        assert_eq!(w.arm(0, None), None);
        assert_eq!(w.wakeups(), 0);
    }

    #[test]
    fn armed_wheel_sleeps_exactly_to_the_deadline() {
        let w = TimerWheel::new();
        let deadline = 7_300_000_000; // 7.3 s out
                                      // One sleep spanning the whole gap: zero wakeups strictly
                                      // between now and the deadline, one wakeup at it.
        assert_eq!(
            w.arm(300_000_000, Some(deadline)),
            Some(Duration::from_secs(7))
        );
        assert_eq!(w.wakeups(), 0, "nothing fires before the deadline");
        assert_eq!(w.on_wake(deadline), Wake::Deadline);
        assert_eq!(w.wakeups(), 1);
        assert_eq!(w.deadline_wakeups(), 1);
        assert_eq!(w.early_wakeups(), 0);
    }

    #[test]
    fn past_deadline_polls_immediately() {
        let w = TimerWheel::new();
        assert_eq!(w.arm(500, Some(400)), Some(Duration::ZERO));
        assert_eq!(w.on_wake(500), Wake::Deadline);
    }

    #[test]
    fn earlier_deadline_signals_the_parked_owner_once() {
        let w = TimerWheel::new();
        w.arm(0, Some(10_000_000_000));
        // A producer created earlier timer state: signal needed.
        assert!(w.note_deadline(2_000_000_000));
        // Later (or equal) deadlines ride on the already-armed wakeup.
        assert!(!w.note_deadline(5_000_000_000));
        assert!(!w.note_deadline(2_000_000_000));
        // The owner wakes early, re-computes, re-arms on the new value.
        assert_eq!(w.on_wake(1_000), Wake::Early);
        assert_eq!(w.early_wakeups(), 1);
        assert_eq!(
            w.arm(1_000, Some(2_000_000_000)),
            Some(Duration::from_nanos(1_999_999_000))
        );
        assert_eq!(w.on_wake(2_000_000_000), Wake::Deadline);
        // Exactly two wakeups total for the whole episode — the old
        // poll loop would have made a hundred in those 10 seconds.
        assert_eq!(w.wakeups(), 2);
    }

    #[test]
    fn later_deadline_never_wakes_the_owner() {
        let w = TimerWheel::new();
        w.arm(0, Some(1_000_000_000));
        assert!(!w.note_deadline(5_000_000_000));
        assert_eq!(w.early_wakeups(), 0);
    }

    #[test]
    fn unarmed_wheel_accepts_deadlines() {
        let w = TimerWheel::new();
        // Owner not parked (or parked without a deadline): the producer
        // must signal so the owner can arm a real timeout.
        assert!(w.note_deadline(42));
        assert_eq!(w.on_wake(0), Wake::Early);
    }

    #[test]
    fn concurrent_producers_keep_the_minimum() {
        use std::sync::Arc;
        let w = Arc::new(TimerWheel::new());
        w.arm(0, Some(NO_DEADLINE - 1));
        let handles: Vec<_> = (1..=8u64)
            .map(|i| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    for d in (i * 100..i * 100 + 50).rev() {
                        w.note_deadline(d);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("producer thread");
        }
        // The global minimum of every noted deadline survives the races.
        assert_eq!(w.parked_ns.load(Ordering::Acquire), 100);
    }
}
