//! Actors: the unit of simulated computation.
//!
//! Each simulated node hosts exactly one [`Actor`] — in the IFoT stack this
//! is the middleware node runtime, which internally multiplexes its classes
//! (sensor, publish, broker, subscribe, learning, …). The actor reacts to
//! packets and timers through a [`Context`] that records CPU work and defers
//! outgoing effects to the handler's completion instant, which is how CPU
//! queueing delay propagates into downstream latency.

use core::any::Any;
use core::fmt;

use bytes::Bytes;

use crate::cpu::Work;
use crate::metrics::Metrics;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifier of a simulated node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index of the node within the simulation.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index. Only meaningful for indices below
    /// the owning simulation's node count.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// A datagram travelling between nodes.
///
/// `port` multiplexes protocols on a node (e.g. 1883 for MQTT, 7000 for the
/// management plane); `payload` is opaque bytes — the MQTT substrate speaks
/// its real wire format over this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Protocol multiplexing port.
    pub port: u16,
    /// Opaque payload bytes (reference-counted: cloning a packet shares
    /// the buffer instead of copying it).
    pub payload: Bytes,
}

/// Behaviour of a simulated node. See the [module docs](self).
///
/// All methods default to no-ops so simple actors implement only what they
/// need. The `Any` supertrait allows the harness to downcast and inspect
/// actor state after a run.
pub trait Actor: Any {
    /// Invoked once at simulation start (time zero, in node-creation order).
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// Invoked when a packet addressed to this node arrives.
    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let _ = (ctx, packet);
    }

    /// Invoked when a timer previously set by this node fires; `tag` is the
    /// caller-chosen discriminator.
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        let _ = (ctx, tag);
    }
}

/// Effects accumulated while a handler runs; applied by the simulator at
/// the handler's completion instant.
#[derive(Debug, Default)]
pub(crate) struct Effects {
    pub(crate) work: Work,
    pub(crate) sends: Vec<(NodeId, u16, Bytes)>,
    pub(crate) timers_rel: Vec<(SimDuration, u64)>,
    pub(crate) timers_abs: Vec<(SimTime, u64)>,
    pub(crate) latencies: Vec<(String, SimTime)>,
    pub(crate) stage_events: Vec<String>,
}

/// Handler-side view of the simulation.
///
/// # Timing semantics
///
/// [`Context::now`] returns the *arrival* time of the event being handled —
/// the nominal instant the packet landed or the timer fired. CPU work
/// declared via [`Context::consume`] pushes the handler's *completion*
/// later (possibly much later if the node is backlogged). Sends and
/// relative timers take effect at completion; latency recordings via
/// [`Context::record_latency_since`] measure up to completion. This makes
/// CPU queueing visible end-to-end without actors having to know their own
/// completion time.
pub struct Context<'a> {
    pub(crate) node: NodeId,
    pub(crate) arrival: SimTime,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) metrics: &'a mut Metrics,
    pub(crate) names: &'a [String],
    pub(crate) effects: Effects,
    pub(crate) stage_trace: bool,
}

impl<'a> Context<'a> {
    /// The node this handler runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Arrival time of the event being handled (see type docs for the
    /// distinction from completion time).
    pub fn now(&self) -> SimTime {
        self.arrival
    }

    /// Declares that the handler performs `work`; accumulates.
    pub fn consume(&mut self, work: Work) {
        self.effects.work += work;
    }

    /// Queues a packet to `dst`; it departs onto the medium at this
    /// handler's completion instant.
    pub fn send(&mut self, dst: NodeId, port: u16, payload: impl Into<Bytes>) {
        self.effects.sends.push((dst, port, payload.into()));
    }

    /// Arms a timer firing `delay` after this handler's completion.
    pub fn set_timer_after(&mut self, delay: SimDuration, tag: u64) {
        self.effects.timers_rel.push((delay, tag));
    }

    /// Arms a timer at an absolute instant. If the instant is not after the
    /// handler's completion, the timer fires at completion — absolute timers
    /// cannot travel into the past.
    pub fn set_timer_at(&mut self, at: SimTime, tag: u64) {
        self.effects.timers_abs.push((at, tag));
    }

    /// Records `completion - t0` into the latency series `name` once this
    /// handler completes.
    pub fn record_latency_since(&mut self, name: &str, t0: SimTime) {
        self.effects.latencies.push((name.to_owned(), t0));
    }

    /// Mutable access to the global metrics hub (counters take effect
    /// immediately).
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// The simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Resolves a node name registered at
    /// [`crate::sim::Simulation::add_node`] to its id.
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| NodeId(i as u32))
    }

    /// Name of a node.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Whether stage tracing is on (see
    /// [`crate::sim::Simulation::enable_stage_trace`]). Actors guard the
    /// formatting of stage-event strings behind this so the default path
    /// pays nothing.
    pub fn stage_trace_enabled(&self) -> bool {
        self.stage_trace
    }

    /// Records a stage-level event (operator enqueue/dequeue, batch sizes,
    /// shed decisions). Appended to the simulation trace as a
    /// `stage:`-prefixed entry at this handler's arrival time, in emission
    /// order, after the dispatch entry for the event being handled. A
    /// no-op unless stage tracing is enabled.
    pub fn stage_event(&mut self, kind: &str) {
        if self.stage_trace {
            self.effects.stage_events.push(kind.to_owned());
        }
    }
}

impl fmt::Debug for Context<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("node", &self.node)
            .field("arrival", &self.arrival)
            .finish_non_exhaustive()
    }
}
