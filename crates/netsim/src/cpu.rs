//! CPU execution model for simulated nodes.
//!
//! Every event handler on a node declares how much *work* it performs.
//! Work is expressed in milliseconds on a reference machine (defined as the
//! paper's Raspberry Pi 2), and each node's [`CpuProfile`] scales it by a
//! speed factor. A node executes at most `cores` handlers concurrently;
//! excess events queue FIFO. This queueing is exactly the mechanism that
//! produces the paper's latency knee between 20 and 40 Hz.

use crate::time::{SimDuration, SimTime};

/// Static description of a node's compute capability.
///
/// `speed` is relative to the reference machine (Raspberry Pi 2, ARM
/// Cortex-A7 @ 900 MHz): `speed == 1.0` means work units elapse 1:1,
/// `speed == 4.0` means the node is four times faster.
///
/// ```
/// use ifot_netsim::cpu::CpuProfile;
///
/// let pi = CpuProfile::RASPBERRY_PI_2;
/// assert_eq!(pi.speed(), 1.0);
/// assert!(CpuProfile::THINKPAD_X250.speed() > pi.speed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuProfile {
    name: &'static str,
    speed: f64,
    cores: u32,
}

impl CpuProfile {
    /// The paper's neuron module: Raspberry Pi 2, ARM Cortex-A7 900 MHz,
    /// 1 GB RAM (Table I). This is the reference machine: speed 1.0.
    ///
    /// The middleware prototype pins its pipeline stages to single threads,
    /// so the model exposes one effective core even though the Pi 2 has
    /// four; per-stage handling is serialized exactly as in the prototype.
    pub const RASPBERRY_PI_2: CpuProfile = CpuProfile {
        name: "raspberry-pi-2",
        speed: 1.0,
        cores: 1,
    };

    /// The paper's management node: ThinkPad x250, Core i5-5200U 2.2 GHz,
    /// 8 GB RAM (Table I). Roughly an order of magnitude faster per core
    /// than the Cortex-A7 for the scalar workloads involved.
    pub const THINKPAD_X250: CpuProfile = CpuProfile {
        name: "thinkpad-x250",
        speed: 8.0,
        cores: 2,
    };

    /// A generic cloud server profile, used by the Fig. 1 style
    /// cloud-vs-local comparison.
    pub const CLOUD_SERVER: CpuProfile = CpuProfile {
        name: "cloud-server",
        speed: 16.0,
        cores: 8,
    };

    /// Creates a custom profile.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not strictly positive and finite, or if
    /// `cores == 0`.
    pub fn new(name: &'static str, speed: f64, cores: u32) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0,
            "cpu speed must be positive, got {speed}"
        );
        assert!(cores > 0, "a cpu needs at least one core");
        CpuProfile { name, speed, cores }
    }

    /// Human-readable profile name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Speed factor relative to the reference machine.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Number of cores executing handlers concurrently.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Wall-clock (virtual) time this profile needs for `work`.
    pub fn execution_time(&self, work: Work) -> SimDuration {
        SimDuration::from_nanos((work.as_ref_nanos() as f64 / self.speed).round() as u64)
    }
}

/// An amount of computation, measured in time on the reference machine.
///
/// ```
/// use ifot_netsim::cpu::Work;
///
/// let w = Work::from_ref_millis(2.0) + Work::from_ref_micros(500.0);
/// assert_eq!(w.as_ref_nanos(), 2_500_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Work(u64);

impl Work {
    /// No computation.
    pub const ZERO: Work = Work(0);

    /// Work taking `ms` milliseconds on the reference machine.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_ref_millis(ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "work must be non-negative, got {ms}"
        );
        Work((ms * 1.0e6).round() as u64)
    }

    /// Work taking `us` microseconds on the reference machine.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_ref_micros(us: f64) -> Self {
        assert!(
            us.is_finite() && us >= 0.0,
            "work must be non-negative, got {us}"
        );
        Work((us * 1.0e3).round() as u64)
    }

    /// Reference-machine nanoseconds.
    pub fn as_ref_nanos(&self) -> u64 {
        self.0
    }

    /// Reference-machine milliseconds.
    pub fn as_ref_millis(&self) -> f64 {
        self.0 as f64 / 1.0e6
    }
}

impl core::ops::Add for Work {
    type Output = Work;
    fn add(self, rhs: Work) -> Work {
        Work(self.0.saturating_add(rhs.0))
    }
}

impl core::ops::AddAssign for Work {
    fn add_assign(&mut self, rhs: Work) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

/// Runtime execution state of one node's CPU: when each core becomes free.
///
/// Scheduling an event that arrives at `arrival` with cost `work` proceeds:
/// the earliest-free core is chosen, execution starts at
/// `max(arrival, core_free)`, runs for `profile.execution_time(work)`, and
/// the completion instant is returned. This conserves work and keeps
/// handling FIFO per node (ties broken by core index).
#[derive(Debug, Clone)]
pub struct CpuState {
    profile: CpuProfile,
    core_free_at: Vec<SimTime>,
    busy_accum: SimDuration,
}

impl CpuState {
    /// Creates an idle CPU with the given profile.
    pub fn new(profile: CpuProfile) -> Self {
        CpuState {
            profile,
            core_free_at: vec![SimTime::ZERO; profile.cores() as usize],
            busy_accum: SimDuration::ZERO,
        }
    }

    /// The node's static profile.
    pub fn profile(&self) -> CpuProfile {
        self.profile
    }

    /// Schedules `work` arriving at `arrival`; returns `(start, completion)`.
    pub fn schedule(&mut self, arrival: SimTime, work: Work) -> (SimTime, SimTime) {
        let (idx, &free) = self
            .core_free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("cpu has at least one core");
        let start = if arrival > free { arrival } else { free };
        let dur = self.profile.execution_time(work);
        let completion = start + dur;
        self.core_free_at[idx] = completion;
        self.busy_accum += dur;
        (start, completion)
    }

    /// The earliest instant at which some core is free.
    pub fn earliest_free(&self) -> SimTime {
        *self
            .core_free_at
            .iter()
            .min()
            .expect("cpu has at least one core")
    }

    /// Total busy time accumulated across cores (for utilization reports).
    pub fn busy_time(&self) -> SimDuration {
        self.busy_accum
    }

    /// Utilization in `[0, 1]` over the horizon `now` (1.0 = all cores busy
    /// the whole time). Returns 0 when `now` is the simulation start.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let horizon = now.as_nanos() as f64 * self.core_free_at.len() as f64;
        if horizon == 0.0 {
            0.0
        } else {
            (self.busy_accum.as_nanos() as f64 / horizon).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn idle_cpu_starts_immediately() {
        let mut cpu = CpuState::new(CpuProfile::RASPBERRY_PI_2);
        let (start, done) = cpu.schedule(t(10), Work::from_ref_millis(5.0));
        assert_eq!(start, t(10));
        assert_eq!(done, t(15));
    }

    #[test]
    fn busy_single_core_queues_fifo() {
        let mut cpu = CpuState::new(CpuProfile::RASPBERRY_PI_2);
        let (_, d1) = cpu.schedule(t(0), Work::from_ref_millis(10.0));
        assert_eq!(d1, t(10));
        // Arrives while busy: starts when the core frees.
        let (s2, d2) = cpu.schedule(t(1), Work::from_ref_millis(10.0));
        assert_eq!(s2, t(10));
        assert_eq!(d2, t(20));
    }

    #[test]
    fn faster_profile_shortens_execution() {
        let mut slow = CpuState::new(CpuProfile::RASPBERRY_PI_2);
        let mut fast = CpuState::new(CpuProfile::new("fast", 4.0, 1));
        let (_, d_slow) = slow.schedule(t(0), Work::from_ref_millis(8.0));
        let (_, d_fast) = fast.schedule(t(0), Work::from_ref_millis(8.0));
        assert_eq!(d_slow, t(8));
        assert_eq!(d_fast, t(2));
    }

    #[test]
    fn multicore_runs_in_parallel() {
        let mut cpu = CpuState::new(CpuProfile::new("dual", 1.0, 2));
        let (_, d1) = cpu.schedule(t(0), Work::from_ref_millis(10.0));
        let (s2, d2) = cpu.schedule(t(0), Work::from_ref_millis(10.0));
        assert_eq!(d1, t(10));
        assert_eq!(s2, t(0));
        assert_eq!(d2, t(10));
        // Third job queues behind whichever core frees first.
        let (s3, _) = cpu.schedule(t(0), Work::from_ref_millis(1.0));
        assert_eq!(s3, t(10));
    }

    #[test]
    fn work_is_conserved() {
        let mut cpu = CpuState::new(CpuProfile::RASPBERRY_PI_2);
        for _ in 0..10 {
            cpu.schedule(t(0), Work::from_ref_millis(3.0));
        }
        assert_eq!(cpu.busy_time().as_millis(), 30);
    }

    #[test]
    fn utilization_is_bounded() {
        let mut cpu = CpuState::new(CpuProfile::RASPBERRY_PI_2);
        assert_eq!(cpu.utilization(SimTime::ZERO), 0.0);
        cpu.schedule(t(0), Work::from_ref_millis(50.0));
        let u = cpu.utilization(t(100));
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
        assert!(cpu.utilization(t(10)) <= 1.0);
    }

    #[test]
    fn zero_work_completes_instantly() {
        let mut cpu = CpuState::new(CpuProfile::RASPBERRY_PI_2);
        let (s, d) = cpu.schedule(t(5), Work::ZERO);
        assert_eq!(s, d);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = CpuProfile::new("broken", 1.0, 0);
    }

    #[test]
    fn work_arithmetic() {
        let mut w = Work::from_ref_millis(1.0);
        w += Work::from_ref_micros(250.0);
        assert_eq!(w.as_ref_millis(), 1.25);
    }
}
