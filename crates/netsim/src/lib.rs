//! # ifot-netsim — deterministic testbed simulator for the IFoT middleware
//!
//! The IFoT paper evaluates its middleware on six Raspberry Pi 2 modules and
//! one management laptop sharing a wireless LAN. This crate substitutes that
//! physical testbed with a **deterministic discrete-event simulation**:
//!
//! * a virtual clock ([`time::SimTime`]) and seeded RNG ([`rng::SimRng`]) so
//!   every run replays bit-for-bit,
//! * per-node CPU models ([`cpu::CpuProfile`], [`cpu::CpuState`]) calibrated
//!   to the paper's hardware (Table I), producing the FIFO queueing that
//!   shapes the latency knee between 20 and 40 Hz,
//! * a shared-medium WLAN ([`wlan::WlanState`]) with serialized airtime,
//!   heavy-tailed jitter and loss,
//! * an actor model ([`actor::Actor`], [`sim::Simulation`]) on which the
//!   middleware's node runtime executes unchanged logic.
//!
//! ## Example
//!
//! ```
//! use ifot_netsim::prelude::*;
//!
//! struct Beeper;
//! impl Actor for Beeper {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         ctx.set_timer_after(SimDuration::from_millis(100), 1);
//!     }
//!     fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
//!         ctx.metrics().incr("beeps");
//!     }
//! }
//!
//! let mut sim = Simulation::new(7);
//! sim.add_node("beeper", CpuProfile::RASPBERRY_PI_2, Box::new(Beeper));
//! sim.run_to_completion();
//! assert_eq!(sim.metrics().counter("beeps"), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod actor;
pub mod cpu;
pub mod metrics;
pub mod rng;
pub mod sim;
pub mod time;
pub mod trace;
pub mod wlan;

/// Convenient glob import of the commonly used simulator types.
pub mod prelude {
    pub use crate::actor::{Actor, Context, NodeId, Packet};
    pub use crate::cpu::{CpuProfile, CpuState, Work};
    pub use crate::metrics::{LatencySeries, LatencySummary, Metrics};
    pub use crate::rng::SimRng;
    pub use crate::sim::Simulation;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::wlan::{TxOutcome, WlanConfig, WlanState};
}
