//! Measurement collection: latency series, counters, and summary statistics.
//!
//! Actors record named observations during a run; the harness reads the
//! summaries afterwards to print the paper's tables (average and maximum
//! delay per sampling rate).

use std::collections::BTreeMap;

use crate::time::SimDuration;

/// Summary of a latency series: count, mean, min/max and percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Number of recorded observations.
    pub count: usize,
    /// Mean in milliseconds.
    pub mean_ms: f64,
    /// Minimum in milliseconds.
    pub min_ms: f64,
    /// Maximum in milliseconds.
    pub max_ms: f64,
    /// Median (p50) in milliseconds.
    pub p50_ms: f64,
    /// 95th percentile in milliseconds.
    pub p95_ms: f64,
    /// 99th percentile in milliseconds.
    pub p99_ms: f64,
}

impl LatencySummary {
    fn empty() -> Self {
        LatencySummary {
            count: 0,
            mean_ms: 0.0,
            min_ms: 0.0,
            max_ms: 0.0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
        }
    }
}

/// A named series of latency observations.
///
/// Samples are kept in full (runs are laptop-scale) so exact percentiles and
/// maxima — the quantities the paper reports — are available.
///
/// ```
/// use ifot_netsim::metrics::LatencySeries;
/// use ifot_netsim::time::SimDuration;
///
/// let mut s = LatencySeries::new();
/// s.record(SimDuration::from_millis(10));
/// s.record(SimDuration::from_millis(20));
/// let sum = s.summary();
/// assert_eq!(sum.count, 2);
/// assert_eq!(sum.mean_ms, 15.0);
/// assert_eq!(sum.max_ms, 20.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencySeries {
    samples_ms: Vec<f64>,
}

impl LatencySeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, d: SimDuration) {
        self.samples_ms.push(d.as_millis_f64());
    }

    /// Number of observations recorded so far.
    pub fn len(&self) -> usize {
        self.samples_ms.len()
    }

    /// Whether no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ms.is_empty()
    }

    /// Raw samples in milliseconds, in recording order.
    pub fn samples_ms(&self) -> &[f64] {
        &self.samples_ms
    }

    /// Computes the summary statistics of the series.
    pub fn summary(&self) -> LatencySummary {
        if self.samples_ms.is_empty() {
            return LatencySummary::empty();
        }
        let mut sorted = self.samples_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency samples are finite"));
        let count = sorted.len();
        let mean_ms = sorted.iter().sum::<f64>() / count as f64;
        let pct = |p: f64| -> f64 {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            sorted[idx.min(count - 1)]
        };
        LatencySummary {
            count,
            mean_ms,
            min_ms: sorted[0],
            max_ms: sorted[count - 1],
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
        }
    }
}

/// Central metrics hub: named latency series and named counters.
///
/// Keyed by `&'static str`-free owned strings so actors can build names
/// dynamically (e.g. per-rate). Iteration order is deterministic (BTreeMap).
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    latencies: BTreeMap<String, LatencySeries>,
    counters: BTreeMap<String, u64>,
}

impl Metrics {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a latency observation under `name`.
    pub fn record_latency(&mut self, name: &str, d: SimDuration) {
        self.latencies.entry(name.to_owned()).or_default().record(d);
    }

    /// Adds `delta` to the counter `name`.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Increments the counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The latency series recorded under `name`, if any.
    pub fn latency(&self, name: &str) -> Option<&LatencySeries> {
        self.latencies.get(name)
    }

    /// Summary of the series under `name`; empty summary if absent.
    pub fn latency_summary(&self, name: &str) -> LatencySummary {
        self.latencies
            .get(name)
            .map(LatencySeries::summary)
            .unwrap_or_else(LatencySummary::empty)
    }

    /// Iterates over all latency series in name order.
    pub fn latencies(&self) -> impl Iterator<Item = (&str, &LatencySeries)> {
        self.latencies.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges a buffered [`MetricsDelta`] into the hub in one pass.
    ///
    /// This is the bulk entry point for per-worker metric shards: hot
    /// threads accumulate into a private delta and pay the hub lock once
    /// per flush instead of once per observation. The delta is drained.
    pub fn absorb(&mut self, delta: &mut MetricsDelta) {
        for (name, v) in delta.counters.drain(..) {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, ns) in delta.latencies_ns.drain(..) {
            self.latencies
                .entry(name)
                .or_default()
                .record(SimDuration::from_nanos(ns));
        }
    }
}

/// A thread-private buffer of metric observations awaiting a bulk merge.
///
/// Order within the buffer is preserved on absorb, so latency series keep
/// their recording order. Counter entries are appended raw (not coalesced)
/// — flush cadence keeps the buffer small, and the hub sums on merge.
#[derive(Debug, Clone, Default)]
pub struct MetricsDelta {
    counters: Vec<(String, u64)>,
    latencies_ns: Vec<(String, u64)>,
}

impl MetricsDelta {
    /// Creates an empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers `delta` against counter `name`.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(last) = self.counters.last_mut() {
            if last.0 == name {
                last.1 += delta;
                return;
            }
        }
        self.counters.push((name.to_owned(), delta));
    }

    /// Buffers one latency observation (nanoseconds) under `name`.
    pub fn record_latency_ns(&mut self, name: &str, ns: u64) {
        self.latencies_ns.push((name.to_owned(), ns));
    }

    /// Number of buffered entries (counters + latency samples).
    pub fn len(&self) -> usize {
        self.counters.len() + self.latencies_ns.len()
    }

    /// Whether the buffer holds nothing to flush.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.latencies_ns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn empty_series_summary_is_zero() {
        let s = LatencySeries::new();
        assert!(s.is_empty());
        let sum = s.summary();
        assert_eq!(sum.count, 0);
        assert_eq!(sum.mean_ms, 0.0);
    }

    #[test]
    fn summary_statistics_are_exact() {
        let mut s = LatencySeries::new();
        for v in [5, 1, 3, 2, 4] {
            s.record(ms(v));
        }
        let sum = s.summary();
        assert_eq!(sum.count, 5);
        assert_eq!(sum.mean_ms, 3.0);
        assert_eq!(sum.min_ms, 1.0);
        assert_eq!(sum.max_ms, 5.0);
        assert_eq!(sum.p50_ms, 3.0);
    }

    #[test]
    fn percentiles_pick_upper_tail() {
        let mut s = LatencySeries::new();
        for v in 1..=100 {
            s.record(ms(v));
        }
        let sum = s.summary();
        assert!(sum.p95_ms >= 94.0);
        assert!(sum.p99_ms >= 98.0);
        assert_eq!(sum.max_ms, 100.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("sent");
        m.add("sent", 4);
        assert_eq!(m.counter("sent"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn hub_routes_series_by_name() {
        let mut m = Metrics::new();
        m.record_latency("train", ms(10));
        m.record_latency("train", ms(30));
        m.record_latency("predict", ms(5));
        assert_eq!(m.latency_summary("train").mean_ms, 20.0);
        assert_eq!(m.latency_summary("predict").count, 1);
        assert_eq!(m.latency_summary("absent").count, 0);
        assert_eq!(m.latencies().count(), 2);
        assert_eq!(m.counters().count(), 0);
    }

    #[test]
    fn absorb_merges_and_drains_a_delta() {
        let mut m = Metrics::new();
        m.add("sent", 2);
        m.record_latency("lat", ms(10));

        let mut d = MetricsDelta::new();
        d.add("sent", 3);
        d.add("sent", 1); // coalesces with the previous entry
        d.add("other", 7);
        d.record_latency_ns("lat", 20_000_000);
        d.record_latency_ns("lat", 30_000_000);
        assert_eq!(d.len(), 4);

        m.absorb(&mut d);
        assert!(d.is_empty());
        assert_eq!(m.counter("sent"), 6);
        assert_eq!(m.counter("other"), 7);
        let sum = m.latency_summary("lat");
        assert_eq!(sum.count, 3);
        assert_eq!(sum.mean_ms, 20.0);
        // Recording order is preserved across the merge boundary.
        assert_eq!(m.latency("lat").unwrap().samples_ms(), &[10.0, 20.0, 30.0]);
    }

    #[test]
    fn iteration_order_is_deterministic() {
        let mut m = Metrics::new();
        m.record_latency("b", ms(1));
        m.record_latency("a", ms(1));
        let names: Vec<&str> = m.latencies().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
