//! Deterministic random number generation for the simulator.
//!
//! All stochastic behaviour in the simulation (jitter, loss, sensor noise
//! used by actors) is drawn from a single [`SimRng`] owned by the world, so
//! a fixed seed plus a deterministic event order yields a bit-identical run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// Deterministic simulator RNG with the distributions the network and CPU
/// models need (uniform, exponential, normal, Pareto).
///
/// ```
/// use ifot_netsim::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range [{lo}, {hi})"
        );
        if lo == hi {
            return lo;
        }
        lo + self.uniform() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.inner.gen_range(0..n)
        }
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Exponential variate with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or not finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean >= 0.0,
            "mean must be non-negative, got {mean}"
        );
        if mean == 0.0 {
            return 0.0;
        }
        // Inverse CDF; `1 - u` avoids ln(0).
        let u = 1.0 - self.uniform();
        -mean * u.ln()
    }

    /// Standard normal variate (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either argument is not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "invalid normal parameters mean={mean} std_dev={std_dev}"
        );
        mean + std_dev * self.standard_normal()
    }

    /// Pareto variate with scale `x_min` and shape `alpha` — the heavy-tail
    /// model used for Wi-Fi contention spikes.
    ///
    /// # Panics
    ///
    /// Panics if `x_min <= 0` or `alpha <= 0`.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(
            x_min > 0.0 && alpha > 0.0,
            "invalid pareto parameters x_min={x_min} alpha={alpha}"
        );
        let u = 1.0 - self.uniform();
        x_min / u.powf(1.0 / alpha)
    }

    /// Exponential virtual-time duration with the given mean.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_nanos(self.exponential(mean.as_nanos() as f64).round() as u64)
    }

    /// Forks an independent deterministic stream, e.g. one per sensor, so
    /// actor-local noise does not perturb network-level draws.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(4);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < 0.2, "observed mean {observed}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SimRng::seed_from(5);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SimRng::seed_from(6);
        for _ in 0..1000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn below_zero_is_zero() {
        let mut rng = SimRng::seed_from(9);
        assert_eq!(rng.below(0), 0);
        for _ in 0..100 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn forked_streams_are_independent_but_deterministic() {
        let mut a = SimRng::seed_from(11);
        let mut b = SimRng::seed_from(11);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn exp_duration_zero_mean_is_zero() {
        let mut rng = SimRng::seed_from(12);
        assert_eq!(rng.exp_duration(SimDuration::ZERO), SimDuration::ZERO);
    }
}
