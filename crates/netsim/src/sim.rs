//! The discrete-event simulation engine.
//!
//! Events (packet deliveries, timers, node starts) are processed in
//! non-decreasing time order with a monotone sequence number breaking ties,
//! which — together with the single seeded RNG — makes every run
//! bit-for-bit reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::actor::{Actor, Context, Effects, NodeId, Packet};
use crate::cpu::{CpuProfile, CpuState};
use crate::metrics::Metrics;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEntry};
use crate::wlan::{TxOutcome, WlanConfig, WlanState};

#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    Start,
    Timer { tag: u64 },
    Deliver { packet: Packet },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    time: SimTime,
    seq: u64,
    node: NodeId,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event simulation of nodes on one wireless LAN.
///
/// ```
/// use ifot_netsim::prelude::*;
///
/// struct Ping { peer: Option<NodeId> }
/// struct Pong;
///
/// impl Actor for Ping {
///     fn on_start(&mut self, ctx: &mut Context<'_>) {
///         self.peer = ctx.lookup("pong");
///         let peer = self.peer.expect("pong exists");
///         ctx.send(peer, 7, b"ping".to_vec());
///     }
///     fn on_packet(&mut self, ctx: &mut Context<'_>, _packet: Packet) {
///         ctx.metrics().incr("pongs");
///     }
/// }
/// impl Actor for Pong {
///     fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
///         ctx.send(packet.src, 7, b"pong".to_vec());
///     }
/// }
///
/// let mut sim = Simulation::new(1);
/// sim.add_node("ping", CpuProfile::RASPBERRY_PI_2, Box::new(Ping { peer: None }));
/// sim.add_node("pong", CpuProfile::RASPBERRY_PI_2, Box::new(Pong));
/// sim.run_for(SimDuration::from_secs(1));
/// assert_eq!(sim.metrics().counter("pongs"), 1);
/// ```
pub struct Simulation {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Event>>,
    rng: SimRng,
    wlan: WlanState,
    metrics: Metrics,
    names: Vec<String>,
    cpus: Vec<CpuState>,
    up: Vec<bool>,
    blocked_links: std::collections::BTreeSet<(NodeId, NodeId)>,
    backlog_limits: Vec<Option<SimDuration>>,
    actors: Vec<Option<Box<dyn Actor>>>,
    trace: Option<Trace>,
    stage_trace: bool,
    processed: u64,
}

impl Simulation {
    /// Creates a simulation with the default (paper testbed) WLAN.
    pub fn new(seed: u64) -> Self {
        Simulation::with_wlan(WlanConfig::default(), seed)
    }

    /// Creates a simulation with an explicit WLAN configuration.
    pub fn with_wlan(config: WlanConfig, seed: u64) -> Self {
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            rng: SimRng::seed_from(seed),
            wlan: WlanState::new(config),
            metrics: Metrics::new(),
            names: Vec::new(),
            cpus: Vec::new(),
            up: Vec::new(),
            blocked_links: std::collections::BTreeSet::new(),
            backlog_limits: Vec::new(),
            actors: Vec::new(),
            trace: None,
            stage_trace: false,
            processed: 0,
        }
    }

    /// Registers a node and schedules its `on_start` at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn add_node(&mut self, name: &str, profile: CpuProfile, actor: Box<dyn Actor>) -> NodeId {
        assert!(
            !self.names.iter().any(|n| n == name),
            "duplicate node name {name:?}"
        );
        let id = NodeId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.cpus.push(CpuState::new(profile));
        self.up.push(true);
        self.backlog_limits.push(None);
        self.actors.push(Some(actor));
        self.push_event(SimTime::ZERO, id, EventKind::Start);
        id
    }

    /// Resolves a node name to its id.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| NodeId(i as u32))
    }

    /// Name of a node.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// The metrics hub.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics access, e.g. for harness-side annotations.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Channel state (utilization, loss counters).
    pub fn wlan(&self) -> &WlanState {
        &self.wlan
    }

    /// CPU state of a node (for utilization reports).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this simulation.
    pub fn cpu(&self, id: NodeId) -> &CpuState {
        &self.cpus[id.index()]
    }

    /// Blocks or unblocks the directed link from `src` to `dst`: blocked
    /// packets are silently dropped at send time (counted under
    /// `link_blocked_drops`). Block both directions to model a network
    /// partition between two stations that still share the medium.
    pub fn set_link_blocked(&mut self, src: NodeId, dst: NodeId, blocked: bool) {
        if blocked {
            self.blocked_links.insert((src, dst));
        } else {
            self.blocked_links.remove(&(src, dst));
        }
    }

    /// Convenience: blocks (or heals) both directions between two nodes.
    pub fn set_partitioned(&mut self, a: NodeId, b: NodeId, partitioned: bool) {
        self.set_link_blocked(a, b, partitioned);
        self.set_link_blocked(b, a, partitioned);
    }

    /// Bounds a node's ingress backlog: a packet arriving while the
    /// node's CPU is already busy more than `limit` into the future is
    /// dropped (counted under the `backlog_dropped` metric). This models
    /// the bounded socket/queue buffers of a real middleware stack —
    /// without it, an overloaded node's delay grows without bound, which
    /// no real deployment exhibits. Timers are exempt.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this simulation.
    pub fn set_backlog_limit(&mut self, id: NodeId, limit: Option<SimDuration>) {
        self.backlog_limits[id.index()] = limit;
    }

    /// Marks a node up or down. Events addressed to a down node are
    /// silently dropped (packets vanish, timers are suppressed), modelling
    /// a crash-stop failure.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this simulation.
    pub fn set_node_up(&mut self, id: NodeId, up: bool) {
        self.up[id.index()] = up;
    }

    /// Whether a node is currently up.
    pub fn is_node_up(&self, id: NodeId) -> bool {
        self.up.get(id.index()).copied().unwrap_or(false)
    }

    /// Restarts a crashed node: marks it up and schedules a fresh
    /// `on_start` at the current time. The actor keeps its in-memory
    /// state (a warm restart); actors that need to re-arm timers or
    /// re-establish sessions must handle repeated `on_start` calls.
    ///
    /// Calling this on a node that is still up would double its timer
    /// chains; only use it after [`Simulation::set_node_up`]`(id, false)`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this simulation, or if the node is
    /// currently up.
    pub fn restart_node(&mut self, id: NodeId) {
        assert!(
            !self.up[id.index()],
            "restart_node on a running node would duplicate its timers"
        );
        self.up[id.index()] = true;
        let now = self.now;
        self.push_event(now, id, EventKind::Start);
    }

    /// Turns on event tracing (cleared of prior content).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Trace::new());
    }

    /// Takes the recorded trace, leaving tracing enabled with a fresh one.
    pub fn take_trace(&mut self) -> Trace {
        self.trace.replace(Trace::new()).unwrap_or_default()
    }

    /// Turns on stage tracing in addition to event tracing: stage-level
    /// records emitted by actors via [`Context::stage_event`] (operator
    /// enqueue/dequeue, batch sizes) are appended to the trace as
    /// `stage:`-prefixed entries. Off by default, so plain
    /// [`Simulation::enable_trace`] digests are unaffected.
    pub fn enable_stage_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::new());
        }
        self.stage_trace = true;
    }

    /// Immutable view of the actor on `id`, downcast to `T`.
    ///
    /// Returns `None` if the node does not exist or hosts a different type.
    pub fn actor_as<T: Actor>(&self, id: NodeId) -> Option<&T> {
        let boxed = self.actors.get(id.index())?.as_ref()?;
        (boxed.as_ref() as &dyn core::any::Any).downcast_ref::<T>()
    }

    /// Mutable view of the actor on `id`, downcast to `T`.
    pub fn actor_as_mut<T: Actor>(&mut self, id: NodeId) -> Option<&mut T> {
        let boxed = self.actors.get_mut(id.index())?.as_mut()?;
        (boxed.as_mut() as &mut dyn core::any::Any).downcast_mut::<T>()
    }

    /// Injects a packet from outside the simulation (e.g. a harness acting
    /// as an external client); it is delivered through the medium.
    pub fn inject_packet(&mut self, packet: Packet) {
        let arrival = match self
            .wlan
            .transmit(self.now, packet.payload.len(), &mut self.rng)
        {
            TxOutcome::Delivered(t) => t,
            TxOutcome::Lost => return,
        };
        self.push_event(arrival, packet.dst, EventKind::Deliver { packet });
    }

    /// Runs until the event queue is empty or `limit` is reached; returns
    /// the number of events processed. The clock ends at `min(limit, last
    /// event time)`.
    pub fn run_until(&mut self, limit: SimTime) -> u64 {
        let mut n = 0;
        while let Some(Reverse(ev)) = self.queue.peek().cloned() {
            if ev.time > limit {
                break;
            }
            self.queue.pop();
            self.now = ev.time;
            self.dispatch(ev);
            n += 1;
        }
        if self.now < limit && limit != SimTime::MAX {
            self.now = limit;
        }
        self.processed += n;
        n
    }

    /// Runs for `d` of virtual time from the current clock.
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        let limit = self.now + d;
        self.run_until(limit)
    }

    /// Runs until no events remain.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    fn push_event(&mut self, time: SimTime, node: NodeId, kind: EventKind) {
        let ev = Event {
            time,
            seq: self.seq,
            node,
            kind,
        };
        self.seq += 1;
        self.queue.push(Reverse(ev));
    }

    fn dispatch(&mut self, ev: Event) {
        if !self.up[ev.node.index()] {
            return;
        }
        if let (EventKind::Deliver { .. }, Some(limit)) =
            (&ev.kind, self.backlog_limits[ev.node.index()])
        {
            let free_at = self.cpus[ev.node.index()].earliest_free();
            if free_at > ev.time + limit {
                self.metrics.incr("backlog_dropped");
                return;
            }
        }
        if let Some(trace) = self.trace.as_mut() {
            let kind = match &ev.kind {
                EventKind::Start => "start".to_owned(),
                EventKind::Timer { tag } => format!("timer({tag})"),
                EventKind::Deliver { packet } => {
                    format!("packet({}, {}B)", packet.port, packet.payload.len())
                }
            };
            trace.push(TraceEntry {
                time: ev.time,
                node: ev.node,
                kind,
            });
        }

        // Take the actor out so the context can borrow the rest of the world.
        let mut actor = self.actors[ev.node.index()]
            .take()
            .expect("actor present unless re-entrant dispatch");
        let mut ctx = Context {
            node: ev.node,
            arrival: ev.time,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            names: &self.names,
            effects: Effects::default(),
            stage_trace: self.stage_trace,
        };
        match &ev.kind {
            EventKind::Start => actor.on_start(&mut ctx),
            EventKind::Timer { tag } => actor.on_timer(&mut ctx, *tag),
            EventKind::Deliver { packet } => actor.on_packet(&mut ctx, packet.clone()),
        }
        let effects = ctx.effects;
        self.actors[ev.node.index()] = Some(actor);

        if let Some(trace) = self.trace.as_mut() {
            for kind in &effects.stage_events {
                trace.push(TraceEntry {
                    time: ev.time,
                    node: ev.node,
                    kind: format!("stage:{kind}"),
                });
            }
        }

        // CPU accounting: the handler occupies the node for its declared
        // work; all effects materialize at the completion instant.
        let (_start, completion) = self.cpus[ev.node.index()].schedule(ev.time, effects.work);

        for (name, t0) in effects.latencies {
            self.metrics
                .record_latency(&name, completion.saturating_since(t0));
        }
        for (delay, tag) in effects.timers_rel {
            self.push_event(completion + delay, ev.node, EventKind::Timer { tag });
        }
        for (at, tag) in effects.timers_abs {
            let fire = if at > completion { at } else { completion };
            self.push_event(fire, ev.node, EventKind::Timer { tag });
        }
        for (dst, port, payload) in effects.sends {
            debug_assert!(dst.index() < self.names.len(), "send to unknown node {dst}");
            if self.blocked_links.contains(&(ev.node, dst)) {
                self.metrics.incr("link_blocked_drops");
                continue;
            }
            let arrival = match self.wlan.transmit(completion, payload.len(), &mut self.rng) {
                TxOutcome::Delivered(t) => t,
                TxOutcome::Lost => continue,
            };
            let packet = Packet {
                src: ev.node,
                dst,
                port,
                payload,
            };
            self.push_event(arrival, dst, EventKind::Deliver { packet });
        }
    }
}

impl core::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("nodes", &self.names)
            .field("pending_events", &self.queue.len())
            .field("processed", &self.processed)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Work;

    /// Emits `count` packets to a peer at a fixed interval.
    struct Emitter {
        peer: &'static str,
        interval: SimDuration,
        count: u64,
        sent: u64,
    }

    impl Actor for Emitter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer_after(self.interval, 0);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
            if self.sent < self.count {
                let peer = ctx.lookup(self.peer).expect("peer registered");
                let t0 = ctx.now();
                ctx.send(peer, 9, t0.as_nanos().to_be_bytes().to_vec());
                self.sent += 1;
                ctx.set_timer_after(self.interval, 0);
            }
        }
    }

    /// Counts received packets and records their one-way latency.
    #[derive(Default)]
    struct Sink {
        received: u64,
        work: Work,
    }

    impl Actor for Sink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
            self.received += 1;
            ctx.consume(self.work);
            let nanos = u64::from_be_bytes(packet.payload[..8].try_into().expect("8-byte stamp"));
            ctx.record_latency_since("oneway", SimTime::from_nanos(nanos));
            ctx.metrics().incr("received");
        }
    }

    fn ideal_sim(seed: u64) -> Simulation {
        Simulation::with_wlan(WlanConfig::ideal(), seed)
    }

    #[test]
    fn packets_flow_and_latency_is_recorded() {
        let mut sim = ideal_sim(1);
        sim.add_node(
            "src",
            CpuProfile::RASPBERRY_PI_2,
            Box::new(Emitter {
                peer: "dst",
                interval: SimDuration::from_millis(10),
                count: 5,
                sent: 0,
            }),
        );
        let dst = sim.add_node("dst", CpuProfile::RASPBERRY_PI_2, Box::new(Sink::default()));
        sim.run_to_completion();
        let sink: &Sink = sim.actor_as(dst).expect("sink present");
        assert_eq!(sink.received, 5);
        let sum = sim.metrics().latency_summary("oneway");
        assert_eq!(sum.count, 5);
        assert!(
            sum.mean_ms < 1.0,
            "ideal path is sub-millisecond, got {}",
            sum.mean_ms
        );
    }

    #[test]
    fn cpu_backlog_inflates_latency() {
        // Sink takes 30 ms per packet but packets arrive every 10 ms:
        // the queue grows and so does the recorded latency.
        let mut sim = ideal_sim(2);
        sim.add_node(
            "src",
            CpuProfile::RASPBERRY_PI_2,
            Box::new(Emitter {
                peer: "dst",
                interval: SimDuration::from_millis(10),
                count: 10,
                sent: 0,
            }),
        );
        sim.add_node(
            "dst",
            CpuProfile::RASPBERRY_PI_2,
            Box::new(Sink {
                received: 0,
                work: Work::from_ref_millis(30.0),
            }),
        );
        sim.run_to_completion();
        let sum = sim.metrics().latency_summary("oneway");
        assert_eq!(sum.count, 10);
        // Last packet waits behind nine 30 ms jobs that arrived 10 ms apart.
        assert!(
            sum.max_ms > 150.0,
            "expected overload growth, got {}",
            sum.max_ms
        );
        assert!(sum.max_ms > sum.mean_ms);
    }

    #[test]
    fn identical_seeds_produce_identical_traces() {
        let run = |seed: u64| {
            let mut sim = Simulation::new(seed);
            sim.enable_trace();
            sim.add_node(
                "src",
                CpuProfile::RASPBERRY_PI_2,
                Box::new(Emitter {
                    peer: "dst",
                    interval: SimDuration::from_millis(7),
                    count: 50,
                    sent: 0,
                }),
            );
            sim.add_node("dst", CpuProfile::RASPBERRY_PI_2, Box::new(Sink::default()));
            sim.run_to_completion();
            sim.take_trace().digest()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn down_node_drops_events() {
        let mut sim = ideal_sim(3);
        sim.add_node(
            "src",
            CpuProfile::RASPBERRY_PI_2,
            Box::new(Emitter {
                peer: "dst",
                interval: SimDuration::from_millis(10),
                count: 5,
                sent: 0,
            }),
        );
        let dst = sim.add_node("dst", CpuProfile::RASPBERRY_PI_2, Box::new(Sink::default()));
        sim.set_node_up(dst, false);
        sim.run_to_completion();
        assert_eq!(sim.metrics().counter("received"), 0);
        let sink: &Sink = sim.actor_as(dst).expect("sink present");
        assert_eq!(sink.received, 0);
    }

    #[test]
    fn run_until_respects_limit() {
        let mut sim = ideal_sim(4);
        sim.add_node(
            "src",
            CpuProfile::RASPBERRY_PI_2,
            Box::new(Emitter {
                peer: "dst",
                interval: SimDuration::from_millis(10),
                count: 100,
                sent: 0,
            }),
        );
        sim.add_node("dst", CpuProfile::RASPBERRY_PI_2, Box::new(Sink::default()));
        sim.run_until(SimTime::from_millis(35));
        assert_eq!(sim.now(), SimTime::from_millis(35));
        let received = sim.metrics().counter("received");
        assert!((2..=4).contains(&received), "received {received}");
        // Continue to completion: everything arrives.
        sim.run_to_completion();
        assert_eq!(sim.metrics().counter("received"), 100);
    }

    #[test]
    fn inject_packet_reaches_target() {
        let mut sim = ideal_sim(5);
        let dst = sim.add_node("dst", CpuProfile::RASPBERRY_PI_2, Box::new(Sink::default()));
        sim.inject_packet(Packet {
            src: dst,
            dst,
            port: 9,
            payload: 0u64.to_be_bytes().to_vec().into(),
        });
        sim.run_to_completion();
        assert_eq!(sim.metrics().counter("received"), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_rejected() {
        let mut sim = ideal_sim(6);
        sim.add_node("a", CpuProfile::RASPBERRY_PI_2, Box::new(Sink::default()));
        sim.add_node("a", CpuProfile::RASPBERRY_PI_2, Box::new(Sink::default()));
    }

    #[test]
    fn actor_downcast_honours_type() {
        let mut sim = ideal_sim(7);
        let id = sim.add_node("dst", CpuProfile::RASPBERRY_PI_2, Box::new(Sink::default()));
        assert!(sim.actor_as::<Sink>(id).is_some());
        assert!(sim.actor_as::<Emitter>(id).is_none());
        assert!(sim.actor_as_mut::<Sink>(id).is_some());
    }

    #[test]
    fn backlog_limit_sheds_deliveries() {
        let mut sim = ideal_sim(10);
        sim.add_node(
            "src",
            CpuProfile::RASPBERRY_PI_2,
            Box::new(Emitter {
                peer: "dst",
                interval: SimDuration::from_millis(10),
                count: 50,
                sent: 0,
            }),
        );
        // 30 ms of work per 10 ms arrival: unbounded backlog would grow.
        let dst = sim.add_node(
            "dst",
            CpuProfile::RASPBERRY_PI_2,
            Box::new(Sink {
                received: 0,
                work: Work::from_ref_millis(30.0),
            }),
        );
        sim.set_backlog_limit(dst, Some(SimDuration::from_millis(100)));
        sim.run_to_completion();
        let dropped = sim.metrics().counter("backlog_dropped");
        assert!(dropped > 10, "expected shedding, dropped {dropped}");
        // Delay is bounded near the limit plus one service time.
        let sum = sim.metrics().latency_summary("oneway");
        assert!(
            sum.max_ms < 100.0 + 30.0 + 10.0,
            "delay not bounded: {} ms",
            sum.max_ms
        );
    }

    #[test]
    fn blocked_links_drop_only_that_direction() {
        let mut sim = ideal_sim(11);
        let src = sim.add_node(
            "src",
            CpuProfile::RASPBERRY_PI_2,
            Box::new(Emitter {
                peer: "dst",
                interval: SimDuration::from_millis(10),
                count: 10,
                sent: 0,
            }),
        );
        let dst = sim.add_node("dst", CpuProfile::RASPBERRY_PI_2, Box::new(Sink::default()));
        sim.set_link_blocked(src, dst, true);
        sim.run_to_completion();
        assert_eq!(sim.metrics().counter("received"), 0);
        assert_eq!(sim.metrics().counter("link_blocked_drops"), 10);
        // Heal and emit again via a fresh emitter.
        sim.set_link_blocked(src, dst, false);
        sim.add_node(
            "src2",
            CpuProfile::RASPBERRY_PI_2,
            Box::new(Emitter {
                peer: "dst",
                interval: SimDuration::from_millis(10),
                count: 3,
                sent: 0,
            }),
        );
        sim.run_to_completion();
        assert_eq!(sim.metrics().counter("received"), 3);
    }

    #[test]
    fn restart_reschedules_start() {
        let mut sim = ideal_sim(12);
        let src = sim.add_node(
            "src",
            CpuProfile::RASPBERRY_PI_2,
            Box::new(Emitter {
                peer: "dst",
                interval: SimDuration::from_millis(10),
                count: 1000,
                sent: 0,
            }),
        );
        sim.add_node("dst", CpuProfile::RASPBERRY_PI_2, Box::new(Sink::default()));
        sim.run_until(SimTime::from_millis(55));
        let before = sim.metrics().counter("received");
        sim.set_node_up(src, false);
        sim.run_until(SimTime::from_millis(200));
        assert_eq!(
            sim.metrics().counter("received"),
            before,
            "down node is silent"
        );
        sim.restart_node(src);
        sim.run_until(SimTime::from_millis(300));
        assert!(
            sim.metrics().counter("received") > before,
            "restart must resume the emitter (on_start re-arms its timer)"
        );
    }

    #[test]
    #[should_panic(expected = "restart_node on a running node")]
    fn restart_of_running_node_is_rejected() {
        let mut sim = ideal_sim(13);
        let id = sim.add_node("a", CpuProfile::RASPBERRY_PI_2, Box::new(Sink::default()));
        sim.restart_node(id);
    }

    #[test]
    fn node_lookup_roundtrip() {
        let mut sim = ideal_sim(8);
        let a = sim.add_node(
            "alpha",
            CpuProfile::RASPBERRY_PI_2,
            Box::new(Sink::default()),
        );
        assert_eq!(sim.node_id("alpha"), Some(a));
        assert_eq!(sim.node_name(a), Some("alpha"));
        assert_eq!(sim.node_id("missing"), None);
        assert_eq!(sim.node_count(), 1);
    }
}
