//! Virtual time primitives.
//!
//! The simulator keeps its own clock, independent of the wall clock, so that
//! every run is deterministic and can be replayed bit-for-bit. Time is stored
//! as unsigned nanoseconds since simulation start.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is ordered, cheap to copy, and saturates at the representable
/// maximum instead of overflowing.
///
/// ```
/// use ifot_netsim::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// ```
/// use ifot_netsim::time::SimDuration;
///
/// let d = SimDuration::from_micros(1_500);
/// assert_eq!(d.as_millis_f64(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Builds an instant from microseconds since simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros.saturating_mul(1_000))
    }

    /// Builds an instant from milliseconds since simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis.saturating_mul(1_000_000))
    }

    /// Builds an instant from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs.saturating_mul(1_000_000_000))
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Milliseconds since simulation start as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// The duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier <= self,
            "SimTime::since called with a later instant ({earlier:?} > {self:?})"
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros.saturating_mul(1_000))
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis.saturating_mul(1_000_000))
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(1_000_000_000))
    }

    /// Builds a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1.0e9).round() as u64)
    }

    /// Builds a duration from fractional milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis_f64(millis: f64) -> Self {
        assert!(
            millis.is_finite() && millis >= 0.0,
            "duration milliseconds must be finite and non-negative, got {millis}"
        );
        SimDuration((millis * 1.0e6).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// Saturating duration addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Multiplies the duration by an integer factor, saturating.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales the duration by a non-negative float factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        let d = t - SimTime::from_millis(5);
        assert_eq!(d.as_millis(), 10);
    }

    #[test]
    fn saturating_subtraction_clamps_to_zero() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(9);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_millis(), 8);
    }

    #[test]
    fn float_constructors_round() {
        assert_eq!(SimDuration::from_secs_f64(0.001).as_millis(), 1);
        assert_eq!(SimDuration::from_millis_f64(2.5).as_micros(), 2_500);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_millis(10).mul_f64(2.5);
        assert_eq!(d.as_millis(), 25);
        assert_eq!(
            SimDuration::from_millis(10).saturating_mul(3).as_millis(),
            30
        );
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert!(!format!("{}", SimTime::from_millis(1)).is_empty());
        assert!(!format!("{:?}", SimDuration::from_millis(1)).is_empty());
    }

    #[test]
    fn add_assign_advances_clock() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_secs(1);
        assert_eq!(t.as_secs_f64(), 1.0);
        let mut d = SimDuration::from_millis(1);
        d += SimDuration::from_millis(2);
        assert_eq!(d.as_millis(), 3);
    }

    #[test]
    fn time_saturates_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }
}
