//! Event tracing for determinism checks and debugging.

use core::fmt;

use crate::actor::NodeId;
use crate::time::SimTime;

/// One processed simulation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Event arrival time.
    pub time: SimTime,
    /// Node the event targeted.
    pub node: NodeId,
    /// Event kind label, e.g. `start`, `timer(3)`, `packet(1883, 42B)`.
    pub kind: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.time, self.node, self.kind)
    }
}

/// A recorded event sequence; comparable across runs to assert determinism.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// The recorded entries in processing order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A short stable digest of the trace (FNV-1a over the rendered
    /// entries), handy for cross-run determinism assertions.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for e in &self.entries {
            for b in format!("{e}").bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ms: u64, node: u32, kind: &str) -> TraceEntry {
        TraceEntry {
            time: SimTime::from_millis(ms),
            node: NodeId(node),
            kind: kind.to_owned(),
        }
    }

    #[test]
    fn equal_traces_have_equal_digests() {
        let mut a = Trace::new();
        let mut b = Trace::new();
        for t in [entry(1, 0, "start"), entry(2, 1, "timer(7)")] {
            a.push(t.clone());
            b.push(t);
        }
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_traces_have_different_digests() {
        let mut a = Trace::new();
        a.push(entry(1, 0, "start"));
        let mut b = Trace::new();
        b.push(entry(1, 1, "start"));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn display_is_nonempty() {
        let e = entry(3, 2, "packet(1883, 10B)");
        assert!(format!("{e}").contains("node#2"));
        assert!(Trace::new().is_empty());
    }
}
