//! Shared-medium wireless LAN model.
//!
//! The paper's testbed (Fig. 7) connects six Raspberry Pi modules and one
//! management laptop to a single wireless LAN. The model captures the three
//! properties of that medium which shape the measured latency:
//!
//! 1. **Serialized airtime** — only one frame occupies the channel at a
//!    time; per-frame airtime is MAC/PHY overhead plus payload bits over the
//!    effective bitrate. Under load this queues frames (contention).
//! 2. **Heavy-tailed jitter** — Wi-Fi occasionally stalls for tens to
//!    hundreds of milliseconds (retransmissions, co-channel interference).
//!    This is what makes the paper's *maximum* delays (~350 ms at 5 Hz) far
//!    exceed the averages (~59 ms). Modelled as a Pareto spike with small
//!    probability, capped.
//! 3. **Loss** — frames are occasionally dropped; reliability above this is
//!    the transport/application's job (e.g. MQTT QoS 1 retransmission).

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Static configuration of the wireless medium.
#[derive(Debug, Clone, PartialEq)]
pub struct WlanConfig {
    /// Effective application-layer bitrate in bits per second.
    pub bitrate_bps: f64,
    /// Fixed per-frame channel occupation (preamble, MAC overhead, ACK).
    pub per_packet_overhead: SimDuration,
    /// Propagation delay (speed of light; negligible indoors but modelled).
    pub propagation: SimDuration,
    /// Mean of the exponential per-frame jitter.
    pub jitter_mean: SimDuration,
    /// Probability that a frame suffers a heavy-tail latency spike.
    pub spike_prob: f64,
    /// Pareto scale (minimum) of a spike.
    pub spike_min: SimDuration,
    /// Pareto shape of a spike; smaller means heavier tail.
    pub spike_alpha: f64,
    /// Upper bound applied to a spike.
    pub spike_cap: SimDuration,
    /// Probability that a frame is lost outright.
    pub loss_prob: f64,
}

impl WlanConfig {
    /// The calibration used for the paper testbed reproduction: 802.11n-era
    /// link shared by seven stations, ~24 Mbit/s effective.
    pub fn paper_testbed() -> Self {
        WlanConfig {
            bitrate_bps: 24.0e6,
            per_packet_overhead: SimDuration::from_micros(1000),
            propagation: SimDuration::from_micros(1),
            jitter_mean: SimDuration::from_micros(1500),
            spike_prob: 0.012,
            spike_min: SimDuration::from_millis(40),
            spike_alpha: 1.7,
            spike_cap: SimDuration::from_millis(320),
            loss_prob: 0.004,
        }
    }

    /// An idealized lossless, jitter-free medium — useful in unit tests
    /// where deterministic single-path latencies are wanted.
    pub fn ideal() -> Self {
        WlanConfig {
            bitrate_bps: 100.0e6,
            per_packet_overhead: SimDuration::from_micros(100),
            propagation: SimDuration::from_micros(1),
            jitter_mean: SimDuration::ZERO,
            spike_prob: 0.0,
            spike_min: SimDuration::from_millis(1),
            spike_alpha: 2.0,
            spike_cap: SimDuration::ZERO,
            loss_prob: 0.0,
        }
    }

    /// A WAN uplink profile (to a simulated cloud): higher base latency,
    /// moderate jitter. Used by the Fig. 1 cloud-vs-local comparison.
    pub fn wan_uplink() -> Self {
        WlanConfig {
            bitrate_bps: 10.0e6,
            per_packet_overhead: SimDuration::from_micros(200),
            propagation: SimDuration::from_millis(25),
            jitter_mean: SimDuration::from_millis(8),
            spike_prob: 0.02,
            spike_min: SimDuration::from_millis(60),
            spike_alpha: 1.5,
            spike_cap: SimDuration::from_millis(800),
            loss_prob: 0.01,
        }
    }

    /// Channel occupation time for a frame carrying `bytes` of payload.
    pub fn airtime(&self, bytes: usize) -> SimDuration {
        let tx = SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bitrate_bps);
        self.per_packet_overhead + tx
    }
}

impl Default for WlanConfig {
    fn default() -> Self {
        WlanConfig::paper_testbed()
    }
}

/// Aggregate channel statistics, for utilization reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WlanStats {
    /// Frames offered to the channel.
    pub frames: u64,
    /// Frames dropped by the loss process.
    pub lost: u64,
    /// Payload bytes carried (including lost frames' airtime).
    pub bytes: u64,
    /// Total channel busy time in nanoseconds.
    pub busy_nanos: u64,
}

/// Runtime state of the shared medium.
#[derive(Debug, Clone)]
pub struct WlanState {
    config: WlanConfig,
    air_free_at: SimTime,
    stats: WlanStats,
}

/// Outcome of offering one frame to the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// Frame will arrive at the receiver at the given instant.
    Delivered(SimTime),
    /// Frame was lost after occupying the channel.
    Lost,
}

impl WlanState {
    /// Creates an idle channel.
    pub fn new(config: WlanConfig) -> Self {
        WlanState {
            config,
            air_free_at: SimTime::ZERO,
            stats: WlanStats::default(),
        }
    }

    /// The channel configuration.
    pub fn config(&self) -> &WlanConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> WlanStats {
        self.stats
    }

    /// Channel utilization in `[0, 1]` over the horizon `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.as_nanos() == 0 {
            0.0
        } else {
            (self.stats.busy_nanos as f64 / now.as_nanos() as f64).min(1.0)
        }
    }

    /// Offers a frame of `bytes` payload to the channel at `now`.
    ///
    /// The frame waits for the channel, occupies it for its airtime, then
    /// either arrives (after propagation and jitter) or is lost.
    pub fn transmit(&mut self, now: SimTime, bytes: usize, rng: &mut SimRng) -> TxOutcome {
        let start = if now > self.air_free_at {
            now
        } else {
            self.air_free_at
        };
        let airtime = self.config.airtime(bytes);
        self.air_free_at = start + airtime;
        self.stats.frames += 1;
        self.stats.bytes += bytes as u64;
        self.stats.busy_nanos += airtime.as_nanos();

        if rng.chance(self.config.loss_prob) {
            self.stats.lost += 1;
            return TxOutcome::Lost;
        }

        let mut arrival = start + airtime + self.config.propagation;
        arrival += rng.exp_duration(self.config.jitter_mean);
        if rng.chance(self.config.spike_prob) {
            let spike_ms = rng
                .pareto(
                    self.config.spike_min.as_millis_f64().max(1e-9),
                    self.config.spike_alpha,
                )
                .min(self.config.spike_cap.as_millis_f64());
            arrival += SimDuration::from_millis_f64(spike_ms.max(0.0));
        }
        TxOutcome::Delivered(arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(99)
    }

    #[test]
    fn airtime_scales_with_size() {
        let cfg = WlanConfig::ideal();
        let small = cfg.airtime(32);
        let big = cfg.airtime(32_000);
        assert!(big > small);
        // 32 bytes at 100 Mbit/s is ~2.56 us plus 100 us overhead.
        assert_eq!(small.as_micros(), 102);
    }

    #[test]
    fn ideal_channel_is_deterministic() {
        let mut w = WlanState::new(WlanConfig::ideal());
        let mut r = rng();
        match w.transmit(SimTime::from_millis(10), 32, &mut r) {
            TxOutcome::Delivered(t) => {
                assert_eq!(t.as_micros(), 10_000 + 102 + 1);
            }
            TxOutcome::Lost => panic!("ideal channel never loses"),
        }
    }

    #[test]
    fn channel_serializes_back_to_back_frames() {
        let mut w = WlanState::new(WlanConfig::ideal());
        let mut r = rng();
        let t0 = SimTime::ZERO;
        let a1 = match w.transmit(t0, 1000, &mut r) {
            TxOutcome::Delivered(t) => t,
            TxOutcome::Lost => unreachable!(),
        };
        let a2 = match w.transmit(t0, 1000, &mut r) {
            TxOutcome::Delivered(t) => t,
            TxOutcome::Lost => unreachable!(),
        };
        // Second frame waits for the first frame's airtime.
        assert!(a2 > a1);
        let airtime = WlanConfig::ideal().airtime(1000);
        assert_eq!((a2 - a1).as_nanos(), airtime.as_nanos());
    }

    #[test]
    fn utilization_grows_with_traffic() {
        let mut w = WlanState::new(WlanConfig::ideal());
        let mut r = rng();
        for _ in 0..100 {
            let _ = w.transmit(SimTime::ZERO, 1500, &mut r);
        }
        assert!(w.utilization(SimTime::from_millis(100)) > 0.0);
        assert!(w.utilization(SimTime::from_millis(100)) <= 1.0);
        assert_eq!(w.stats().frames, 100);
        assert_eq!(w.stats().lost, 0);
    }

    #[test]
    fn lossy_channel_loses_roughly_at_rate() {
        let mut cfg = WlanConfig::ideal();
        cfg.loss_prob = 0.2;
        let mut w = WlanState::new(cfg);
        let mut r = rng();
        let n = 10_000;
        for _ in 0..n {
            let _ = w.transmit(SimTime::ZERO, 100, &mut r);
        }
        let ratio = w.stats().lost as f64 / n as f64;
        assert!((ratio - 0.2).abs() < 0.02, "loss ratio {ratio}");
    }

    #[test]
    fn spikes_are_capped() {
        let mut cfg = WlanConfig::ideal();
        cfg.spike_prob = 1.0;
        cfg.spike_cap = SimDuration::from_millis(50);
        cfg.spike_min = SimDuration::from_millis(10);
        let mut w = WlanState::new(cfg.clone());
        let mut r = rng();
        for _ in 0..1000 {
            if let TxOutcome::Delivered(t) = w.transmit(SimTime::ZERO, 10, &mut r) {
                // Arrival cannot exceed queueing + airtime + cap + prop.
                let bound = w.air_free_at + cfg.spike_cap + cfg.propagation;
                assert!(t <= bound, "arrival {t:?} beyond bound {bound:?}");
            }
        }
    }

    #[test]
    fn paper_testbed_has_heavy_tail() {
        let mut w = WlanState::new(WlanConfig::paper_testbed());
        let mut r = rng();
        let mut delays: Vec<f64> = Vec::new();
        for i in 0..20_000u64 {
            // Sparse traffic: channel idle each time.
            let now = SimTime::from_millis(i * 10);
            if let TxOutcome::Delivered(t) = w.transmit(now, 32, &mut r) {
                delays.push((t - now).as_millis_f64());
            }
        }
        let mean = delays.iter().sum::<f64>() / delays.len() as f64;
        let max = delays.iter().cloned().fold(0.0, f64::max);
        assert!(mean < 10.0, "sparse mean should be a few ms, got {mean}");
        assert!(max > 40.0, "tail should reach spikes, got {max}");
    }
}
