//! Task assignment — the IFoT *Task assignment class*.
//!
//! Distributes the tasks of a split recipe onto neuron modules. Three
//! strategies are provided (and compared in the ablation benches):
//!
//! * [`RoundRobin`] — rotate through modules, skipping incapable ones.
//! * [`CapabilityAware`] — pin capability-bound tasks (sensing,
//!   actuation) to capable modules; spread the rest round-robin.
//! * [`LoadAware`] — like capability-aware, but place each task on the
//!   capable module with the least accumulated nominal cost, weighted by
//!   module speed.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::error::AssignError;
use crate::model::Recipe;

/// Description of a neuron module available for assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleInfo {
    /// Module name (unique).
    pub name: String,
    /// Relative CPU speed (1.0 = reference Raspberry Pi 2).
    pub speed: f64,
    /// Capabilities offered, e.g. `sensor:accel`, `actuator:alert`.
    pub capabilities: BTreeSet<String>,
}

impl ModuleInfo {
    /// Creates a module with the given name and speed and no special
    /// capabilities.
    pub fn new(name: impl Into<String>, speed: f64) -> Self {
        ModuleInfo {
            name: name.into(),
            speed,
            capabilities: BTreeSet::new(),
        }
    }

    /// Adds a capability (builder style).
    pub fn with_capability(mut self, cap: impl Into<String>) -> Self {
        self.capabilities.insert(cap.into());
        self
    }

    /// Whether the module offers `cap`.
    pub fn has_capability(&self, cap: &str) -> bool {
        self.capabilities.contains(cap)
    }
}

/// The result of an assignment: task id → module name.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Assignment {
    map: BTreeMap<String, String>,
}

impl Assignment {
    /// The module a task was placed on.
    pub fn module_of(&self, task_id: &str) -> Option<&str> {
        self.map.get(task_id).map(String::as_str)
    }

    /// All tasks placed on `module`.
    pub fn tasks_on(&self, module: &str) -> Vec<&str> {
        self.map
            .iter()
            .filter(|(_, m)| m.as_str() == module)
            .map(|(t, _)| t.as_str())
            .collect()
    }

    /// Iterates over `(task, module)` pairs in task order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.map.iter().map(|(t, m)| (t.as_str(), m.as_str()))
    }

    /// Number of placed tasks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing was placed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A placement policy.
pub trait AssignmentStrategy {
    /// Places every task of `recipe` onto one of `modules`.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError`] if `modules` is empty or a task's required
    /// capability is offered by no module.
    fn assign(&self, recipe: &Recipe, modules: &[ModuleInfo]) -> Result<Assignment, AssignError>;

    /// Picks distinct host modules for the sequence shards of a
    /// `replicas = N` task. Returns up to `replicas` module names —
    /// fewer when too few capable modules exist (callers decide whether
    /// that is an error).
    ///
    /// The default routes replicas through the same rules as `assign`:
    /// only capable modules are eligible, the anchor module the
    /// assignment chose hosts the first shard, and every shard charges
    /// `nominal / replicas` speed-normalized cost on top of the load
    /// the rest of the assignment already put on each module — so extra
    /// replicas prefer idle modules instead of whoever sits next to the
    /// anchor in declaration order.
    fn place_replicas(
        &self,
        recipe: &Recipe,
        assignment: &Assignment,
        task_id: &str,
        modules: &[ModuleInfo],
        replicas: u64,
    ) -> Vec<String> {
        let Some(task) = recipe.task(task_id) else {
            return Vec::new();
        };
        let cap = task.kind.required_capability();
        let candidates = capable(modules, cap.as_deref());
        if candidates.is_empty() {
            return Vec::new();
        }
        // Load each module already carries from the rest of the recipe
        // (excluding the replicated task itself — its cost is re-charged
        // shard by shard below).
        let mut load: BTreeMap<&str, f64> =
            modules.iter().map(|m| (m.name.as_str(), 0.0)).collect();
        for (t, m) in assignment.iter() {
            if t == task_id {
                continue;
            }
            let cost = recipe.task(t).map(|t| t.kind.nominal_cost()).unwrap_or(0.0);
            let speed = modules
                .iter()
                .find(|module| module.name == m)
                .map(|module| module.speed.max(1e-9))
                .unwrap_or(1.0);
            if let Some(l) = load.get_mut(m) {
                *l += cost / speed;
            }
        }
        let shard_cost = task.kind.nominal_cost() / replicas.max(1) as f64;
        let mut hosts: Vec<String> = Vec::new();
        // The anchor the assignment picked keeps shard 0.
        if let Some(anchor) = assignment.module_of(task_id) {
            if let Some(m) = candidates.iter().find(|m| m.name == anchor) {
                *load.get_mut(anchor).expect("known module") += shard_cost / m.speed.max(1e-9);
                hosts.push(anchor.to_owned());
            }
        }
        while (hosts.len() as u64) < replicas {
            let Some(m) = candidates
                .iter()
                .filter(|m| !hosts.iter().any(|h| h == &m.name))
                .min_by(|a, b| {
                    let la = load[a.name.as_str()];
                    let lb = load[b.name.as_str()];
                    la.partial_cmp(&lb).expect("finite loads")
                })
            else {
                break; // fewer capable modules than replicas
            };
            *load.get_mut(m.name.as_str()).expect("known module") += shard_cost / m.speed.max(1e-9);
            hosts.push(m.name.clone());
        }
        hosts
    }

    /// A short strategy name for reports.
    fn name(&self) -> &'static str;
}

fn capable<'a>(modules: &'a [ModuleInfo], capability: Option<&str>) -> Vec<&'a ModuleInfo> {
    match capability {
        None => modules.iter().collect(),
        Some(cap) => modules.iter().filter(|m| m.has_capability(cap)).collect(),
    }
}

fn place(
    recipe: &Recipe,
    modules: &[ModuleInfo],
    mut pick: impl FnMut(&[&ModuleInfo], f64) -> usize,
) -> Result<Assignment, AssignError> {
    if modules.is_empty() {
        return Err(AssignError::NoModules);
    }
    let mut map = BTreeMap::new();
    // Topological order so upstream tasks are placed before downstream —
    // strategies may use that ordering for locality heuristics.
    for id in recipe.topo_order() {
        let task = recipe.task(id).expect("topo order yields known tasks");
        let cap = task.kind.required_capability();
        let candidates = capable(modules, cap.as_deref());
        if candidates.is_empty() {
            return Err(AssignError::NoCapableModule {
                task: id.to_owned(),
                capability: cap.unwrap_or_default(),
            });
        }
        let idx = pick(&candidates, task.kind.nominal_cost());
        map.insert(id.to_owned(), candidates[idx].name.clone());
    }
    Ok(Assignment { map })
}

/// Rotates through capable modules.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl AssignmentStrategy for RoundRobin {
    fn assign(&self, recipe: &Recipe, modules: &[ModuleInfo]) -> Result<Assignment, AssignError> {
        let mut cursor = 0usize;
        place(recipe, modules, |candidates, _| {
            let idx = cursor % candidates.len();
            cursor += 1;
            idx
        })
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Pins capability-bound tasks; spreads free tasks over the *least
/// recently used* modules (round-robin over the full set, restricted to
/// candidates).
#[derive(Debug, Clone, Copy, Default)]
pub struct CapabilityAware;

impl AssignmentStrategy for CapabilityAware {
    fn assign(&self, recipe: &Recipe, modules: &[ModuleInfo]) -> Result<Assignment, AssignError> {
        let mut usage: BTreeMap<&str, usize> =
            modules.iter().map(|m| (m.name.as_str(), 0)).collect();
        place(recipe, modules, |candidates, _| {
            // Least-used candidate; ties broken by candidate order.
            let (idx, _) = candidates
                .iter()
                .enumerate()
                .min_by_key(|(i, m)| (usage[m.name.as_str()], *i))
                .expect("candidates non-empty");
            *usage
                .get_mut(candidates[idx].name.as_str())
                .expect("known module") += 1;
            idx
        })
    }

    fn name(&self) -> &'static str {
        "capability-aware"
    }
}

/// Places each task on the capable module with the least accumulated
/// speed-normalized cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadAware;

impl AssignmentStrategy for LoadAware {
    fn assign(&self, recipe: &Recipe, modules: &[ModuleInfo]) -> Result<Assignment, AssignError> {
        let mut load: BTreeMap<&str, f64> =
            modules.iter().map(|m| (m.name.as_str(), 0.0)).collect();
        place(recipe, modules, |candidates, cost| {
            let (idx, _) = candidates
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let la = load[a.name.as_str()];
                    let lb = load[b.name.as_str()];
                    la.partial_cmp(&lb).expect("finite loads")
                })
                .expect("candidates non-empty");
            let m = candidates[idx];
            *load.get_mut(m.name.as_str()).expect("known module") += cost / m.speed.max(1e-9);
            idx
        })
    }

    fn name(&self) -> &'static str {
        "load-aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Recipe, Task, TaskKind};

    fn modules() -> Vec<ModuleInfo> {
        vec![
            ModuleInfo::new("a", 1.0).with_capability("sensor:accel"),
            ModuleInfo::new("b", 1.0).with_capability("sensor:sound"),
            ModuleInfo::new("c", 2.0).with_capability("actuator:alert"),
            ModuleInfo::new("d", 1.0),
        ]
    }

    fn recipe() -> Recipe {
        Recipe::builder("r")
            .task(Task::new(
                "s1",
                TaskKind::Sense {
                    sensor: "accel".into(),
                    rate_hz: 10.0,
                },
            ))
            .task(Task::new(
                "s2",
                TaskKind::Sense {
                    sensor: "sound".into(),
                    rate_hz: 10.0,
                },
            ))
            .task(Task::new(
                "t",
                TaskKind::Train {
                    algorithm: "pa".into(),
                },
            ))
            .task(Task::new(
                "p",
                TaskKind::Predict {
                    algorithm: "pa".into(),
                },
            ))
            .task(Task::new(
                "act",
                TaskKind::Actuate {
                    actuator: "alert".into(),
                },
            ))
            .edge("s1", "t")
            .edge("s2", "t")
            .edge("s1", "p")
            .edge("s2", "p")
            .edge("p", "act")
            .build()
            .expect("valid")
    }

    fn check_capabilities(recipe: &Recipe, assignment: &Assignment, modules: &[ModuleInfo]) {
        for (task_id, module_name) in assignment.iter() {
            let task = recipe.task(task_id).expect("known task");
            if let Some(cap) = task.kind.required_capability() {
                let m = modules
                    .iter()
                    .find(|m| m.name == module_name)
                    .expect("known module");
                assert!(
                    m.has_capability(&cap),
                    "{task_id} on incapable {module_name}"
                );
            }
        }
    }

    #[test]
    fn all_strategies_place_every_task_respecting_capabilities() {
        let r = recipe();
        let ms = modules();
        for strategy in [
            &RoundRobin as &dyn AssignmentStrategy,
            &CapabilityAware,
            &LoadAware,
        ] {
            let a = strategy
                .assign(&r, &ms)
                .unwrap_or_else(|_| panic!("{}", strategy.name()));
            assert_eq!(a.len(), r.tasks().len(), "{}", strategy.name());
            check_capabilities(&r, &a, &ms);
        }
    }

    #[test]
    fn sensing_pinned_to_owning_module() {
        let a = CapabilityAware
            .assign(&recipe(), &modules())
            .expect("assigns");
        assert_eq!(a.module_of("s1"), Some("a"));
        assert_eq!(a.module_of("s2"), Some("b"));
        assert_eq!(a.module_of("act"), Some("c"));
    }

    #[test]
    fn missing_capability_is_an_error() {
        let ms = vec![ModuleInfo::new("only", 1.0)];
        let err = CapabilityAware
            .assign(&recipe(), &ms)
            .expect_err("no sensors");
        assert!(matches!(err, AssignError::NoCapableModule { .. }));
    }

    #[test]
    fn empty_module_list_is_an_error() {
        assert_eq!(
            RoundRobin.assign(&recipe(), &[]).expect_err("no modules"),
            AssignError::NoModules
        );
    }

    #[test]
    fn load_aware_prefers_idle_modules() {
        // Two free tasks, two unconstrained modules: they must not both
        // land on the same module.
        let r = Recipe::builder("r")
            .task(Task::new(
                "t1",
                TaskKind::Train {
                    algorithm: "pa".into(),
                },
            ))
            .task(Task::new(
                "t2",
                TaskKind::Train {
                    algorithm: "pa".into(),
                },
            ))
            .build()
            .expect("valid");
        let ms = vec![ModuleInfo::new("m1", 1.0), ModuleInfo::new("m2", 1.0)];
        let a = LoadAware.assign(&r, &ms).expect("assigns");
        assert_ne!(a.module_of("t1"), a.module_of("t2"));
    }

    #[test]
    fn load_aware_exploits_faster_modules() {
        // Three identical tasks, one module 10x faster: the fast module
        // should receive at least two of them.
        let mut builder = Recipe::builder("r");
        for i in 0..3 {
            builder = builder.task(Task::new(
                format!("t{i}"),
                TaskKind::Train {
                    algorithm: "pa".into(),
                },
            ));
        }
        let r = builder.build().expect("valid");
        let ms = vec![ModuleInfo::new("slow", 1.0), ModuleInfo::new("fast", 10.0)];
        let a = LoadAware.assign(&r, &ms).expect("assigns");
        assert!(a.tasks_on("fast").len() >= 2, "{:?}", a);
    }

    #[test]
    fn round_robin_spreads_free_tasks() {
        let r = Recipe::builder("r")
            .task(Task::new("x", TaskKind::Window { size_ms: 1 }))
            .task(Task::new("y", TaskKind::Window { size_ms: 1 }))
            .task(Task::new("z", TaskKind::Window { size_ms: 1 }))
            .build()
            .expect("valid");
        let ms = vec![ModuleInfo::new("m1", 1.0), ModuleInfo::new("m2", 1.0)];
        let a = RoundRobin.assign(&r, &ms).expect("assigns");
        assert!(!a.tasks_on("m1").is_empty());
        assert!(!a.tasks_on("m2").is_empty());
        assert!(!a.is_empty());
    }

    #[test]
    fn replica_hosts_prefer_idle_modules_over_loaded_ones() {
        // "t" (cost 10) sits on m1; the anchor of "p" keeps shard 0 and
        // the extra replica must go to idle m3, not loaded m1.
        let r = Recipe::builder("r")
            .task(Task::new(
                "t",
                TaskKind::Train {
                    algorithm: "pa".into(),
                },
            ))
            .task(Task::new(
                "p",
                TaskKind::Predict {
                    algorithm: "pa".into(),
                },
            ))
            .build()
            .expect("valid");
        let ms = vec![
            ModuleInfo::new("m1", 1.0),
            ModuleInfo::new("m2", 1.0),
            ModuleInfo::new("m3", 1.0),
        ];
        let a = LoadAware.assign(&r, &ms).expect("assigns");
        let anchor = a.module_of("p").expect("p placed").to_owned();
        let hosts = LoadAware.place_replicas(&r, &a, "p", &ms, 2);
        assert_eq!(hosts.len(), 2);
        assert_eq!(hosts[0], anchor, "anchor keeps shard 0");
        assert!(!hosts.contains(&"m1".to_owned()) || anchor == "m1");
        assert_ne!(hosts[0], hosts[1], "replica hosts are distinct");
    }

    #[test]
    fn replica_hosts_are_capability_filtered() {
        // Only two modules offer the actuator; asking for three replicas
        // returns the two capable hosts, never the incapable module.
        let r = Recipe::builder("r")
            .task(Task::new(
                "act",
                TaskKind::Actuate {
                    actuator: "alert".into(),
                },
            ))
            .build()
            .expect("valid");
        let ms = vec![
            ModuleInfo::new("m1", 1.0).with_capability("actuator:alert"),
            ModuleInfo::new("m2", 1.0),
            ModuleInfo::new("m3", 1.0).with_capability("actuator:alert"),
        ];
        let a = CapabilityAware.assign(&r, &ms).expect("assigns");
        let hosts = CapabilityAware.place_replicas(&r, &a, "act", &ms, 3);
        let mut sorted = hosts.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec!["m1".to_owned(), "m3".to_owned()]);
        assert!(CapabilityAware
            .place_replicas(&r, &a, "ghost", &ms, 2)
            .is_empty());
    }

    #[test]
    fn assignment_introspection() {
        let a = CapabilityAware
            .assign(&recipe(), &modules())
            .expect("assigns");
        assert_eq!(a.iter().count(), a.len());
        assert_eq!(a.module_of("ghost"), None);
        let json = serde_json::to_string(&a).expect("serialize");
        let back: Assignment = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, a);
    }
}
