//! The recipe DSL — a small declarative language for task graphs.
//!
//! Defining "the language to describe recipes" is listed as future work in
//! the paper's conclusion; this module implements it. Example:
//!
//! ```text
//! recipe elderly_monitoring {
//!     task accel:  sense(sensor = "accel", rate_hz = 20);
//!     task detect: anomaly(detector = "lof", threshold = 2.5);
//!     task alarm:  actuate(actuator = "alert");
//!
//!     accel -> detect -> alarm;
//! }
//! ```
//!
//! Grammar (EBNF):
//!
//! ```text
//! recipe   := "recipe" ident "{" item* "}"
//! item     := taskdecl | flowdecl
//! taskdecl := "task" ident ":" ident "(" params? ")" ";"
//! params   := param ("," param)*
//! param    := ident "=" (string | number | ident)
//! flowdecl := ident ("->" ident)+ ";"
//! ```

use std::collections::BTreeMap;

use crate::error::ParseError;
use crate::model::{Recipe, Task, TaskKind};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Number(f64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Colon,
    Semicolon,
    Comma,
    Equals,
    Arrow,
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier {s:?}"),
            Token::Str(s) => format!("string {s:?}"),
            Token::Number(n) => format!("number {n}"),
            Token::LBrace => "'{'".into(),
            Token::RBrace => "'}'".into(),
            Token::LParen => "'('".into(),
            Token::RParen => "')'".into(),
            Token::Colon => "':'".into(),
            Token::Semicolon => "';'".into(),
            Token::Comma => "','".into(),
            Token::Equals => "'='".into(),
            Token::Arrow => "'->'".into(),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(Token, usize)>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '{' => {
                chars.next();
                tokens.push((Token::LBrace, line));
            }
            '}' => {
                chars.next();
                tokens.push((Token::RBrace, line));
            }
            '(' => {
                chars.next();
                tokens.push((Token::LParen, line));
            }
            ')' => {
                chars.next();
                tokens.push((Token::RParen, line));
            }
            ':' => {
                chars.next();
                tokens.push((Token::Colon, line));
            }
            ';' => {
                chars.next();
                tokens.push((Token::Semicolon, line));
            }
            ',' => {
                chars.next();
                tokens.push((Token::Comma, line));
            }
            '=' => {
                chars.next();
                tokens.push((Token::Equals, line));
            }
            '-' => {
                chars.next();
                match chars.peek() {
                    Some('>') => {
                        chars.next();
                        tokens.push((Token::Arrow, line));
                    }
                    Some(d) if d.is_ascii_digit() => {
                        let n = lex_number(&mut chars, true, line)?;
                        tokens.push((Token::Number(n), line));
                    }
                    _ => return Err(ParseError::UnexpectedChar { line, found: '-' }),
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    if c == '"' {
                        closed = true;
                        break;
                    }
                    if c == '\n' {
                        line += 1;
                    }
                    s.push(c);
                }
                if !closed {
                    return Err(ParseError::UnterminatedString { line });
                }
                tokens.push((Token::Str(s), line));
            }
            c if c.is_ascii_digit() => {
                let n = lex_number(&mut chars, false, line)?;
                tokens.push((Token::Number(n), line));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '-' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push((Token::Ident(s), line));
            }
            found => return Err(ParseError::UnexpectedChar { line, found }),
        }
    }
    Ok(tokens)
}

fn lex_number(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    negative: bool,
    line: usize,
) -> Result<f64, ParseError> {
    let mut s = String::new();
    if negative {
        s.push('-');
    }
    while let Some(&c) = chars.peek() {
        if c.is_ascii_digit() || c == '.' {
            s.push(c);
            chars.next();
        } else {
            break;
        }
    }
    s.parse::<f64>().map_err(|_| ParseError::UnexpectedToken {
        line,
        found: s,
        expected: "a number".into(),
    })
}

#[derive(Debug, Clone, PartialEq)]
enum ParamValue {
    Str(String),
    Number(f64),
}

impl ParamValue {
    fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(s) => Some(s),
            ParamValue::Number(_) => None,
        }
    }

    fn as_number(&self) -> Option<f64> {
        match self {
            ParamValue::Number(n) => Some(*n),
            ParamValue::Str(_) => None,
        }
    }

    fn render(&self) -> String {
        match self {
            ParamValue::Str(s) => s.clone(),
            ParamValue::Number(n) => format!("{n}"),
        }
    }
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&(Token, usize)> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self, expected: &str) -> Result<(Token, usize), ParseError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| ParseError::UnexpectedEof {
                expected: expected.into(),
            })?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: Token) -> Result<usize, ParseError> {
        let (t, line) = self.next(&want.describe())?;
        if t == want {
            Ok(line)
        } else {
            Err(ParseError::UnexpectedToken {
                line,
                found: t.describe(),
                expected: want.describe(),
            })
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, usize), ParseError> {
        let (t, line) = self.next(what)?;
        match t {
            Token::Ident(s) => Ok((s, line)),
            other => Err(ParseError::UnexpectedToken {
                line,
                found: other.describe(),
                expected: what.into(),
            }),
        }
    }
}

/// Parses a recipe from DSL source.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first lexical, syntactic,
/// parameter or graph-validation problem.
///
/// ```
/// let src = r#"
///     recipe demo {
///         task s: sense(sensor = "sound", rate_hz = 10);
///         task d: anomaly(detector = "zscore", threshold = 3);
///         s -> d;
///     }
/// "#;
/// let recipe = ifot_recipe::dsl::parse(src)?;
/// assert_eq!(recipe.name(), "demo");
/// assert_eq!(recipe.tasks().len(), 2);
/// # Ok::<(), ifot_recipe::error::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Recipe, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };

    let (kw, line) = p.ident("keyword 'recipe'")?;
    if kw != "recipe" {
        return Err(ParseError::UnexpectedToken {
            line,
            found: format!("identifier {kw:?}"),
            expected: "keyword 'recipe'".into(),
        });
    }
    let (name, _) = p.ident("recipe name")?;
    p.expect(Token::LBrace)?;

    let mut builder = Recipe::builder(name);
    loop {
        match p.peek() {
            Some((Token::RBrace, _)) => {
                p.pos += 1;
                break;
            }
            Some((Token::Ident(id), _)) if id == "task" => {
                p.pos += 1;
                let (task_id, _) = p.ident("task id")?;
                p.expect(Token::Colon)?;
                let (kind_name, kind_line) = p.ident("task kind")?;
                p.expect(Token::LParen)?;
                let mut params: BTreeMap<String, ParamValue> = BTreeMap::new();
                if !matches!(p.peek(), Some((Token::RParen, _))) {
                    loop {
                        let (key, _) = p.ident("parameter name")?;
                        p.expect(Token::Equals)?;
                        let (t, vline) = p.next("parameter value")?;
                        let value = match t {
                            Token::Str(s) => ParamValue::Str(s),
                            Token::Number(n) => ParamValue::Number(n),
                            Token::Ident(s) => ParamValue::Str(s),
                            other => {
                                return Err(ParseError::UnexpectedToken {
                                    line: vline,
                                    found: other.describe(),
                                    expected: "a string, number or identifier".into(),
                                })
                            }
                        };
                        params.insert(key, value);
                        match p.next("',' or ')'")? {
                            (Token::Comma, _) => continue,
                            (Token::RParen, _) => break,
                            (other, oline) => {
                                return Err(ParseError::UnexpectedToken {
                                    line: oline,
                                    found: other.describe(),
                                    expected: "',' or ')'".into(),
                                })
                            }
                        }
                    }
                } else {
                    p.pos += 1; // consume ')'
                }
                p.expect(Token::Semicolon)?;
                let task = build_task(task_id, &kind_name, kind_line, params)?;
                builder = builder.task(task);
            }
            Some((Token::Ident(_), _)) => {
                // Flow declaration: a -> b -> c ;
                let (mut prev, _) = p.ident("task id")?;
                loop {
                    match p.next("'->' or ';'")? {
                        (Token::Arrow, _) => {
                            let (next, _) = p.ident("task id")?;
                            builder = builder.edge(prev.clone(), next.clone());
                            prev = next;
                        }
                        (Token::Semicolon, _) => break,
                        (other, line) => {
                            return Err(ParseError::UnexpectedToken {
                                line,
                                found: other.describe(),
                                expected: "'->' or ';'".into(),
                            })
                        }
                    }
                }
            }
            Some((t, line)) => {
                return Err(ParseError::UnexpectedToken {
                    line: *line,
                    found: t.describe(),
                    expected: "'task', a flow declaration, or '}'".into(),
                })
            }
            None => {
                return Err(ParseError::UnexpectedEof {
                    expected: "'}'".into(),
                })
            }
        }
    }
    builder.build().map_err(ParseError::from)
}

fn build_task(
    id: String,
    kind_name: &str,
    line: usize,
    params: BTreeMap<String, ParamValue>,
) -> Result<Task, ParseError> {
    let str_param = |params: &BTreeMap<String, ParamValue>, key: &'static str| {
        params
            .get(key)
            .ok_or(ParseError::MissingParam {
                kind: kind_name.to_owned(),
                param: key,
            })?
            .as_str()
            .map(str::to_owned)
            .ok_or(ParseError::BadParam {
                kind: kind_name.to_owned(),
                param: key,
                reason: "expected a string",
            })
    };
    let num_param = |params: &BTreeMap<String, ParamValue>, key: &'static str| {
        params
            .get(key)
            .ok_or(ParseError::MissingParam {
                kind: kind_name.to_owned(),
                param: key,
            })?
            .as_number()
            .ok_or(ParseError::BadParam {
                kind: kind_name.to_owned(),
                param: key,
                reason: "expected a number",
            })
    };

    let (kind, consumed): (TaskKind, &[&str]) = match kind_name {
        "sense" => (
            TaskKind::Sense {
                sensor: str_param(&params, "sensor")?,
                rate_hz: num_param(&params, "rate_hz")?,
            },
            &["sensor", "rate_hz"],
        ),
        "window" => (
            TaskKind::Window {
                size_ms: num_param(&params, "size_ms")? as u64,
            },
            &["size_ms"],
        ),
        "train" => (
            TaskKind::Train {
                algorithm: str_param(&params, "algorithm")?,
            },
            &["algorithm"],
        ),
        "predict" => (
            TaskKind::Predict {
                algorithm: str_param(&params, "algorithm")?,
            },
            &["algorithm"],
        ),
        "anomaly" => (
            TaskKind::DetectAnomaly {
                detector: str_param(&params, "detector")?,
                threshold: num_param(&params, "threshold")?,
            },
            &["detector", "threshold"],
        ),
        "estimate" => (
            TaskKind::Estimate {
                model: str_param(&params, "model")?,
            },
            &["model"],
        ),
        "policy" => (
            TaskKind::Policy {
                key: str_param(&params, "key")?,
                on_above: num_param(&params, "on_above")?,
                off_below: num_param(&params, "off_below")?,
                emit: str_param(&params, "emit")?,
            },
            &["key", "on_above", "off_below", "emit"],
        ),
        "actuate" => (
            TaskKind::Actuate {
                actuator: str_param(&params, "actuator")?,
            },
            &["actuator"],
        ),
        "custom" => (
            TaskKind::Custom {
                operator: str_param(&params, "operator")?,
            },
            &["operator"],
        ),
        other => {
            return Err(ParseError::UnknownKind {
                line,
                kind: other.to_owned(),
            })
        }
    };

    // Any parameter not consumed by the kind is kept as free-form extra.
    let mut task = Task::new(id, kind);
    for (k, v) in params {
        if !consumed.contains(&k.as_str()) {
            task.params.insert(k, v.render());
        }
    }
    Ok(task)
}

/// Renders a recipe back to DSL source (inverse of [`parse`] up to
/// formatting).
pub fn render(recipe: &Recipe) -> String {
    let mut out = format!("recipe {} {{\n", recipe.name());
    for t in recipe.tasks() {
        let kind = &t.kind;
        let mut args = match kind {
            TaskKind::Sense { sensor, rate_hz } => {
                format!("sense(sensor = \"{sensor}\", rate_hz = {rate_hz})")
            }
            TaskKind::Window { size_ms } => format!("window(size_ms = {size_ms})"),
            TaskKind::Train { algorithm } => format!("train(algorithm = \"{algorithm}\")"),
            TaskKind::Predict { algorithm } => {
                format!("predict(algorithm = \"{algorithm}\")")
            }
            TaskKind::DetectAnomaly {
                detector,
                threshold,
            } => format!("anomaly(detector = \"{detector}\", threshold = {threshold})"),
            TaskKind::Estimate { model } => format!("estimate(model = \"{model}\")"),
            TaskKind::Policy {
                key,
                on_above,
                off_below,
                emit,
            } => format!(
                "policy(key = \"{key}\", on_above = {on_above}, off_below = {off_below}, emit = \"{emit}\")"
            ),
            TaskKind::Actuate { actuator } => format!("actuate(actuator = \"{actuator}\")"),
            TaskKind::Custom { operator } => format!("custom(operator = \"{operator}\")"),
        };
        // Free-form extra parameters (e.g. mix_interval_ms, replicas) are
        // appended inside the argument list so render ∘ parse = identity.
        if !t.params.is_empty() {
            let extras: Vec<String> = t
                .params
                .iter()
                .map(|(k, v)| {
                    if v.parse::<f64>().is_ok() {
                        format!("{k} = {v}")
                    } else {
                        format!("{k} = \"{v}\"")
                    }
                })
                .collect();
            let insert_at = args.len() - 1; // before the closing ')'
            let has_args = !args.ends_with("()");
            let joined = if has_args {
                format!(", {}", extras.join(", "))
            } else {
                extras.join(", ")
            };
            args.insert_str(insert_at, &joined);
        }
        out.push_str(&format!("    task {}: {};\n", t.id, args));
    }
    for (from, to) in recipe.edges() {
        out.push_str(&format!("    {from} -> {to};\n"));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fig5_elderly_monitoring;

    const DEMO: &str = r#"
        # The Fig. 5 style pipeline, trimmed.
        recipe demo {
            task accel:  sense(sensor = "accel", rate_hz = 20);
            task sound:  sense(sensor = "sound", rate_hz = 20);
            task win:    window(size_ms = 100);
            task detect: anomaly(detector = "lof", threshold = 2.5);
            task alarm:  actuate(actuator = "alert");

            accel -> win;
            sound -> win;
            win -> detect -> alarm;
        }
    "#;

    #[test]
    fn parses_demo_recipe() {
        let r = parse(DEMO).expect("parses");
        assert_eq!(r.name(), "demo");
        assert_eq!(r.tasks().len(), 5);
        assert_eq!(r.edges().len(), 4);
        assert_eq!(r.roots().len(), 2);
        assert_eq!(r.leaves(), vec!["alarm"]);
        match &r.task("accel").expect("present").kind {
            TaskKind::Sense { sensor, rate_hz } => {
                assert_eq!(sensor, "accel");
                assert_eq!(*rate_hz, 20.0);
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn chained_arrows_create_all_edges() {
        let r = parse(
            "recipe c { task a: window(size_ms = 1); task b: window(size_ms = 1); \
             task d: window(size_ms = 1); a -> b -> d; }",
        )
        .expect("parses");
        assert_eq!(
            r.edges(),
            &[
                ("a".to_owned(), "b".to_owned()),
                ("b".to_owned(), "d".to_owned())
            ]
        );
    }

    #[test]
    fn extra_params_preserved() {
        let r = parse("recipe e { task t: train(algorithm = \"pa\", mix_interval_ms = 500); }")
            .expect("parses");
        assert_eq!(
            r.task("t").expect("present").params.get("mix_interval_ms"),
            Some(&"500".to_owned())
        );
    }

    #[test]
    fn missing_required_param_reported() {
        let err = parse("recipe e { task t: sense(sensor = \"x\"); }").expect_err("missing rate");
        assert_eq!(
            err,
            ParseError::MissingParam {
                kind: "sense".into(),
                param: "rate_hz"
            }
        );
    }

    #[test]
    fn wrong_param_type_reported() {
        let err = parse("recipe e { task t: sense(sensor = 5, rate_hz = 1); }")
            .expect_err("numeric sensor");
        assert!(matches!(
            err,
            ParseError::BadParam {
                param: "sensor",
                ..
            }
        ));
    }

    #[test]
    fn unknown_kind_reported_with_line() {
        let err = parse("recipe e {\n task t: teleport();\n }").expect_err("unknown kind");
        assert_eq!(
            err,
            ParseError::UnknownKind {
                line: 2,
                kind: "teleport".into()
            }
        );
    }

    #[test]
    fn syntax_errors_carry_positions() {
        assert!(matches!(
            parse("recipe e { task }"),
            Err(ParseError::UnexpectedToken { .. })
        ));
        assert!(matches!(
            parse("recipe e { task t window(); }"),
            Err(ParseError::UnexpectedToken { .. })
        ));
        assert!(matches!(
            parse("recipe e {"),
            Err(ParseError::UnexpectedEof { .. })
        ));
        assert!(matches!(
            parse("recipe e { task t: window(size_ms = \"x ); }"),
            Err(ParseError::UnterminatedString { .. })
        ));
        assert!(matches!(
            parse("recipe ! {}"),
            Err(ParseError::UnexpectedChar { .. })
        ));
    }

    #[test]
    fn graph_validation_runs_after_parse() {
        let err = parse("recipe e { task a: window(size_ms = 1); a -> ghost; }")
            .expect_err("dangling edge");
        assert!(matches!(err, ParseError::Invalid(_)));
    }

    #[test]
    fn negative_numbers_lex() {
        let r = parse("recipe e { task t: anomaly(detector = \"z\", threshold = -1.5); }")
            .expect("parses");
        match &r.task("t").expect("present").kind {
            TaskKind::DetectAnomaly { threshold, .. } => assert_eq!(*threshold, -1.5),
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let original = fig5_elderly_monitoring();
        let src = render(&original);
        let back = parse(&src).expect("rendered recipe parses");
        assert_eq!(back, original);
    }

    #[test]
    fn render_preserves_extra_params() {
        let src =
            "recipe e { task t: train(algorithm = \"pa\", mix_interval_ms = 500, tag = \"x\"); }";
        let original = parse(src).expect("parses");
        let rendered = render(&original);
        assert!(rendered.contains("mix_interval_ms = 500"), "{rendered}");
        assert!(rendered.contains("tag = \"x\""), "{rendered}");
        let back = parse(&rendered).expect("re-parses");
        assert_eq!(back, original);
    }

    #[test]
    fn empty_param_list_allowed_for_custom() {
        let err = parse("recipe e { task t: custom(); }").expect_err("operator required");
        assert!(matches!(err, ParseError::MissingParam { .. }));
    }
}
