//! Error types of the recipe crate.

use core::fmt;

/// Errors from building or parsing recipes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecipeError {
    /// The recipe name is empty.
    EmptyName,
    /// The recipe declares no tasks.
    NoTasks,
    /// A task id is empty.
    EmptyTaskId,
    /// A task id appears twice.
    DuplicateTask(String),
    /// An edge references an undeclared task.
    UnknownTask(String),
    /// An edge connects a task to itself.
    SelfLoop(String),
    /// The task graph contains a cycle.
    Cycle,
    /// JSON (de)serialization failed.
    Serde(String),
}

impl fmt::Display for RecipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecipeError::EmptyName => write!(f, "recipe name must be non-empty"),
            RecipeError::NoTasks => write!(f, "recipe declares no tasks"),
            RecipeError::EmptyTaskId => write!(f, "task id must be non-empty"),
            RecipeError::DuplicateTask(id) => write!(f, "duplicate task id {id:?}"),
            RecipeError::UnknownTask(id) => write!(f, "edge references unknown task {id:?}"),
            RecipeError::SelfLoop(id) => write!(f, "task {id:?} connects to itself"),
            RecipeError::Cycle => write!(f, "task graph contains a cycle"),
            RecipeError::Serde(msg) => write!(f, "recipe serialization failed: {msg}"),
        }
    }
}

impl std::error::Error for RecipeError {}

/// Errors from parsing the recipe DSL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Unexpected character at the given line.
    UnexpectedChar {
        /// 1-based source line.
        line: usize,
        /// The offending character.
        found: char,
    },
    /// Unterminated string literal.
    UnterminatedString {
        /// 1-based source line.
        line: usize,
    },
    /// Unexpected token.
    UnexpectedToken {
        /// 1-based source line.
        line: usize,
        /// What was found.
        found: String,
        /// What the parser wanted.
        expected: String,
    },
    /// Premature end of input.
    UnexpectedEof {
        /// What the parser wanted.
        expected: String,
    },
    /// Unknown task kind name.
    UnknownKind {
        /// 1-based source line.
        line: usize,
        /// The unknown kind.
        kind: String,
    },
    /// A required parameter is missing.
    MissingParam {
        /// The task kind.
        kind: String,
        /// The missing parameter.
        param: &'static str,
    },
    /// A parameter has the wrong type (e.g. string where number needed).
    BadParam {
        /// The task kind.
        kind: String,
        /// The parameter name.
        param: &'static str,
        /// Explanation.
        reason: &'static str,
    },
    /// The parsed graph failed recipe validation.
    Invalid(RecipeError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedChar { line, found } => {
                write!(f, "line {line}: unexpected character {found:?}")
            }
            ParseError::UnterminatedString { line } => {
                write!(f, "line {line}: unterminated string literal")
            }
            ParseError::UnexpectedToken {
                line,
                found,
                expected,
            } => write!(f, "line {line}: expected {expected}, found {found}"),
            ParseError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            ParseError::UnknownKind { line, kind } => {
                write!(f, "line {line}: unknown task kind {kind:?}")
            }
            ParseError::MissingParam { kind, param } => {
                write!(f, "task kind {kind:?} requires parameter {param:?}")
            }
            ParseError::BadParam {
                kind,
                param,
                reason,
            } => write!(f, "parameter {param:?} of {kind:?} is invalid: {reason}"),
            ParseError::Invalid(e) => write!(f, "parsed recipe is invalid: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<RecipeError> for ParseError {
    fn from(e: RecipeError) -> Self {
        ParseError::Invalid(e)
    }
}

/// Errors from task assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssignError {
    /// No module is available at all.
    NoModules,
    /// No module offers the capability a task requires.
    NoCapableModule {
        /// The task that could not be placed.
        task: String,
        /// The capability it requires.
        capability: String,
    },
}

impl fmt::Display for AssignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignError::NoModules => write!(f, "no modules available for assignment"),
            AssignError::NoCapableModule { task, capability } => {
                write!(
                    f,
                    "no module offers capability {capability:?} for task {task:?}"
                )
            }
        }
    }
}

impl std::error::Error for AssignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        let errors: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(RecipeError::Cycle),
            Box::new(RecipeError::DuplicateTask("x".into())),
            Box::new(ParseError::UnexpectedEof {
                expected: "a token".into(),
            }),
            Box::new(AssignError::NoModules),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn recipe_error_converts_to_parse_error() {
        let p: ParseError = RecipeError::Cycle.into();
        assert_eq!(p, ParseError::Invalid(RecipeError::Cycle));
    }
}
