//! # ifot-recipe — the IFoT recipe language and task allocation
//!
//! A *Recipe* (paper Fig. 5) is a configuration describing how IoT data
//! streams are processed, analysed and merged: a directed acyclic task
//! graph. This crate provides:
//!
//! * [`model`] — the validated task-graph model and its JSON interchange
//!   form,
//! * [`dsl`] — a small declarative recipe language with a hand-written
//!   lexer/parser (the paper lists defining this language as future work),
//! * [`split`](mod@split) — the *Recipe split class*: decomposition into parallel
//!   stages,
//! * [`assign`] — the *Task assignment class*: placement of tasks onto
//!   neuron modules (round-robin, capability-aware, load-aware).
//!
//! ```
//! use ifot_recipe::assign::{AssignmentStrategy, CapabilityAware, ModuleInfo};
//! use ifot_recipe::{dsl, split};
//!
//! let recipe = dsl::parse(r#"
//!     recipe demo {
//!         task s: sense(sensor = "sound", rate_hz = 10);
//!         task d: anomaly(detector = "zscore", threshold = 3);
//!         s -> d;
//!     }
//! "#)?;
//! let plan = split::split(&recipe);
//! assert_eq!(plan.depth(), 2);
//!
//! let modules = vec![
//!     ModuleInfo::new("module-a", 1.0).with_capability("sensor:sound"),
//!     ModuleInfo::new("module-b", 1.0),
//! ];
//! let assignment = CapabilityAware.assign(&recipe, &modules)?;
//! assert_eq!(assignment.module_of("s"), Some("module-a"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assign;
pub mod dsl;
pub mod error;
pub mod model;
pub mod split;

pub use assign::{
    Assignment, AssignmentStrategy, CapabilityAware, LoadAware, ModuleInfo, RoundRobin,
};
pub use error::{AssignError, ParseError, RecipeError};
pub use model::{fig5_elderly_monitoring, Recipe, RecipeBuilder, Task, TaskKind};
pub use split::{split, SplitPlan};
