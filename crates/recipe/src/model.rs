//! The recipe model: a validated task graph describing how IoT data
//! streams are processed, analysed and merged (paper Fig. 5).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use serde::{Deserialize, Serialize};

use crate::error::RecipeError;

/// What a task does. The variants cover the operations appearing in the
/// paper's scenarios: sensing, windowed aggregation, online training,
/// prediction, anomaly detection, state estimation and actuation, plus an
/// escape hatch for custom operators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Read a sensor stream at a fixed rate.
    Sense {
        /// Sensor kind slug (e.g. `accel`, `sound`).
        sensor: String,
        /// Sampling rate in Hz.
        rate_hz: f64,
    },
    /// Aggregate upstream samples into windows.
    Window {
        /// Window length in milliseconds.
        size_ms: u64,
    },
    /// Train an online model on the upstream flow.
    Train {
        /// Algorithm name (e.g. `pa`, `arow`, `perceptron`).
        algorithm: String,
    },
    /// Predict with an online model over the upstream flow.
    Predict {
        /// Algorithm name.
        algorithm: String,
    },
    /// Score the upstream flow for anomalies.
    DetectAnomaly {
        /// Detector name (`zscore`, `mahalanobis`, `lof`).
        detector: String,
        /// Score threshold above which a flow item is flagged.
        threshold: f64,
    },
    /// Fuse upstream flows into a state estimate (e.g. comfort level).
    Estimate {
        /// Estimator name.
        model: String,
    },
    /// Hysteresis policy: turn an upstream value into on/off decisions.
    Policy {
        /// Datum key observed (`score` reads the message score).
        key: String,
        /// Emit an "on" decision when the value rises above this.
        on_above: f64,
        /// Emit an "off" decision when the value falls below this.
        off_below: f64,
        /// Datum key of the emitted decision (e.g. `power`, `level`).
        emit: String,
    },
    /// Drive an actuator from upstream decisions.
    Actuate {
        /// Actuator name (e.g. `ac`, `light`, `alert`).
        actuator: String,
    },
    /// A named custom operator.
    Custom {
        /// Operator name resolved by the runtime.
        operator: String,
    },
}

impl TaskKind {
    /// The capability a module must offer to host this task, if any.
    ///
    /// Sensing requires the module to own that sensor; actuation requires
    /// the actuator. Pure computation can run anywhere.
    pub fn required_capability(&self) -> Option<String> {
        match self {
            TaskKind::Sense { sensor, .. } => Some(format!("sensor:{sensor}")),
            TaskKind::Actuate { actuator } => Some(format!("actuator:{actuator}")),
            _ => None,
        }
    }

    /// A rough relative execution cost, used by load-aware assignment.
    pub fn nominal_cost(&self) -> f64 {
        match self {
            TaskKind::Sense { rate_hz, .. } => 0.2 * rate_hz.max(0.0),
            TaskKind::Window { .. } => 1.0,
            TaskKind::Train { .. } => 10.0,
            TaskKind::Predict { .. } => 6.0,
            TaskKind::DetectAnomaly { .. } => 4.0,
            TaskKind::Estimate { .. } => 3.0,
            TaskKind::Policy { .. } => 0.5,
            TaskKind::Actuate { .. } => 0.5,
            TaskKind::Custom { .. } => 2.0,
        }
    }

    /// A short lower-case name of the kind.
    pub fn name(&self) -> &'static str {
        match self {
            TaskKind::Sense { .. } => "sense",
            TaskKind::Window { .. } => "window",
            TaskKind::Train { .. } => "train",
            TaskKind::Predict { .. } => "predict",
            TaskKind::DetectAnomaly { .. } => "anomaly",
            TaskKind::Estimate { .. } => "estimate",
            TaskKind::Policy { .. } => "policy",
            TaskKind::Actuate { .. } => "actuate",
            TaskKind::Custom { .. } => "custom",
        }
    }
}

/// One node of the task graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Unique task identifier within the recipe.
    pub id: String,
    /// Operation performed.
    pub kind: TaskKind,
    /// Free-form extra parameters.
    #[serde(default)]
    pub params: BTreeMap<String, String>,
}

impl Task {
    /// Creates a task without extra parameters.
    pub fn new(id: impl Into<String>, kind: TaskKind) -> Self {
        Task {
            id: id.into(),
            kind,
            params: BTreeMap::new(),
        }
    }
}

/// A validated application recipe: named task graph (paper Fig. 5).
///
/// ```
/// use ifot_recipe::model::{Recipe, Task, TaskKind};
///
/// let recipe = Recipe::builder("demo")
///     .task(Task::new("s", TaskKind::Sense { sensor: "sound".into(), rate_hz: 10.0 }))
///     .task(Task::new("d", TaskKind::DetectAnomaly { detector: "zscore".into(), threshold: 3.0 }))
///     .edge("s", "d")
///     .build()?;
/// assert_eq!(recipe.tasks().len(), 2);
/// assert_eq!(recipe.roots(), vec!["s"]);
/// # Ok::<(), ifot_recipe::error::RecipeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recipe {
    name: String,
    tasks: Vec<Task>,
    edges: Vec<(String, String)>,
}

impl Recipe {
    /// Starts building a recipe with the given name.
    pub fn builder(name: impl Into<String>) -> RecipeBuilder {
        RecipeBuilder {
            name: name.into(),
            tasks: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// The recipe name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tasks in declaration order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The edges as `(from, to)` id pairs.
    pub fn edges(&self) -> &[(String, String)] {
        &self.edges
    }

    /// Looks up a task by id.
    pub fn task(&self, id: &str) -> Option<&Task> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// Direct successors of `id`.
    pub fn successors(&self, id: &str) -> Vec<&str> {
        self.edges
            .iter()
            .filter(|(from, _)| from == id)
            .map(|(_, to)| to.as_str())
            .collect()
    }

    /// Direct predecessors of `id`.
    pub fn predecessors(&self, id: &str) -> Vec<&str> {
        self.edges
            .iter()
            .filter(|(_, to)| to == id)
            .map(|(from, _)| from.as_str())
            .collect()
    }

    /// Tasks with no incoming edge (stream sources).
    pub fn roots(&self) -> Vec<&str> {
        self.tasks
            .iter()
            .filter(|t| self.predecessors(&t.id).is_empty())
            .map(|t| t.id.as_str())
            .collect()
    }

    /// Tasks with no outgoing edge (sinks).
    pub fn leaves(&self) -> Vec<&str> {
        self.tasks
            .iter()
            .filter(|t| self.successors(&t.id).is_empty())
            .map(|t| t.id.as_str())
            .collect()
    }

    /// A topological order of task ids (Kahn's algorithm; stable with
    /// respect to declaration order).
    pub fn topo_order(&self) -> Vec<&str> {
        let mut indegree: BTreeMap<&str, usize> =
            self.tasks.iter().map(|t| (t.id.as_str(), 0)).collect();
        for (_, to) in &self.edges {
            *indegree.get_mut(to.as_str()).expect("validated edge") += 1;
        }
        let mut queue: VecDeque<&str> = self
            .tasks
            .iter()
            .filter(|t| indegree[t.id.as_str()] == 0)
            .map(|t| t.id.as_str())
            .collect();
        let mut order = Vec::with_capacity(self.tasks.len());
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for next in self.successors(id) {
                let d = indegree.get_mut(next).expect("validated edge");
                *d -= 1;
                if *d == 0 {
                    queue.push_back(next);
                }
            }
        }
        order
    }

    /// Serializes to JSON (the machine interchange format; the DSL is the
    /// human format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("recipes are serializable")
    }

    /// Parses a recipe from JSON, re-running validation.
    ///
    /// # Errors
    ///
    /// Returns [`RecipeError`] for malformed JSON or an invalid graph.
    pub fn from_json(json: &str) -> Result<Recipe, RecipeError> {
        let raw: Recipe =
            serde_json::from_str(json).map_err(|e| RecipeError::Serde(e.to_string()))?;
        let mut builder = Recipe::builder(raw.name);
        for t in raw.tasks {
            builder = builder.task(t);
        }
        for (a, b) in raw.edges {
            builder = builder.edge(a, b);
        }
        builder.build()
    }
}

/// Incremental [`Recipe`] constructor; `build` validates the graph.
#[derive(Debug, Clone)]
pub struct RecipeBuilder {
    name: String,
    tasks: Vec<Task>,
    edges: Vec<(String, String)>,
}

impl RecipeBuilder {
    /// Adds a task.
    pub fn task(mut self, task: Task) -> Self {
        self.tasks.push(task);
        self
    }

    /// Adds an edge from `from` to `to`.
    pub fn edge(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.edges.push((from.into(), to.into()));
        self
    }

    /// Validates and produces the recipe.
    ///
    /// # Errors
    ///
    /// Returns [`RecipeError`] when the recipe is empty, ids repeat,
    /// edges dangle or form a self-loop, or the graph has a cycle.
    pub fn build(self) -> Result<Recipe, RecipeError> {
        if self.name.is_empty() {
            return Err(RecipeError::EmptyName);
        }
        if self.tasks.is_empty() {
            return Err(RecipeError::NoTasks);
        }
        let mut seen = BTreeSet::new();
        for t in &self.tasks {
            if t.id.is_empty() {
                return Err(RecipeError::EmptyTaskId);
            }
            if !seen.insert(t.id.as_str()) {
                return Err(RecipeError::DuplicateTask(t.id.clone()));
            }
        }
        for (from, to) in &self.edges {
            if !seen.contains(from.as_str()) {
                return Err(RecipeError::UnknownTask(from.clone()));
            }
            if !seen.contains(to.as_str()) {
                return Err(RecipeError::UnknownTask(to.clone()));
            }
            if from == to {
                return Err(RecipeError::SelfLoop(from.clone()));
            }
        }
        let recipe = Recipe {
            name: self.name,
            tasks: self.tasks,
            edges: self.edges,
        };
        if recipe.topo_order().len() != recipe.tasks.len() {
            return Err(RecipeError::Cycle);
        }
        Ok(recipe)
    }
}

/// The paper's Fig. 5 elderly-monitoring recipe, ready to run: four
/// sensing tasks, two anomaly detectors, camera monitoring, state
/// estimation and alert messaging.
pub fn fig5_elderly_monitoring() -> Recipe {
    Recipe::builder("elderly-monitoring")
        .task(Task::new(
            "sensing_a",
            TaskKind::Sense {
                sensor: "accel".into(),
                rate_hz: 20.0,
            },
        ))
        .task(Task::new(
            "sensing_b",
            TaskKind::Sense {
                sensor: "sound".into(),
                rate_hz: 20.0,
            },
        ))
        .task(Task::new(
            "sensing_c",
            TaskKind::Sense {
                sensor: "motion".into(),
                rate_hz: 20.0,
            },
        ))
        .task(Task::new(
            "sensing_d",
            TaskKind::Sense {
                sensor: "illuminance".into(),
                rate_hz: 20.0,
            },
        ))
        .task(Task::new(
            "anomaly_ab",
            TaskKind::DetectAnomaly {
                detector: "lof".into(),
                threshold: 3.0,
            },
        ))
        .task(Task::new(
            "anomaly_cd",
            TaskKind::DetectAnomaly {
                detector: "zscore".into(),
                threshold: 3.0,
            },
        ))
        .task(Task::new(
            "camera_monitoring",
            TaskKind::Custom {
                operator: "camera-monitoring".into(),
            },
        ))
        .task(Task::new(
            "state_estimation",
            TaskKind::Estimate {
                model: "activity".into(),
            },
        ))
        .task(Task::new(
            "alert_messaging",
            TaskKind::Actuate {
                actuator: "alert".into(),
            },
        ))
        .edge("sensing_a", "anomaly_ab")
        .edge("sensing_b", "anomaly_ab")
        .edge("sensing_c", "anomaly_cd")
        .edge("sensing_d", "anomaly_cd")
        .edge("anomaly_ab", "camera_monitoring")
        .edge("anomaly_ab", "state_estimation")
        .edge("anomaly_cd", "state_estimation")
        .edge("camera_monitoring", "alert_messaging")
        .edge("state_estimation", "alert_messaging")
        .build()
        .expect("the Fig. 5 recipe is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Recipe {
        Recipe::builder("r")
            .task(Task::new(
                "a",
                TaskKind::Sense {
                    sensor: "sound".into(),
                    rate_hz: 5.0,
                },
            ))
            .task(Task::new("b", TaskKind::Window { size_ms: 100 }))
            .task(Task::new(
                "c",
                TaskKind::Train {
                    algorithm: "pa".into(),
                },
            ))
            .edge("a", "b")
            .edge("b", "c")
            .build()
            .expect("valid recipe")
    }

    #[test]
    fn builder_produces_valid_graph() {
        let r = small();
        assert_eq!(r.name(), "r");
        assert_eq!(r.roots(), vec!["a"]);
        assert_eq!(r.leaves(), vec!["c"]);
        assert_eq!(r.successors("a"), vec!["b"]);
        assert_eq!(r.predecessors("c"), vec!["b"]);
        assert_eq!(r.topo_order(), vec!["a", "b", "c"]);
        assert!(r.task("b").is_some());
        assert!(r.task("zzz").is_none());
    }

    #[test]
    fn validation_catches_duplicates() {
        let err = Recipe::builder("r")
            .task(Task::new("a", TaskKind::Window { size_ms: 1 }))
            .task(Task::new("a", TaskKind::Window { size_ms: 1 }))
            .build()
            .expect_err("duplicate ids");
        assert_eq!(err, RecipeError::DuplicateTask("a".into()));
    }

    #[test]
    fn validation_catches_dangling_edges() {
        let err = Recipe::builder("r")
            .task(Task::new("a", TaskKind::Window { size_ms: 1 }))
            .edge("a", "ghost")
            .build()
            .expect_err("dangling edge");
        assert_eq!(err, RecipeError::UnknownTask("ghost".into()));
    }

    #[test]
    fn validation_catches_cycles_and_self_loops() {
        let err = Recipe::builder("r")
            .task(Task::new("a", TaskKind::Window { size_ms: 1 }))
            .edge("a", "a")
            .build()
            .expect_err("self loop");
        assert_eq!(err, RecipeError::SelfLoop("a".into()));

        let err = Recipe::builder("r")
            .task(Task::new("a", TaskKind::Window { size_ms: 1 }))
            .task(Task::new("b", TaskKind::Window { size_ms: 1 }))
            .edge("a", "b")
            .edge("b", "a")
            .build()
            .expect_err("cycle");
        assert_eq!(err, RecipeError::Cycle);
    }

    #[test]
    fn validation_catches_empty_cases() {
        assert_eq!(
            Recipe::builder("").build().expect_err("empty name"),
            RecipeError::EmptyName
        );
        assert_eq!(
            Recipe::builder("r").build().expect_err("no tasks"),
            RecipeError::NoTasks
        );
        assert_eq!(
            Recipe::builder("r")
                .task(Task::new("", TaskKind::Window { size_ms: 1 }))
                .build()
                .expect_err("empty id"),
            RecipeError::EmptyTaskId
        );
    }

    #[test]
    fn capabilities_follow_kinds() {
        assert_eq!(
            TaskKind::Sense {
                sensor: "accel".into(),
                rate_hz: 1.0
            }
            .required_capability()
            .as_deref(),
            Some("sensor:accel")
        );
        assert_eq!(
            TaskKind::Actuate {
                actuator: "light".into()
            }
            .required_capability()
            .as_deref(),
            Some("actuator:light")
        );
        assert_eq!(TaskKind::Window { size_ms: 1 }.required_capability(), None);
    }

    #[test]
    fn fig5_recipe_shape_matches_paper() {
        let r = fig5_elderly_monitoring();
        assert_eq!(r.tasks().len(), 9);
        assert_eq!(r.roots().len(), 4, "four sensing sources");
        assert_eq!(r.leaves(), vec!["alert_messaging"]);
        let order = r.topo_order();
        assert_eq!(order.len(), 9);
        // Alert must come last.
        assert_eq!(*order.last().expect("non-empty"), "alert_messaging");
    }

    #[test]
    fn json_round_trip() {
        let r = fig5_elderly_monitoring();
        let json = r.to_json();
        let back = Recipe::from_json(&json).expect("round trip");
        assert_eq!(back, r);
    }

    #[test]
    fn json_parse_revalidates() {
        // Hand-built JSON with a cycle must be rejected.
        let json = r#"{
            "name": "bad",
            "tasks": [
                {"id": "a", "kind": {"Window": {"size_ms": 1}}},
                {"id": "b", "kind": {"Window": {"size_ms": 1}}}
            ],
            "edges": [["a", "b"], ["b", "a"]]
        }"#;
        assert_eq!(
            Recipe::from_json(json).expect_err("cycle"),
            RecipeError::Cycle
        );
        assert!(matches!(
            Recipe::from_json("not json").expect_err("garbage"),
            RecipeError::Serde(_)
        ));
    }

    #[test]
    fn nominal_costs_rank_train_highest() {
        let train = TaskKind::Train {
            algorithm: "pa".into(),
        }
        .nominal_cost();
        let window = TaskKind::Window { size_ms: 1 }.nominal_cost();
        assert!(train > window);
    }
}
