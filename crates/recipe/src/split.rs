//! Recipe splitting — the IFoT *Recipe split class*.
//!
//! Divides a recipe into **stages** of tasks that can execute in parallel:
//! stage *k* contains every task whose longest path from a root has length
//! *k* (level sets of the DAG). Within a stage there are no edges, so the
//! tasks are mutually independent and can be assigned to different neuron
//! modules.

use std::collections::BTreeMap;

use crate::model::Recipe;

/// The parallel-stage decomposition of a recipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitPlan {
    stages: Vec<Vec<String>>,
}

impl SplitPlan {
    /// Stages in execution order; each stage lists task ids that may run
    /// in parallel.
    pub fn stages(&self) -> &[Vec<String>] {
        &self.stages
    }

    /// Number of stages (the critical-path length of the recipe).
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// The widest stage size — the maximum parallelism the recipe offers.
    pub fn max_parallelism(&self) -> usize {
        self.stages.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The stage index of a task, if present.
    pub fn stage_of(&self, task_id: &str) -> Option<usize> {
        self.stages
            .iter()
            .position(|stage| stage.iter().any(|t| t == task_id))
    }

    /// Total number of tasks across stages.
    pub fn task_count(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }
}

/// Splits a recipe into parallel stages.
///
/// ```
/// use ifot_recipe::model::fig5_elderly_monitoring;
/// use ifot_recipe::split::split;
///
/// let plan = split(&fig5_elderly_monitoring());
/// assert_eq!(plan.depth(), 4); // sense -> anomaly -> monitor/estimate -> alert
/// assert_eq!(plan.stages()[0].len(), 4); // four parallel sensing tasks
/// ```
pub fn split(recipe: &Recipe) -> SplitPlan {
    // Longest path from any root, computed over a topological order.
    let mut level: BTreeMap<&str, usize> = BTreeMap::new();
    for id in recipe.topo_order() {
        let lvl = recipe
            .predecessors(id)
            .iter()
            .map(|p| level.get(p).copied().unwrap_or(0) + 1)
            .max()
            .unwrap_or(0);
        level.insert(id, lvl);
    }
    let depth = level.values().max().map(|d| d + 1).unwrap_or(0);
    let mut stages = vec![Vec::new(); depth];
    // Preserve declaration order inside each stage for determinism.
    for task in recipe.tasks() {
        let lvl = level[task.id.as_str()];
        stages[lvl].push(task.id.clone());
    }
    SplitPlan { stages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{fig5_elderly_monitoring, Recipe, Task, TaskKind};

    fn window(id: &str) -> Task {
        Task::new(id, TaskKind::Window { size_ms: 1 })
    }

    #[test]
    fn linear_chain_has_one_task_per_stage() {
        let r = Recipe::builder("chain")
            .task(window("a"))
            .task(window("b"))
            .task(window("c"))
            .edge("a", "b")
            .edge("b", "c")
            .build()
            .expect("valid");
        let plan = split(&r);
        assert_eq!(plan.depth(), 3);
        assert_eq!(plan.max_parallelism(), 1);
        assert_eq!(
            plan.stages(),
            &[vec!["a".to_owned()], vec!["b".into()], vec!["c".into()]]
        );
    }

    #[test]
    fn independent_tasks_share_a_stage() {
        let r = Recipe::builder("par")
            .task(window("a"))
            .task(window("b"))
            .task(window("c"))
            .build()
            .expect("valid");
        let plan = split(&r);
        assert_eq!(plan.depth(), 1);
        assert_eq!(plan.max_parallelism(), 3);
    }

    #[test]
    fn diamond_levels_are_longest_path() {
        //    a
        //   / \
        //  b   |
        //   \  |
        //     c      (c depends on a directly AND via b)
        let r = Recipe::builder("diamond")
            .task(window("a"))
            .task(window("b"))
            .task(window("c"))
            .edge("a", "b")
            .edge("a", "c")
            .edge("b", "c")
            .build()
            .expect("valid");
        let plan = split(&r);
        assert_eq!(plan.stage_of("a"), Some(0));
        assert_eq!(plan.stage_of("b"), Some(1));
        // c must wait for b, so it lands at level 2 despite the short edge.
        assert_eq!(plan.stage_of("c"), Some(2));
    }

    #[test]
    fn stages_partition_the_tasks() {
        let r = fig5_elderly_monitoring();
        let plan = split(&r);
        assert_eq!(plan.task_count(), r.tasks().len());
        // No task appears twice.
        let mut all: Vec<&String> = plan.stages().iter().flatten().collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), r.tasks().len());
    }

    #[test]
    fn no_edge_within_a_stage() {
        let r = fig5_elderly_monitoring();
        let plan = split(&r);
        for (from, to) in r.edges() {
            let sf = plan.stage_of(from).expect("from placed");
            let st = plan.stage_of(to).expect("to placed");
            assert!(sf < st, "edge {from}->{to} not strictly forward");
        }
    }

    #[test]
    fn fig5_depth_and_widths() {
        let plan = split(&fig5_elderly_monitoring());
        assert_eq!(plan.depth(), 4);
        assert_eq!(plan.stages()[0].len(), 4);
        assert_eq!(plan.stages()[1].len(), 2);
        assert_eq!(plan.stages()[2].len(), 2);
        assert_eq!(plan.stages()[3].len(), 1);
        assert_eq!(plan.max_parallelism(), 4);
        assert_eq!(plan.stage_of("ghost"), None);
    }
}
