//! Virtual actuators: devices the middleware drives in response to
//! analysis results (the paper's air conditioner, ceiling light, alert
//! messaging).

use serde::{Deserialize, Serialize};

/// A command addressed to an actuator, serialized as an MQTT payload on
/// `actuator/<device_id>/<verb>` topics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// Switch a device on or off.
    SetPower {
        /// Desired power state.
        on: bool,
    },
    /// Set a continuous level (dimmer, fan speed) in `[0, 1]`.
    SetLevel {
        /// Desired level.
        level: f64,
    },
    /// Set a target temperature in Celsius.
    SetTarget {
        /// Desired target.
        celsius: f64,
    },
    /// Raise an alert with a message (elderly-monitoring scenario).
    Alert {
        /// Severity 0 (info) to 2 (critical).
        severity: u8,
        /// Human-readable message.
        message: String,
    },
}

impl Command {
    /// Serializes to a JSON payload.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("commands are always serializable")
    }

    /// Parses from a JSON payload.
    ///
    /// # Errors
    ///
    /// Returns the serde error message for malformed payloads.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        serde_json::from_slice(bytes).map_err(|e| e.to_string())
    }

    /// Derives a command from a decision item: `get` looks up its datum
    /// keys, `label`/`score` carry its classification. Keys `power`,
    /// `level` and `target_celsius` map to the corresponding commands; a
    /// labelled item becomes an alert (severity 2 for `anomaly`), an
    /// unlabelled one an informational alert.
    pub fn from_decision(
        get: impl Fn(&str) -> Option<f64>,
        label: Option<&str>,
        score: Option<f64>,
    ) -> Command {
        if let Some(v) = get("power") {
            return Command::SetPower { on: v >= 0.5 };
        }
        if let Some(v) = get("level") {
            return Command::SetLevel { level: v };
        }
        if let Some(v) = get("target_celsius") {
            return Command::SetTarget { celsius: v };
        }
        match label {
            Some(label) => Command::Alert {
                severity: if label == "anomaly" { 2 } else { 1 },
                message: format!("{} (score {:.2})", label, score.unwrap_or(0.0)),
            },
            None => Command::Alert {
                severity: 0,
                message: "decision".to_owned(),
            },
        }
    }
}

/// Common behaviour of virtual actuators.
pub trait Actuator: Send {
    /// Numeric device identifier.
    fn device_id(&self) -> u16;

    /// Applies a command; unsupported commands are ignored and reported
    /// as `false`.
    fn apply(&mut self, command: &Command) -> bool;

    /// A one-line state description for monitoring screens.
    fn describe(&self) -> String;
}

impl std::fmt::Debug for dyn Actuator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Actuator({})", self.describe())
    }
}

/// A simulated air conditioner with a power state and target temperature.
#[derive(Debug, Clone, PartialEq)]
pub struct AirConditioner {
    id: u16,
    on: bool,
    target_celsius: f64,
    commands_applied: u64,
}

impl AirConditioner {
    /// Creates an idle unit targeting 24 °C.
    pub fn new(id: u16) -> Self {
        AirConditioner {
            id,
            on: false,
            target_celsius: 24.0,
            commands_applied: 0,
        }
    }

    /// Whether the unit is running.
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Current target temperature.
    pub fn target_celsius(&self) -> f64 {
        self.target_celsius
    }

    /// Commands applied so far.
    pub fn commands_applied(&self) -> u64 {
        self.commands_applied
    }
}

impl Actuator for AirConditioner {
    fn device_id(&self) -> u16 {
        self.id
    }

    fn apply(&mut self, command: &Command) -> bool {
        match command {
            Command::SetPower { on } => {
                self.on = *on;
            }
            Command::SetTarget { celsius } => {
                self.target_celsius = celsius.clamp(16.0, 32.0);
            }
            _ => return false,
        }
        self.commands_applied += 1;
        true
    }

    fn describe(&self) -> String {
        format!(
            "ac#{} {} target={:.1}C",
            self.id,
            if self.on { "on" } else { "off" },
            self.target_celsius
        )
    }
}

/// A simulated dimmable ceiling light.
#[derive(Debug, Clone, PartialEq)]
pub struct CeilingLight {
    id: u16,
    level: f64,
    commands_applied: u64,
}

impl CeilingLight {
    /// Creates a light that is off.
    pub fn new(id: u16) -> Self {
        CeilingLight {
            id,
            level: 0.0,
            commands_applied: 0,
        }
    }

    /// Current brightness in `[0, 1]`.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Commands applied so far.
    pub fn commands_applied(&self) -> u64 {
        self.commands_applied
    }
}

impl Actuator for CeilingLight {
    fn device_id(&self) -> u16 {
        self.id
    }

    fn apply(&mut self, command: &Command) -> bool {
        match command {
            Command::SetPower { on } => {
                self.level = if *on { 1.0 } else { 0.0 };
            }
            Command::SetLevel { level } => {
                if !level.is_finite() {
                    return false;
                }
                self.level = level.clamp(0.0, 1.0);
            }
            _ => return false,
        }
        self.commands_applied += 1;
        true
    }

    fn describe(&self) -> String {
        format!("light#{} level={:.0}%", self.id, self.level * 100.0)
    }
}

/// A simulated alert sink (pager / messaging endpoint) recording alerts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AlertSink {
    id: u16,
    alerts: Vec<(u8, String)>,
}

impl AlertSink {
    /// Creates an empty sink.
    pub fn new(id: u16) -> Self {
        AlertSink {
            id,
            alerts: Vec::new(),
        }
    }

    /// Alerts received so far, in arrival order.
    pub fn alerts(&self) -> &[(u8, String)] {
        &self.alerts
    }
}

impl Actuator for AlertSink {
    fn device_id(&self) -> u16 {
        self.id
    }

    fn apply(&mut self, command: &Command) -> bool {
        match command {
            Command::Alert { severity, message } => {
                self.alerts.push((*severity, message.clone()));
                true
            }
            _ => false,
        }
    }

    fn describe(&self) -> String {
        format!("alerts#{} received={}", self.id, self.alerts.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_json_round_trip() {
        let cmds = [
            Command::SetPower { on: true },
            Command::SetLevel { level: 0.5 },
            Command::SetTarget { celsius: 21.0 },
            Command::Alert {
                severity: 2,
                message: "fall detected".into(),
            },
        ];
        for c in cmds {
            let bytes = c.encode();
            assert_eq!(Command::decode(&bytes).expect("round trip"), c);
        }
        assert!(Command::decode(b"not json").is_err());
    }

    #[test]
    fn from_decision_maps_keys_then_labels() {
        let keyed = |key: &'static str, v: f64| move |k: &str| (k == key).then_some(v);
        assert_eq!(
            Command::from_decision(keyed("power", 1.0), None, None),
            Command::SetPower { on: true }
        );
        assert_eq!(
            Command::from_decision(keyed("level", 0.4), None, None),
            Command::SetLevel { level: 0.4 }
        );
        assert_eq!(
            Command::from_decision(keyed("target_celsius", 21.0), None, None),
            Command::SetTarget { celsius: 21.0 }
        );
        assert!(matches!(
            Command::from_decision(|_| None, Some("anomaly"), Some(4.5)),
            Command::Alert { severity: 2, .. }
        ));
        assert!(matches!(
            Command::from_decision(|_| None, Some("fall"), None),
            Command::Alert { severity: 1, .. }
        ));
        assert!(matches!(
            Command::from_decision(|_| None, None, None),
            Command::Alert { severity: 0, .. }
        ));
    }

    #[test]
    fn air_conditioner_clamps_target() {
        let mut ac = AirConditioner::new(1);
        assert!(ac.apply(&Command::SetPower { on: true }));
        assert!(ac.apply(&Command::SetTarget { celsius: 99.0 }));
        assert!(ac.is_on());
        assert_eq!(ac.target_celsius(), 32.0);
        assert!(!ac.apply(&Command::SetLevel { level: 0.5 }));
        assert_eq!(ac.commands_applied(), 2);
        assert!(ac.describe().contains("on"));
    }

    #[test]
    fn light_level_control() {
        let mut light = CeilingLight::new(2);
        assert!(light.apply(&Command::SetLevel { level: 0.3 }));
        assert_eq!(light.level(), 0.3);
        assert!(light.apply(&Command::SetPower { on: false }));
        assert_eq!(light.level(), 0.0);
        assert!(light.apply(&Command::SetLevel { level: 7.0 }));
        assert_eq!(light.level(), 1.0);
        assert!(!light.apply(&Command::SetLevel { level: f64::NAN }));
        assert!(!light.apply(&Command::SetTarget { celsius: 20.0 }));
    }

    #[test]
    fn alert_sink_records_alerts_only() {
        let mut sink = AlertSink::new(3);
        assert!(sink.apply(&Command::Alert {
            severity: 1,
            message: "check".into()
        }));
        assert!(!sink.apply(&Command::SetPower { on: true }));
        assert_eq!(sink.alerts(), &[(1, "check".to_owned())]);
        assert_eq!(sink.device_id(), 3);
    }
}
