//! Virtual sensors: multi-channel devices built from signal generators.

use crate::sample::{Sample, SensorKind};
use crate::waveform::{Composite, Constant, GaussianNoise, Pulse, RandomWalk, Signal, Sine};

/// A simulated sensor device producing [`Sample`]s on demand.
///
/// The device owns one [`Signal`] per channel and a sequence counter; the
/// caller (the middleware's Sensor class, driven by a sampling timer)
/// supplies timestamps.
///
/// ```
/// use ifot_sensors::device::VirtualSensor;
/// use ifot_sensors::sample::SensorKind;
///
/// let mut s = VirtualSensor::preset(SensorKind::Temperature, 3, 42);
/// let a = s.read(1_000_000);
/// let b = s.read(2_000_000);
/// assert_eq!(a.device_id, 3);
/// assert_eq!(b.seq, a.seq + 1);
/// ```
pub struct VirtualSensor {
    kind: SensorKind,
    device_id: u16,
    channels: Vec<Box<dyn Signal>>,
    seq: u32,
}

impl std::fmt::Debug for VirtualSensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualSensor")
            .field("kind", &self.kind)
            .field("device_id", &self.device_id)
            .field("channels", &self.channels.len())
            .field("seq", &self.seq)
            .finish()
    }
}

impl VirtualSensor {
    /// Creates a sensor from explicit channel signals.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is empty or holds more than three signals.
    pub fn new(kind: SensorKind, device_id: u16, channels: Vec<Box<dyn Signal>>) -> Self {
        assert!(
            (1..=3).contains(&channels.len()),
            "a sensor has 1..=3 channels, got {}",
            channels.len()
        );
        VirtualSensor {
            kind,
            device_id,
            channels,
            seq: 0,
        }
    }

    /// Builds a realistic default signal set for the given kind, seeded
    /// deterministically.
    pub fn preset(kind: SensorKind, device_id: u16, seed: u64) -> Self {
        let channels: Vec<Box<dyn Signal>> = match kind {
            SensorKind::Accelerometer => {
                // Gravity on z plus small body sway and noise.
                let mut axes: Vec<Box<dyn Signal>> = Vec::new();
                for (axis, base) in [(0u64, 0.0f64), (1, 0.0), (2, 9.81)] {
                    axes.push(Box::new(Composite::new(vec![
                        Box::new(Constant(base)),
                        Box::new(Sine {
                            frequency_hz: 1.2,
                            amplitude: 0.4,
                            offset: 0.0,
                            phase: axis as f64,
                        }),
                        Box::new(GaussianNoise::new(0.05, seed ^ (axis + 1))),
                    ])));
                }
                axes
            }
            SensorKind::Illuminance => vec![Box::new(Composite::new(vec![
                // Slow daily-ish swell plus flicker.
                Box::new(Sine {
                    frequency_hz: 0.01,
                    amplitude: 200.0,
                    offset: 400.0,
                    phase: 0.0,
                }),
                Box::new(GaussianNoise::new(8.0, seed ^ 0x11)),
            ]))],
            SensorKind::Sound => vec![Box::new(Composite::new(vec![
                Box::new(Constant(40.0)),
                Box::new(RandomWalk::new(0.0, 1.5, -10.0, 35.0, seed ^ 0x22)),
                Box::new(GaussianNoise::new(1.0, seed ^ 0x33)),
            ]))],
            SensorKind::Motion => vec![Box::new(Pulse {
                period_ns: 30_000_000_000,
                duty: 0.2,
                low: 0.0,
                high: 1.0,
            })],
            SensorKind::Temperature => vec![Box::new(Composite::new(vec![
                Box::new(Constant(22.0)),
                Box::new(RandomWalk::new(0.0, 0.05, -4.0, 4.0, seed ^ 0x44)),
            ]))],
            SensorKind::Humidity => vec![Box::new(Composite::new(vec![
                Box::new(Constant(50.0)),
                Box::new(RandomWalk::new(0.0, 0.2, -15.0, 15.0, seed ^ 0x55)),
            ]))],
            SensorKind::PersonFlow => vec![Box::new(Composite::new(vec![
                Box::new(Pulse {
                    period_ns: 60_000_000_000,
                    duty: 0.5,
                    low: 1.0,
                    high: 8.0,
                }),
                Box::new(GaussianNoise::new(0.8, seed ^ 0x66)),
            ]))],
        };
        VirtualSensor::new(kind, device_id, channels)
    }

    /// The sensor kind.
    pub fn kind(&self) -> SensorKind {
        self.kind
    }

    /// The device identifier.
    pub fn device_id(&self) -> u16 {
        self.device_id
    }

    /// Samples taken so far.
    pub fn samples_taken(&self) -> u32 {
        self.seq
    }

    /// Reads all channels at `t_ns`, producing the next sample.
    pub fn read(&mut self, t_ns: u64) -> Sample {
        let values: Vec<f32> = self
            .channels
            .iter_mut()
            .map(|c| c.value_at(t_ns) as f32)
            .collect();
        let sample = Sample::new(self.kind, self.device_id, self.seq, t_ns, &values);
        self.seq = self.seq.wrapping_add(1);
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_produce_expected_channel_counts() {
        for kind in [
            SensorKind::Accelerometer,
            SensorKind::Illuminance,
            SensorKind::Sound,
            SensorKind::Motion,
            SensorKind::Temperature,
            SensorKind::Humidity,
            SensorKind::PersonFlow,
        ] {
            let mut s = VirtualSensor::preset(kind, 1, 9);
            let sample = s.read(0);
            assert_eq!(sample.values.len(), kind.channels(), "{kind:?}");
            assert_eq!(sample.kind, kind);
        }
    }

    #[test]
    fn sequence_numbers_increase() {
        let mut s = VirtualSensor::preset(SensorKind::Sound, 2, 9);
        let a = s.read(0);
        let b = s.read(1000);
        let c = s.read(2000);
        assert_eq!(a.seq + 1, b.seq);
        assert_eq!(b.seq + 1, c.seq);
        assert_eq!(s.samples_taken(), 3);
    }

    #[test]
    fn same_seed_replays_identically() {
        let mut a = VirtualSensor::preset(SensorKind::Accelerometer, 1, 77);
        let mut b = VirtualSensor::preset(SensorKind::Accelerometer, 1, 77);
        for t in 0..100u64 {
            assert_eq!(a.read(t * 1000).values, b.read(t * 1000).values);
        }
    }

    #[test]
    fn accelerometer_sees_gravity_on_z() {
        let mut s = VirtualSensor::preset(SensorKind::Accelerometer, 1, 5);
        let sample = s.read(0);
        assert!(
            (sample.values[2] - 9.81).abs() < 1.0,
            "z-axis {}",
            sample.values[2]
        );
    }

    #[test]
    fn samples_encode_to_wire_size() {
        let mut s = VirtualSensor::preset(SensorKind::Illuminance, 1, 5);
        assert_eq!(s.read(123).encode().len(), 32);
    }

    #[test]
    #[should_panic(expected = "1..=3 channels")]
    fn too_many_channels_rejected() {
        let chans: Vec<Box<dyn Signal>> = (0..4)
            .map(|_| Box::new(Constant(0.0)) as Box<dyn Signal>)
            .collect();
        let _ = VirtualSensor::new(SensorKind::Sound, 1, chans);
    }
}
