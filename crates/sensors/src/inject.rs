//! Anomaly injection with ground truth.
//!
//! Wraps a [`VirtualSensor`] and perturbs scheduled time windows (spikes,
//! stuck-at faults, drift). Each emitted sample carries a ground-truth
//! `anomalous` flag, so the flow-analysis examples can report detector
//! precision/recall honestly.

use crate::device::VirtualSensor;
use crate::sample::Sample;

/// How a window perturbs the signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Adds `magnitude` to every channel (e.g. a fall spike).
    Spike {
        /// Added offset.
        magnitude: f32,
    },
    /// Freezes all channels at the last pre-fault value.
    StuckAt,
    /// Adds a ramp growing by `rate_per_sec` per second over the window.
    Drift {
        /// Offset growth per second.
        rate_per_sec: f32,
    },
}

/// A scheduled anomaly window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// Window start (inclusive), nanoseconds.
    pub from_ns: u64,
    /// Window end (exclusive), nanoseconds.
    pub until_ns: u64,
    /// Perturbation applied inside the window.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Whether `t_ns` falls inside the window.
    pub fn contains(&self, t_ns: u64) -> bool {
        (self.from_ns..self.until_ns).contains(&t_ns)
    }
}

/// A sample together with its ground-truth anomaly flag.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledSample {
    /// The (possibly perturbed) sample.
    pub sample: Sample,
    /// Whether a fault window was active when it was taken.
    pub anomalous: bool,
}

/// A sensor wrapper injecting scheduled faults.
///
/// ```
/// use ifot_sensors::device::VirtualSensor;
/// use ifot_sensors::inject::{AnomalyInjector, FaultKind, FaultWindow};
/// use ifot_sensors::sample::SensorKind;
///
/// let sensor = VirtualSensor::preset(SensorKind::Temperature, 1, 7);
/// let mut injector = AnomalyInjector::new(sensor);
/// injector.schedule(FaultWindow {
///     from_ns: 1_000,
///     until_ns: 2_000,
///     kind: FaultKind::Spike { magnitude: 50.0 },
/// });
/// assert!(!injector.read(0).anomalous);
/// assert!(injector.read(1_500).anomalous);
/// ```
#[derive(Debug)]
pub struct AnomalyInjector {
    inner: VirtualSensor,
    windows: Vec<FaultWindow>,
    last_clean: Option<Vec<f32>>,
    injected: u64,
}

impl AnomalyInjector {
    /// Wraps a sensor with an empty schedule.
    pub fn new(inner: VirtualSensor) -> Self {
        AnomalyInjector {
            inner,
            windows: Vec::new(),
            last_clean: None,
            injected: 0,
        }
    }

    /// Adds a fault window.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty (`from_ns >= until_ns`).
    pub fn schedule(&mut self, window: FaultWindow) {
        assert!(
            window.from_ns < window.until_ns,
            "fault window must be non-empty"
        );
        self.windows.push(window);
    }

    /// The wrapped sensor.
    pub fn sensor(&self) -> &VirtualSensor {
        &self.inner
    }

    /// Samples emitted inside fault windows so far.
    pub fn injected_count(&self) -> u64 {
        self.injected
    }

    /// Reads the next sample at `t_ns`, applying any active fault.
    pub fn read(&mut self, t_ns: u64) -> LabelledSample {
        let mut sample = self.inner.read(t_ns);
        let active = self.windows.iter().find(|w| w.contains(t_ns)).copied();
        match active {
            None => {
                self.last_clean = Some(sample.values.clone());
                LabelledSample {
                    sample,
                    anomalous: false,
                }
            }
            Some(window) => {
                self.injected += 1;
                match window.kind {
                    FaultKind::Spike { magnitude } => {
                        for v in &mut sample.values {
                            *v += magnitude;
                        }
                    }
                    FaultKind::StuckAt => {
                        if let Some(frozen) = &self.last_clean {
                            sample.values.clone_from(frozen);
                        }
                    }
                    FaultKind::Drift { rate_per_sec } => {
                        let dt = (t_ns.saturating_sub(window.from_ns)) as f32 / 1.0e9;
                        for v in &mut sample.values {
                            *v += rate_per_sec * dt;
                        }
                    }
                }
                LabelledSample {
                    sample,
                    anomalous: true,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SensorKind;
    use crate::waveform::Constant;

    fn constant_sensor(level: f64) -> VirtualSensor {
        VirtualSensor::new(SensorKind::Temperature, 1, vec![Box::new(Constant(level))])
    }

    #[test]
    fn spike_offsets_values_inside_window_only() {
        let mut inj = AnomalyInjector::new(constant_sensor(10.0));
        inj.schedule(FaultWindow {
            from_ns: 100,
            until_ns: 200,
            kind: FaultKind::Spike { magnitude: 5.0 },
        });
        assert_eq!(inj.read(50).sample.values[0], 10.0);
        let hit = inj.read(150);
        assert!(hit.anomalous);
        assert_eq!(hit.sample.values[0], 15.0);
        let after = inj.read(250);
        assert!(!after.anomalous);
        assert_eq!(after.sample.values[0], 10.0);
        assert_eq!(inj.injected_count(), 1);
    }

    #[test]
    fn stuck_at_freezes_last_clean_value() {
        let mut sensor = VirtualSensor::new(
            SensorKind::Temperature,
            1,
            vec![Box::new(crate::waveform::Sine {
                frequency_hz: 1.0,
                amplitude: 10.0,
                offset: 0.0,
                phase: 0.0,
            })],
        );
        // Prime with a clean read at the sine peak.
        let mut inj = AnomalyInjector::new(std::mem::replace(&mut sensor, constant_sensor(0.0)));
        inj.schedule(FaultWindow {
            from_ns: 300_000_000,
            until_ns: 800_000_000,
            kind: FaultKind::StuckAt,
        });
        let clean = inj.read(250_000_000); // sine ~ peak
        let stuck1 = inj.read(400_000_000);
        let stuck2 = inj.read(700_000_000);
        assert!(stuck1.anomalous && stuck2.anomalous);
        assert_eq!(stuck1.sample.values, clean.sample.values);
        assert_eq!(stuck2.sample.values, clean.sample.values);
    }

    #[test]
    fn drift_grows_with_time() {
        let mut inj = AnomalyInjector::new(constant_sensor(0.0));
        inj.schedule(FaultWindow {
            from_ns: 0,
            until_ns: 10_000_000_000,
            kind: FaultKind::Drift { rate_per_sec: 2.0 },
        });
        let early = inj.read(1_000_000_000).sample.values[0];
        let late = inj.read(4_000_000_000).sample.values[0];
        assert!((early - 2.0).abs() < 1e-5);
        assert!((late - 8.0).abs() < 1e-4);
    }

    #[test]
    fn window_boundaries_are_half_open() {
        let w = FaultWindow {
            from_ns: 10,
            until_ns: 20,
            kind: FaultKind::StuckAt,
        };
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        assert!(!w.contains(9));
    }

    #[test]
    fn overlapping_windows_apply_first_match() {
        let mut inj = AnomalyInjector::new(constant_sensor(1.0));
        inj.schedule(FaultWindow {
            from_ns: 0,
            until_ns: 100,
            kind: FaultKind::Spike { magnitude: 1.0 },
        });
        inj.schedule(FaultWindow {
            from_ns: 50,
            until_ns: 150,
            kind: FaultKind::Spike { magnitude: 10.0 },
        });
        assert_eq!(inj.read(75).sample.values[0], 2.0); // first window wins
        assert_eq!(inj.read(120).sample.values[0], 11.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let mut inj = AnomalyInjector::new(constant_sensor(0.0));
        inj.schedule(FaultWindow {
            from_ns: 10,
            until_ns: 10,
            kind: FaultKind::StuckAt,
        });
    }
}
