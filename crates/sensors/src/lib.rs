//! # ifot-sensors — virtual device layer for the IFoT middleware
//!
//! The paper's *sensor/actuator integration function* abstracts physical
//! devices (accelerometers, illuminance/sound/motion sensors, air
//! conditioners, ceiling lights) behind uniform stream interfaces. Since
//! no physical hardware is available here, this crate provides faithful
//! virtual substitutes:
//!
//! * [`sample`] — the exact **32-byte** sensor sample the paper's
//!   experiment transmits, with its binary wire codec,
//! * [`waveform`] — deterministic signal generators (sine, random walk,
//!   Gaussian noise, pulse trains, composites),
//! * [`device`] — multi-channel virtual sensors with realistic presets,
//! * [`inject`] — scheduled anomaly injection with ground-truth labels,
//! * [`actuator`] — virtual actuators (air conditioner, light, alert
//!   sink) and their command codec,
//! * [`registry`] — the device catalogue used for discovery and
//!   capability-aware task assignment.
//!
//! ```
//! use ifot_sensors::device::VirtualSensor;
//! use ifot_sensors::sample::{Sample, SensorKind};
//!
//! let mut sensor = VirtualSensor::preset(SensorKind::Accelerometer, 1, 42);
//! let sample = sensor.read(1_000_000);
//! let wire = sample.encode();
//! assert_eq!(wire.len(), 32);
//! assert_eq!(Sample::decode(&wire)?, sample);
//! # Ok::<(), ifot_sensors::sample::SampleError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod actuator;
pub mod device;
pub mod inject;
pub mod registry;
pub mod sample;
pub mod waveform;

pub use actuator::{Actuator, AirConditioner, AlertSink, CeilingLight, Command};
pub use device::VirtualSensor;
pub use inject::{AnomalyInjector, FaultKind, FaultWindow, LabelledSample};
pub use registry::{DeviceDescriptor, DeviceRegistry, DeviceRole, LinkTechnology};
pub use sample::{Sample, SampleError, SensorKind, SAMPLE_WIRE_SIZE};
pub use waveform::{
    Composite, Constant, GaussianNoise, Pulse, RandomWalk, Signal, Sine, TraceReplay,
};
