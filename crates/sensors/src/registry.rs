//! Device registry: the catalogue the middleware's sensor/actuator
//! integration function uses to discover and describe devices.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::sample::SensorKind;

/// Whether a device produces or consumes data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceRole {
    /// Produces a stream of samples.
    Sensor,
    /// Consumes commands.
    Actuator,
}

/// Short-range link technology a device speaks (Fig. 2 of the paper lists
/// BLE, EnOcean and ZigBee). Purely descriptive in the simulation, but
/// part of the registry so capability-aware assignment can reason about
/// reachability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkTechnology {
    /// Bluetooth Low Energy.
    Ble,
    /// EnOcean energy-harvesting radio.
    EnOcean,
    /// ZigBee mesh.
    ZigBee,
    /// Wired/GPIO attachment.
    Wired,
}

/// Registry entry describing one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceDescriptor {
    /// Numeric device identifier (unique per registry).
    pub device_id: u16,
    /// Producer or consumer.
    pub role: DeviceRole,
    /// Sensor kind (sensors only).
    pub kind: Option<SensorKind>,
    /// Radio/link used to reach the device.
    pub link: LinkTechnology,
    /// Human-readable placement, e.g. "living-room".
    pub location: String,
}

/// A catalogue of devices attached to one neuron module.
///
/// ```
/// use ifot_sensors::registry::{DeviceDescriptor, DeviceRegistry, DeviceRole, LinkTechnology};
/// use ifot_sensors::sample::SensorKind;
///
/// let mut reg = DeviceRegistry::new();
/// reg.register(DeviceDescriptor {
///     device_id: 1,
///     role: DeviceRole::Sensor,
///     kind: Some(SensorKind::Temperature),
///     link: LinkTechnology::Ble,
///     location: "kitchen".into(),
/// })?;
/// assert_eq!(reg.len(), 1);
/// assert!(reg.get(1).is_some());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceRegistry {
    devices: BTreeMap<u16, DeviceDescriptor>,
}

impl DeviceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a device.
    ///
    /// # Errors
    ///
    /// Returns a message if the id is already registered or a sensor
    /// entry lacks its kind.
    pub fn register(&mut self, descriptor: DeviceDescriptor) -> Result<(), String> {
        if self.devices.contains_key(&descriptor.device_id) {
            return Err(format!(
                "device id {} already registered",
                descriptor.device_id
            ));
        }
        if descriptor.role == DeviceRole::Sensor && descriptor.kind.is_none() {
            return Err("sensor entries must declare their kind".to_owned());
        }
        self.devices.insert(descriptor.device_id, descriptor);
        Ok(())
    }

    /// Removes a device, returning its descriptor.
    pub fn unregister(&mut self, device_id: u16) -> Option<DeviceDescriptor> {
        self.devices.remove(&device_id)
    }

    /// Looks up a device.
    pub fn get(&self, device_id: u16) -> Option<&DeviceDescriptor> {
        self.devices.get(&device_id)
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Iterates over descriptors in id order.
    pub fn iter(&self) -> impl Iterator<Item = &DeviceDescriptor> {
        self.devices.values()
    }

    /// All sensors of the given kind.
    pub fn sensors_of_kind(&self, kind: SensorKind) -> Vec<&DeviceDescriptor> {
        self.devices
            .values()
            .filter(|d| d.role == DeviceRole::Sensor && d.kind == Some(kind))
            .collect()
    }

    /// All actuators.
    pub fn actuators(&self) -> Vec<&DeviceDescriptor> {
        self.devices
            .values()
            .filter(|d| d.role == DeviceRole::Actuator)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensor(id: u16, kind: SensorKind) -> DeviceDescriptor {
        DeviceDescriptor {
            device_id: id,
            role: DeviceRole::Sensor,
            kind: Some(kind),
            link: LinkTechnology::Ble,
            location: "here".into(),
        }
    }

    fn actuator(id: u16) -> DeviceDescriptor {
        DeviceDescriptor {
            device_id: id,
            role: DeviceRole::Actuator,
            kind: None,
            link: LinkTechnology::ZigBee,
            location: "there".into(),
        }
    }

    #[test]
    fn register_and_query() {
        let mut reg = DeviceRegistry::new();
        reg.register(sensor(1, SensorKind::Sound))
            .expect("register");
        reg.register(sensor(2, SensorKind::Motion))
            .expect("register");
        reg.register(actuator(3)).expect("register");
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.sensors_of_kind(SensorKind::Sound).len(), 1);
        assert_eq!(reg.sensors_of_kind(SensorKind::Temperature).len(), 0);
        assert_eq!(reg.actuators().len(), 1);
        assert_eq!(reg.get(2).expect("present").kind, Some(SensorKind::Motion));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut reg = DeviceRegistry::new();
        reg.register(sensor(1, SensorKind::Sound))
            .expect("register");
        assert!(reg.register(actuator(1)).is_err());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn sensor_without_kind_rejected() {
        let mut reg = DeviceRegistry::new();
        let mut bad = sensor(1, SensorKind::Sound);
        bad.kind = None;
        assert!(reg.register(bad).is_err());
        assert!(reg.is_empty());
    }

    #[test]
    fn unregister_round_trip() {
        let mut reg = DeviceRegistry::new();
        reg.register(sensor(5, SensorKind::Humidity))
            .expect("register");
        let d = reg.unregister(5).expect("present");
        assert_eq!(d.device_id, 5);
        assert!(reg.unregister(5).is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let mut reg = DeviceRegistry::new();
        reg.register(sensor(1, SensorKind::Sound))
            .expect("register");
        let json = serde_json::to_string(&reg).expect("serialize");
        let back: DeviceRegistry = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, reg);
    }
}
