//! The sensor sample: the unit of data flowing through IFoT.
//!
//! The paper's experiment transmits **32-byte sensor samples**; this module
//! defines that exact wire image. Layout (big-endian):
//!
//! ```text
//! offset  size  field
//! 0       2     magic "IF"
//! 2       1     version (1)
//! 3       1     sensor kind
//! 4       2     device id
//! 6       1     number of valid channel values (0..=3)
//! 7       1     reserved (0)
//! 8       8     timestamp, nanoseconds since epoch/sim start
//! 16      4     sequence number
//! 20      12    three f32 channel values
//! ```

use serde::{Deserialize, Serialize};

/// Exact encoded size of a [`Sample`], per the paper's experiment.
pub const SAMPLE_WIRE_SIZE: usize = 32;

const MAGIC: [u8; 2] = *b"IF";
const VERSION: u8 = 1;

/// What a sensor measures. Mirrors the devices named in the paper's
/// application scenarios (Section III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorKind {
    /// Three-axis accelerometer (elderly monitoring).
    Accelerometer,
    /// Ambient light level (home appliance control).
    Illuminance,
    /// Sound pressure level (home appliance control).
    Sound,
    /// Binary/graded motion detection (home appliance control).
    Motion,
    /// Air temperature.
    Temperature,
    /// Relative humidity.
    Humidity,
    /// Person-flow count (mobility support).
    PersonFlow,
}

impl SensorKind {
    /// Wire byte of the kind.
    pub fn to_byte(self) -> u8 {
        match self {
            SensorKind::Accelerometer => 0,
            SensorKind::Illuminance => 1,
            SensorKind::Sound => 2,
            SensorKind::Motion => 3,
            SensorKind::Temperature => 4,
            SensorKind::Humidity => 5,
            SensorKind::PersonFlow => 6,
        }
    }

    /// Parses the wire byte.
    ///
    /// # Errors
    ///
    /// Returns the raw value for unknown kinds.
    pub fn from_byte(b: u8) -> Result<Self, u8> {
        Ok(match b {
            0 => SensorKind::Accelerometer,
            1 => SensorKind::Illuminance,
            2 => SensorKind::Sound,
            3 => SensorKind::Motion,
            4 => SensorKind::Temperature,
            5 => SensorKind::Humidity,
            6 => SensorKind::PersonFlow,
            other => return Err(other),
        })
    }

    /// Number of channels this kind produces.
    pub fn channels(self) -> usize {
        match self {
            SensorKind::Accelerometer => 3,
            _ => 1,
        }
    }

    /// Conventional channel names, used to build ML datum keys.
    pub fn channel_names(self) -> &'static [&'static str] {
        match self {
            SensorKind::Accelerometer => &["x", "y", "z"],
            SensorKind::Illuminance => &["lux"],
            SensorKind::Sound => &["db"],
            SensorKind::Motion => &["level"],
            SensorKind::Temperature => &["celsius"],
            SensorKind::Humidity => &["percent"],
            SensorKind::PersonFlow => &["count"],
        }
    }
}

/// Errors decoding a sample from its 32-byte wire image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleError {
    /// Input is not exactly [`SAMPLE_WIRE_SIZE`] bytes.
    WrongSize(usize),
    /// Magic bytes missing.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// Unknown sensor kind byte.
    BadKind(u8),
    /// Channel count exceeds 3.
    BadChannelCount(u8),
}

impl core::fmt::Display for SampleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SampleError::WrongSize(n) => write!(f, "sample must be 32 bytes, got {n}"),
            SampleError::BadMagic => write!(f, "sample magic bytes missing"),
            SampleError::BadVersion(v) => write!(f, "unknown sample version {v}"),
            SampleError::BadKind(k) => write!(f, "unknown sensor kind {k}"),
            SampleError::BadChannelCount(c) => write!(f, "invalid channel count {c}"),
        }
    }
}

impl std::error::Error for SampleError {}

/// One timestamped sensor reading (up to three channels).
///
/// ```
/// use ifot_sensors::sample::{Sample, SensorKind};
///
/// let s = Sample::new(SensorKind::Temperature, 7, 123, 1_000_000, &[21.5]);
/// let bytes = s.encode();
/// assert_eq!(bytes.len(), 32);
/// assert_eq!(Sample::decode(&bytes)?, s);
/// # Ok::<(), ifot_sensors::sample::SampleError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// What produced the reading.
    pub kind: SensorKind,
    /// Numeric device identifier.
    pub device_id: u16,
    /// Monotone per-device sequence number.
    pub seq: u32,
    /// Sensing instant in nanoseconds.
    pub timestamp_ns: u64,
    /// Channel values (1..=3 entries).
    pub values: Vec<f32>,
}

impl Sample {
    /// Builds a sample, truncating `values` to three channels.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(
        kind: SensorKind,
        device_id: u16,
        seq: u32,
        timestamp_ns: u64,
        values: &[f32],
    ) -> Self {
        assert!(!values.is_empty(), "a sample carries at least one value");
        Sample {
            kind,
            device_id,
            seq,
            timestamp_ns,
            values: values.iter().copied().take(3).collect(),
        }
    }

    /// Encodes to the fixed 32-byte wire image.
    pub fn encode(&self) -> [u8; SAMPLE_WIRE_SIZE] {
        let mut out = [0u8; SAMPLE_WIRE_SIZE];
        out[0..2].copy_from_slice(&MAGIC);
        out[2] = VERSION;
        out[3] = self.kind.to_byte();
        out[4..6].copy_from_slice(&self.device_id.to_be_bytes());
        out[6] = self.values.len() as u8;
        out[7] = 0;
        out[8..16].copy_from_slice(&self.timestamp_ns.to_be_bytes());
        out[16..20].copy_from_slice(&self.seq.to_be_bytes());
        for (i, v) in self.values.iter().take(3).enumerate() {
            let off = 20 + i * 4;
            out[off..off + 4].copy_from_slice(&v.to_be_bytes());
        }
        out
    }

    /// Encodes to a shared [`bytes::Bytes`] buffer — the allocation the
    /// zero-copy publish path reference-shares all the way to subscribers.
    pub fn encode_bytes(&self) -> bytes::Bytes {
        bytes::Bytes::copy_from_slice(&self.encode())
    }

    /// Decodes from a 32-byte wire image.
    ///
    /// # Errors
    ///
    /// Returns [`SampleError`] for wrong size, magic, version, kind or
    /// channel count.
    pub fn decode(bytes: &[u8]) -> Result<Self, SampleError> {
        if bytes.len() != SAMPLE_WIRE_SIZE {
            return Err(SampleError::WrongSize(bytes.len()));
        }
        if bytes[0..2] != MAGIC {
            return Err(SampleError::BadMagic);
        }
        if bytes[2] != VERSION {
            return Err(SampleError::BadVersion(bytes[2]));
        }
        let kind = SensorKind::from_byte(bytes[3]).map_err(SampleError::BadKind)?;
        let device_id = u16::from_be_bytes([bytes[4], bytes[5]]);
        let count = bytes[6];
        if count == 0 || count > 3 {
            return Err(SampleError::BadChannelCount(count));
        }
        let timestamp_ns = u64::from_be_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let seq = u32::from_be_bytes(bytes[16..20].try_into().expect("4 bytes"));
        let mut values = Vec::with_capacity(count as usize);
        for i in 0..count as usize {
            let off = 20 + i * 4;
            values.push(f32::from_be_bytes(
                bytes[off..off + 4].try_into().expect("4 bytes"),
            ));
        }
        Ok(Sample {
            kind,
            device_id,
            seq,
            timestamp_ns,
            values,
        })
    }

    /// The MQTT topic this sample is published to:
    /// `sensor/<device_id>/<kind>` (lower-case kind).
    pub fn topic(&self) -> String {
        format!("sensor/{}/{}", self.device_id, kind_slug(self.kind))
    }
}

/// Lower-case slug of a kind, used in topics.
pub fn kind_slug(kind: SensorKind) -> &'static str {
    match kind {
        SensorKind::Accelerometer => "accel",
        SensorKind::Illuminance => "illuminance",
        SensorKind::Sound => "sound",
        SensorKind::Motion => "motion",
        SensorKind::Temperature => "temperature",
        SensorKind::Humidity => "humidity",
        SensorKind::PersonFlow => "personflow",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_image_is_exactly_32_bytes() {
        let s = Sample::new(SensorKind::Accelerometer, 1, 2, 3, &[0.1, 0.2, 0.3]);
        assert_eq!(s.encode().len(), SAMPLE_WIRE_SIZE);
    }

    #[test]
    fn round_trip_all_kinds() {
        for (i, kind) in [
            SensorKind::Accelerometer,
            SensorKind::Illuminance,
            SensorKind::Sound,
            SensorKind::Motion,
            SensorKind::Temperature,
            SensorKind::Humidity,
            SensorKind::PersonFlow,
        ]
        .into_iter()
        .enumerate()
        {
            let n = kind.channels();
            let values: Vec<f32> = (0..n).map(|j| (i * 10 + j) as f32 * 0.5).collect();
            let s = Sample::new(kind, i as u16, i as u32 * 7, i as u64 * 1000, &values);
            let decoded = Sample::decode(&s.encode()).expect("round trip");
            assert_eq!(decoded, s);
        }
    }

    #[test]
    fn kind_bytes_round_trip() {
        for b in 0..7u8 {
            let k = SensorKind::from_byte(b).expect("known kind");
            assert_eq!(k.to_byte(), b);
        }
        assert_eq!(SensorKind::from_byte(99), Err(99));
    }

    #[test]
    fn decode_rejects_malformed() {
        let good = Sample::new(SensorKind::Sound, 1, 1, 1, &[1.0]).encode();
        assert_eq!(Sample::decode(&good[..31]), Err(SampleError::WrongSize(31)));
        let mut bad = good;
        bad[0] = b'X';
        assert_eq!(Sample::decode(&bad), Err(SampleError::BadMagic));
        let mut bad = good;
        bad[2] = 9;
        assert_eq!(Sample::decode(&bad), Err(SampleError::BadVersion(9)));
        let mut bad = good;
        bad[3] = 200;
        assert_eq!(Sample::decode(&bad), Err(SampleError::BadKind(200)));
        let mut bad = good;
        bad[6] = 0;
        assert_eq!(Sample::decode(&bad), Err(SampleError::BadChannelCount(0)));
        let mut bad = good;
        bad[6] = 4;
        assert_eq!(Sample::decode(&bad), Err(SampleError::BadChannelCount(4)));
    }

    #[test]
    fn values_truncated_to_three() {
        let s = Sample::new(SensorKind::Accelerometer, 1, 1, 1, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.values.len(), 3);
    }

    #[test]
    fn topic_shape() {
        let s = Sample::new(SensorKind::Motion, 42, 0, 0, &[1.0]);
        assert_eq!(s.topic(), "sensor/42/motion");
    }

    #[test]
    fn channel_names_match_counts() {
        for kind in [
            SensorKind::Accelerometer,
            SensorKind::Illuminance,
            SensorKind::PersonFlow,
        ] {
            assert_eq!(kind.channel_names().len(), kind.channels());
        }
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_values_rejected() {
        let _ = Sample::new(SensorKind::Sound, 1, 1, 1, &[]);
    }
}
