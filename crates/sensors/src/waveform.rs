//! Signal generators for virtual sensors.
//!
//! Each generator is a deterministic function of the query time plus its
//! own seeded RNG, so a virtual testbed replays identically for a given
//! seed regardless of the sampling schedule that drives it.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A time-parameterized scalar signal.
///
/// Implementations must be deterministic given their construction
/// parameters (including seed) and the sequence of query times.
pub trait Signal: Send {
    /// The signal value at `t_ns` nanoseconds.
    fn value_at(&mut self, t_ns: u64) -> f64;
}

impl std::fmt::Debug for dyn Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Signal")
    }
}

/// A constant level.
#[derive(Debug, Clone, Copy)]
pub struct Constant(pub f64);

impl Signal for Constant {
    fn value_at(&mut self, _t_ns: u64) -> f64 {
        self.0
    }
}

/// A sine wave: `offset + amplitude * sin(2π f t + phase)`.
#[derive(Debug, Clone, Copy)]
pub struct Sine {
    /// Cycles per second.
    pub frequency_hz: f64,
    /// Peak deviation from the offset.
    pub amplitude: f64,
    /// Vertical offset.
    pub offset: f64,
    /// Phase in radians.
    pub phase: f64,
}

impl Sine {
    /// A unit sine at the given frequency.
    pub fn new(frequency_hz: f64) -> Self {
        Sine {
            frequency_hz,
            amplitude: 1.0,
            offset: 0.0,
            phase: 0.0,
        }
    }
}

impl Signal for Sine {
    fn value_at(&mut self, t_ns: u64) -> f64 {
        let t = t_ns as f64 / 1.0e9;
        self.offset
            + self.amplitude * (core::f64::consts::TAU * self.frequency_hz * t + self.phase).sin()
    }
}

/// Zero-mean Gaussian noise with the given standard deviation.
#[derive(Debug)]
pub struct GaussianNoise {
    std_dev: f64,
    rng: SmallRng,
}

impl GaussianNoise {
    /// Creates a noise source.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn new(std_dev: f64, seed: u64) -> Self {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "std_dev must be non-negative"
        );
        GaussianNoise {
            std_dev,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Signal for GaussianNoise {
    fn value_at(&mut self, _t_ns: u64) -> f64 {
        // Box–Muller.
        let u1: f64 = (1.0 - self.rng.gen::<f64>()).max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.gen();
        self.std_dev * (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }
}

/// A bounded random walk: each query steps by a uniform increment and is
/// clamped to `[min, max]`.
#[derive(Debug)]
pub struct RandomWalk {
    value: f64,
    step: f64,
    min: f64,
    max: f64,
    rng: SmallRng,
}

impl RandomWalk {
    /// Creates a walk starting at `start`, stepping at most `step` per
    /// query, clamped to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or `step` is negative.
    pub fn new(start: f64, step: f64, min: f64, max: f64, seed: u64) -> Self {
        assert!(min <= max, "min must not exceed max");
        assert!(step >= 0.0, "step must be non-negative");
        RandomWalk {
            value: start.clamp(min, max),
            step,
            min,
            max,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Signal for RandomWalk {
    fn value_at(&mut self, _t_ns: u64) -> f64 {
        let delta = (self.rng.gen::<f64>() * 2.0 - 1.0) * self.step;
        self.value = (self.value + delta).clamp(self.min, self.max);
        self.value
    }
}

/// A square occupancy-style pulse train: `high` for `duty` of each period,
/// `low` otherwise.
#[derive(Debug, Clone, Copy)]
pub struct Pulse {
    /// Period in nanoseconds.
    pub period_ns: u64,
    /// Fraction of the period spent high (0..=1).
    pub duty: f64,
    /// Low level.
    pub low: f64,
    /// High level.
    pub high: f64,
}

impl Signal for Pulse {
    fn value_at(&mut self, t_ns: u64) -> f64 {
        if self.period_ns == 0 {
            return self.low;
        }
        let phase = (t_ns % self.period_ns) as f64 / self.period_ns as f64;
        if phase < self.duty {
            self.high
        } else {
            self.low
        }
    }
}

/// Replays a recorded trace: sample-and-hold over a fixed-period series,
/// looping at the end.
///
/// This is the substitution point for real recorded sensor data: load a
/// measurement series into `samples` and the virtual sensor replays it on
/// the exact code path a live device would use.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    samples: Vec<f64>,
    period_ns: u64,
}

impl TraceReplay {
    /// Creates a replay of `samples` spaced `period_ns` apart.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `period_ns == 0`.
    pub fn new(samples: Vec<f64>, period_ns: u64) -> Self {
        assert!(!samples.is_empty(), "a trace needs at least one sample");
        assert!(period_ns > 0, "trace period must be positive");
        TraceReplay { samples, period_ns }
    }

    /// Number of samples in one loop of the trace.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty (never true — construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

impl Signal for TraceReplay {
    fn value_at(&mut self, t_ns: u64) -> f64 {
        let idx = (t_ns / self.period_ns) as usize % self.samples.len();
        self.samples[idx]
    }
}

/// Sum of component signals — e.g. sine + noise.
pub struct Composite {
    parts: Vec<Box<dyn Signal>>,
}

impl Composite {
    /// Creates a sum of the given parts.
    pub fn new(parts: Vec<Box<dyn Signal>>) -> Self {
        Composite { parts }
    }
}

impl std::fmt::Debug for Composite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Composite")
            .field("parts", &self.parts.len())
            .finish()
    }
}

impl Signal for Composite {
    fn value_at(&mut self, t_ns: u64) -> f64 {
        self.parts.iter_mut().map(|p| p.value_at(t_ns)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let mut c = Constant(4.2);
        assert_eq!(c.value_at(0), 4.2);
        assert_eq!(c.value_at(1_000_000_000), 4.2);
    }

    #[test]
    fn sine_hits_known_points() {
        let mut s = Sine::new(1.0); // 1 Hz
        assert!(s.value_at(0).abs() < 1e-9);
        assert!((s.value_at(250_000_000) - 1.0).abs() < 1e-9); // quarter period
        assert!(s.value_at(500_000_000).abs() < 1e-9);
        let mut offset = Sine {
            offset: 10.0,
            amplitude: 2.0,
            ..Sine::new(1.0)
        };
        assert!((offset.value_at(250_000_000) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn gaussian_noise_is_seeded_and_zero_mean() {
        let mut a = GaussianNoise::new(1.0, 7);
        let mut b = GaussianNoise::new(1.0, 7);
        let xs: Vec<f64> = (0..5000).map(|_| a.value_at(0)).collect();
        let ys: Vec<f64> = (0..5000).map(|_| b.value_at(0)).collect();
        assert_eq!(xs, ys, "same seed must replay");
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn random_walk_stays_in_bounds() {
        let mut w = RandomWalk::new(0.0, 0.5, -1.0, 1.0, 3);
        for _ in 0..10_000 {
            let v = w.value_at(0);
            assert!((-1.0..=1.0).contains(&v), "escaped bounds: {v}");
        }
    }

    #[test]
    fn random_walk_moves() {
        let mut w = RandomWalk::new(0.0, 0.5, -100.0, 100.0, 3);
        let first = w.value_at(0);
        let distinct = (0..100).map(|_| w.value_at(0)).any(|v| v != first);
        assert!(distinct);
    }

    #[test]
    fn pulse_respects_duty_cycle() {
        let mut p = Pulse {
            period_ns: 1_000,
            duty: 0.25,
            low: 0.0,
            high: 1.0,
        };
        assert_eq!(p.value_at(0), 1.0);
        assert_eq!(p.value_at(200), 1.0);
        assert_eq!(p.value_at(300), 0.0);
        assert_eq!(p.value_at(999), 0.0);
        assert_eq!(p.value_at(1_000), 1.0); // wraps
    }

    #[test]
    fn composite_sums_parts() {
        let mut c = Composite::new(vec![
            Box::new(Constant(1.0)),
            Box::new(Constant(2.0)),
            Box::new(Sine::new(1.0)),
        ]);
        assert!((c.value_at(0) - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn walk_rejects_inverted_bounds() {
        let _ = RandomWalk::new(0.0, 0.1, 1.0, -1.0, 1);
    }

    #[test]
    fn trace_replay_holds_and_loops() {
        let mut t = TraceReplay::new(vec![1.0, 2.0, 3.0], 100);
        assert_eq!(t.value_at(0), 1.0);
        assert_eq!(t.value_at(99), 1.0); // sample-and-hold
        assert_eq!(t.value_at(100), 2.0);
        assert_eq!(t.value_at(250), 3.0);
        assert_eq!(t.value_at(300), 1.0); // loops
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trace_rejected() {
        let _ = TraceReplay::new(vec![], 100);
    }
}
