//! Elderly monitoring (paper Section III-A.1 and Fig. 5).
//!
//! An accelerometer, sound, motion and illuminance sensor watch a living
//! environment. The recipe — written in the IFoT recipe DSL — routes the
//! streams through anomaly detectors into state estimation and alert
//! messaging. A fall is injected into the accelerometer halfway through
//! the run; the alert sink must receive an alert.
//!
//! Runs on the deterministic simulator so the outcome is reproducible.
//!
//! Run with: `cargo run --example elderly_monitoring`

use ifot::core::deploy::deploy;
use ifot::core::sim_adapter::{add_middleware_node, SimNode};
use ifot::core::NodeEvent;
use ifot::netsim::cpu::CpuProfile;
use ifot::netsim::sim::Simulation;
use ifot::netsim::time::SimDuration;
use ifot::recipe::assign::{CapabilityAware, ModuleInfo};
use ifot::recipe::dsl;
use ifot::sensors::inject::{FaultKind, FaultWindow};

const RECIPE: &str = r#"
    # Fig. 5: on-site elderly monitoring.
    recipe elderly {
        task accel:    sense(sensor = "accel", rate_hz = 20);
        task sound:    sense(sensor = "sound", rate_hz = 20);
        task motion:   sense(sensor = "motion", rate_hz = 10);
        task fall:     anomaly(detector = "mahalanobis", threshold = 6);
        task ambient:  anomaly(detector = "zscore", threshold = 6);
        task estimate: estimate(model = "activity");
        task alert:    actuate(actuator = "alert");

        accel -> fall;
        sound -> ambient;
        motion -> ambient;
        fall -> estimate;
        ambient -> estimate;
        fall -> alert;
    }
"#;

fn main() {
    // Step 1 (Fig. 6): the application submits its recipe.
    let recipe = dsl::parse(RECIPE).expect("the bundled recipe is valid");
    println!("recipe {:?}: {} tasks", recipe.name(), recipe.tasks().len());

    // Step 2: split and assign onto the available neuron modules.
    let modules = vec![
        ModuleInfo::new("bedroom", 1.0).with_capability("sensor:accel"),
        ModuleInfo::new("living-room", 1.0)
            .with_capability("sensor:sound")
            .with_capability("sensor:motion"),
        ModuleInfo::new("gateway", 1.0).with_capability("actuator:alert"),
    ];
    let plan = deploy(&recipe, &modules, &CapabilityAware, "gateway").expect("deployment succeeds");
    for (task, module) in plan.assignment.iter() {
        println!("  task {task:<10} -> {module}");
    }

    // Step 3: instantiate the classes on a simulated testbed and inject a
    // fall (a large accelerometer spike) between t=4s and t=4.5s.
    let mut sim = Simulation::new(7);
    let mut ids = Vec::new();
    for mut cfg in plan.configs.clone() {
        for sensor in &mut cfg.sensors {
            if sensor.kind == ifot::sensors::sample::SensorKind::Accelerometer {
                sensor.faults.push(FaultWindow {
                    from_ns: 4_000_000_000,
                    until_ns: 4_500_000_000,
                    kind: FaultKind::Spike { magnitude: 30.0 },
                });
            }
        }
        ids.push(add_middleware_node(
            &mut sim,
            CpuProfile::RASPBERRY_PI_2,
            cfg,
        ));
    }
    sim.run_for(SimDuration::from_secs(8));

    // Harvest results.
    println!("\n--- run complete at {} ---", sim.now());
    println!(
        "samples: {} taken, {} injected anomalous",
        sim.metrics().counter("samples_taken"),
        sim.metrics().counter("samples_anomalous"),
    );
    println!(
        "anomalies flagged: {}",
        sim.metrics().counter("anomaly_flagged")
    );

    let mut alerts = 0;
    for &id in &ids {
        let node: &SimNode = sim.actor_as(id).expect("middleware node");
        for event in node.middleware().events() {
            if let NodeEvent::ActuatorApplied {
                device_id,
                description,
                at_ns,
            } = event
            {
                alerts += 1;
                println!(
                    "  alert via device {} at t={:.2}s: {}",
                    device_id,
                    *at_ns as f64 / 1e9,
                    description
                );
            }
        }
    }
    assert!(alerts > 0, "the injected fall must raise an alert");
    println!("\nfall detected and alerted — OK");
}
