//! Context-aware home appliance control (paper Section III-A.2).
//!
//! Illuminance, sound and motion sensors estimate the room context; the
//! middleware drives a ceiling light and an air conditioner from the
//! estimate — sensing, analysis and actuation all local, no cloud.
//!
//! Runs on the real-thread runtime to show the middleware operating in
//! wall-clock time.
//!
//! Run with: `cargo run --example home_automation`

use std::time::Duration;

use ifot::core::config::{
    ActuatorKindSpec, ActuatorSpec, NodeConfig, OperatorKind, OperatorSpec, SensorSpec,
};
use ifot::core::thread_rt::ClusterBuilder;
use ifot::sensors::sample::SensorKind;

fn main() {
    // The living-room module senses; the gateway runs broker + analysis +
    // actuators (a deliberately centralized placement to contrast with
    // the distributed examples).
    let sensing = NodeConfig::new("living-room")
        .with_app("home")
        .with_broker_node("gateway")
        .with_sensor(SensorSpec::new(SensorKind::Illuminance, 1, 10.0, 11))
        .with_sensor(SensorSpec::new(SensorKind::Sound, 2, 10.0, 22))
        .with_sensor(SensorSpec::new(SensorKind::Motion, 3, 5.0, 33));

    let gateway = NodeConfig::new("gateway")
        .with_app("home")
        .with_broker()
        .with_broker_node("gateway") // its own client talks to the local broker
        .with_operator(
            OperatorSpec::through(
                "context",
                OperatorKind::Window { size_ms: 300 },
                vec!["sensor/#".into()],
                "flow/home/context",
            )
            .local_only(),
        )
        .with_operator(
            OperatorSpec::through(
                "comfort",
                OperatorKind::Estimate {
                    model: "comfort".into(),
                },
                vec!["flow/home/context".into()],
                "flow/home/comfort",
            )
            .local_only(),
        )
        .with_operator(OperatorSpec::sink(
            "drive-light",
            OperatorKind::Actuate { device_id: 100 },
            vec!["flow/home/decision".into()],
        ))
        .with_operator(OperatorSpec::sink(
            "drive-ac",
            OperatorKind::Actuate { device_id: 101 },
            vec!["flow/home/decision-ac".into()],
        ))
        .with_actuator(ActuatorSpec {
            device_id: 100,
            kind: ActuatorKindSpec::CeilingLight,
        })
        .with_actuator(ActuatorSpec {
            device_id: 101,
            kind: ActuatorKindSpec::AirConditioner,
        });

    let cluster = ClusterBuilder::new().node(gateway).node(sensing).start();
    println!("home-automation cluster running for 2 seconds...");

    // The decision policy lives application-side here: read the comfort
    // estimate off the flow and issue actuator decisions through the
    // middleware's own flow topics (decisions are FlowMessages whose
    // datum keys the Actuate operator maps onto commands).
    // For the demo we inject two decisions mid-run, as an application
    // (or a smarter Estimate operator) would.
    std::thread::sleep(Duration::from_millis(800));
    inject_decision(&cluster, "flow/home/decision", &[("level", 0.6)]);
    inject_decision(&cluster, "flow/home/decision-ac", &[("power", 1.0)]);
    std::thread::sleep(Duration::from_millis(200));
    inject_decision(
        &cluster,
        "flow/home/decision-ac",
        &[("target_celsius", 22.0)],
    );

    let report = cluster.run_for(Duration::from_secs(1));

    println!("\n--- results ---");
    println!(
        "samples published : {}",
        report.metrics.counter("published")
    );
    println!(
        "context windows   : {}",
        report.metrics.counter("window_flushes")
    );
    println!(
        "comfort estimates : {}",
        report.metrics.counter("estimates")
    );
    println!(
        "commands applied  : {}",
        report.metrics.counter("commands_applied")
    );
    let gw = report.node("gateway").expect("gateway node");
    let light = gw.ceiling_light(100).expect("light hosted");
    let ac = gw.air_conditioner(101).expect("ac hosted");
    println!("light level       : {:.0}%", light.level() * 100.0);
    println!(
        "air conditioner   : {} target {:.1}C",
        if ac.is_on() { "on" } else { "off" },
        ac.target_celsius()
    );
    assert!(light.level() > 0.0, "light decision must be applied");
    assert!(ac.is_on(), "AC decision must be applied");
    println!("\nappliances follow the decisions — OK");
}

/// Publishes a decision FlowMessage into the cluster via the broker, the
/// way an application node would.
fn inject_decision(
    cluster: &ifot::core::thread_rt::RunningCluster,
    topic: &str,
    keys: &[(&str, f64)],
) {
    use ifot::core::flow::FlowMessage;
    use ifot::ml::feature::Datum;
    use ifot::mqtt::codec::encode;
    use ifot::mqtt::packet::{Connect, Packet, Publish};
    use ifot::mqtt::topic::TopicName;

    let mut datum = Datum::new();
    for (k, v) in keys {
        datum.set(*k, *v);
    }
    let message = FlowMessage {
        producer: "app".into(),
        origin_ts_ns: cluster.now_ns(),
        seq: 0,
        datum,
        label: None,
        score: None,
    };
    // One-shot MQTT session: CONNECT then PUBLISH (QoS 0).
    let connect = encode(&Packet::Connect(Connect::new("decision-app")));
    let publish = encode(&Packet::Publish(Publish::qos0(
        TopicName::new(topic).expect("valid decision topic"),
        message.encode(),
    )));
    cluster.inject(
        "gateway",
        "decision-app",
        ifot::core::MQTT_BROKER_PORT,
        connect,
    );
    cluster.inject(
        "gateway",
        "decision-app",
        ifot::core::MQTT_BROKER_PORT,
        publish,
    );
}
