//! The management software screen (paper Fig. 8).
//!
//! Builds the paper's six-module evaluation testbed (Fig. 7), runs it on
//! the simulator, and prints periodic snapshots of the management
//! console: every module with its deployed classes and live statistics —
//! what the OpenRTM-based management software showed in the paper.
//!
//! Run with: `cargo run --example management_console [rate_hz]`

use ifot::mgmt::monitor::{capture_simulation, render_screen};
use ifot::mgmt::testbed::{paper_testbed, TestbedConfig};
use ifot::netsim::time::SimDuration;

fn main() {
    let rate_hz = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20.0);
    let mut sim = paper_testbed(&TestbedConfig::paper(rate_hz));
    println!("paper testbed at {rate_hz} Hz; snapshots each second:\n");

    for second in 1..=4u64 {
        sim.run_for(SimDuration::from_secs(1));
        let statuses = capture_simulation(&sim);
        println!("{}", render_screen(&statuses, &format!("t={second}s")));
    }

    let train = sim.metrics().latency_summary("sensing_to_training");
    let predict = sim.metrics().latency_summary("sensing_to_predicting");
    println!(
        "sensing→training  : avg {:.1} ms over {} tuples",
        train.mean_ms, train.count
    );
    println!(
        "sensing→predicting: avg {:.1} ms over {} tuples",
        predict.mean_ms, predict.count
    );
}
