//! Context-aware mobility support (paper Section III-A.3).
//!
//! Person-flow sensors at two points of interest estimate crowdedness.
//! Each area trains a local online classifier on its own stream and the
//! *Managing class* keeps the models consistent with Jubatus-style MIX
//! rounds over MQTT, so either area can answer "crowded or calm?" about
//! flows it never saw.
//!
//! Run with: `cargo run --example mobility_support`

use ifot::core::config::{NodeConfig, OperatorKind, OperatorSpec, SensorSpec};
use ifot::core::sim_adapter::{add_middleware_node, SimNode};
use ifot::core::NodeEvent;
use ifot::netsim::cpu::CpuProfile;
use ifot::netsim::sim::Simulation;
use ifot::netsim::time::SimDuration;
use ifot::sensors::sample::SensorKind;

fn main() {
    let mut sim = Simulation::new(99);

    // City gateway: broker + MIX coordinator for the two areas.
    add_middleware_node(
        &mut sim,
        CpuProfile::THINKPAD_X250,
        NodeConfig::new("city-gateway")
            .with_app("mobility")
            .with_broker()
            .with_broker_node("city-gateway")
            .with_operator(OperatorSpec::sink(
                "mix-coordinator",
                OperatorKind::MixCoordinator { expected: 2 },
                vec![
                    "mix/mobility/classify-park/offer".into(),
                    "mix/mobility/classify-station/offer".into(),
                ],
            )),
    );

    // Two PoI areas, each sensing person flow and training locally.
    let area = |name: &str, task: &str, device: u16, seed: u64| {
        NodeConfig::new(name)
            .with_app("mobility")
            .with_broker_node("city-gateway")
            .with_sensor(SensorSpec::new(SensorKind::PersonFlow, device, 10.0, seed))
            .with_operator(OperatorSpec::sink(
                task,
                OperatorKind::Train {
                    algorithm: "arow".into(),
                    mix_interval_ms: 1_000,
                },
                vec![
                    format!("sensor/{device}/personflow"),
                    // Receive the coordinator's averaged model back.
                    format!("mix/mobility/{task}/avg"),
                ],
            ))
    };
    let park = add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        area("park", "classify-park", 1, 21),
    );
    let station = add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        area("station", "classify-station", 2, 22),
    );

    // NOTE: the coordinator averages offers from *both* areas per round
    // (expected: 2) and publishes per-task averages; each area imports
    // the average for its own task id.
    println!("mobility cluster running for 12 seconds of virtual time...");
    sim.run_for(SimDuration::from_secs(12));

    println!("\n--- results ---");
    println!("trained updates : {}", sim.metrics().counter("trained"));
    println!("mix offers      : {}", sim.metrics().counter("mix_offered"));
    println!("mix imports     : {}", sim.metrics().counter("mix_imports"));

    let gateway_id = sim.node_id("city-gateway").expect("gateway registered");
    let gateway: &SimNode = sim.actor_as(gateway_id).expect("gateway node");
    let rounds = gateway
        .middleware()
        .events()
        .iter()
        .filter(|e| matches!(e, NodeEvent::MixRound { .. }))
        .count();
    println!("mix rounds      : {rounds}");

    // Both areas end up with models that classify a crowded flow the
    // same way — the MIX synchronized them.
    let probe = ifot::ml::feature::Datum::new()
        .with("personflow_count", 9.0)
        .to_vector(1 << 18);
    let park_node: &SimNode = sim.actor_as(park).expect("park node");
    let station_node: &SimNode = sim.actor_as(station).expect("station node");
    let park_label = park_node
        .middleware()
        .classifier("classify-park")
        .and_then(|m| m.classify(&probe));
    let station_label = station_node
        .middleware()
        .classifier("classify-station")
        .and_then(|m| m.classify(&probe));
    println!("park classifies a 9-person flow as    : {park_label:?}");
    println!("station classifies a 9-person flow as : {station_label:?}");

    assert!(rounds > 0, "at least one MIX round must complete");
    assert!(
        sim.metrics().counter("mix_imports") > 0,
        "averages must be imported"
    );
    assert!(park_label.is_some() && station_label.is_some());
    println!("\ndistributed training with MIX synchronization — OK");
}
