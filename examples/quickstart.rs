//! Quickstart: the smallest complete IFoT deployment, on real threads.
//!
//! Three neuron modules: a broker, a temperature-sensing module and an
//! analysis module scoring the stream for anomalies — the middleware's
//! flow distribution + flow analysis + device integration in ~40 lines.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use ifot::core::config::{NodeConfig, OperatorKind, OperatorSpec, SensorSpec};
use ifot::core::thread_rt::ClusterBuilder;
use ifot::sensors::sample::SensorKind;

fn main() {
    // Build the three-module cluster (Fig. 3's layers in miniature).
    let cluster = ClusterBuilder::new()
        .node(NodeConfig::new("broker").with_broker())
        .node(
            NodeConfig::new("kitchen")
                .with_broker_node("broker")
                .with_sensor(SensorSpec::new(SensorKind::Temperature, 1, 20.0, 42)),
        )
        .node(
            NodeConfig::new("analysis")
                .with_broker_node("broker")
                .with_operator(OperatorSpec::sink(
                    "watch",
                    OperatorKind::Anomaly {
                        detector: "zscore".into(),
                        threshold: 3.0,
                    },
                    vec!["sensor/#".into()],
                )),
        )
        .start();

    println!("cluster running; sampling at 20 Hz for 2 seconds...");
    let report = cluster.run_for(Duration::from_secs(2));

    println!("\n--- results ---");
    println!(
        "samples published : {}",
        report.metrics.counter("published")
    );
    println!(
        "items scored      : {}",
        report.metrics.counter("anomaly_scored")
    );
    println!(
        "anomalies flagged : {}",
        report.metrics.counter("anomaly_flagged")
    );
    let latency = report.metrics.latency_summary("sensing_to_anomaly");
    println!(
        "sensing→analysis  : avg {:.2} ms, max {:.2} ms over {} items",
        latency.mean_ms, latency.max_ms, latency.count
    );
    for node in &report.nodes {
        for line in node.describe_classes() {
            println!("[{}] {}", node.name(), line);
        }
    }
}
