//! Stream search over dynamically joining/leaving devices — the paper's
//! future-work item, running end-to-end.
//!
//! Modules announce themselves on a retained MQTT topic when they join;
//! an observer maintains a [`FlowDirectory`] and answers queries like
//! "which temperature streams exist right now?". A module dies mid-run
//! and its last will removes it from the directory.
//!
//! Run with: `cargo run --example stream_search`

use ifot::core::config::{NodeConfig, SensorSpec};
use ifot::core::sim_adapter::{add_middleware_node, SimNode};
use ifot::netsim::cpu::CpuProfile;
use ifot::netsim::sim::Simulation;
use ifot::netsim::time::SimDuration;
use ifot::sensors::sample::SensorKind;

fn main() {
    let mut sim = Simulation::new(4);
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("broker").with_broker(),
    );
    let observer = add_middleware_node(
        &mut sim,
        CpuProfile::THINKPAD_X250,
        NodeConfig::new("observer")
            .with_broker_node("broker")
            .with_directory(),
    );

    let sensor_node = |name: &str, kind, device, seed| {
        NodeConfig::new(name)
            .with_broker_node("broker")
            .with_announce()
            .with_sensor(SensorSpec::new(kind, device, 10.0, seed))
    };

    println!("t=0s: kitchen and porch join");
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        sensor_node("kitchen", SensorKind::Temperature, 1, 11),
    );
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        sensor_node("porch", SensorKind::Motion, 2, 22),
    );
    sim.run_for(SimDuration::from_secs(2));
    print_directory(&sim, observer, "t=2s");

    println!("\nt=2s: a third module (garden) joins dynamically");
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        sensor_node("garden", SensorKind::Humidity, 3, 33),
    );
    sim.run_for(SimDuration::from_secs(2));
    print_directory(&sim, observer, "t=4s");

    println!("\nt=4s: kitchen dies ungracefully (its will cleans the directory)");
    let kitchen = sim.node_id("kitchen").expect("registered");
    sim.set_node_up(kitchen, false);
    sim.run_for(SimDuration::from_secs(60)); // beyond keep-alive expiry
    print_directory(&sim, observer, "t=64s");

    let node: &SimNode = sim.actor_as(observer).expect("observer");
    let dir = node.middleware().directory();
    assert_eq!(dir.online_nodes(), vec!["garden", "porch"]);
    assert!(dir.search_kind("temperature").is_empty());
    println!("\ndynamic join/leave tracked correctly — OK");
}

fn print_directory(sim: &Simulation, observer: ifot::netsim::actor::NodeId, label: &str) {
    let node: &SimNode = sim.actor_as(observer).expect("observer");
    let dir = node.middleware().directory();
    println!("  [{label}] online: {:?}", dir.online_nodes());
    for query in ["sensor/#", "sensor/+/temperature"] {
        let hits: Vec<String> = dir
            .search_topic(query)
            .into_iter()
            .map(|(node, s)| format!("{node}:{}", s.topic))
            .collect();
        println!("  [{label}] search {query:<22} -> {hits:?}");
    }
}
