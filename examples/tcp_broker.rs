//! The MQTT substrate over real sockets: serve the broker on TCP and
//! exchange messages between two blocking clients — no simulator, no
//! middleware, just the protocol stack a downstream user could deploy in
//! place of Mosquitto.
//!
//! Run with: `cargo run --example tcp_broker`

use std::time::Duration;

use ifot::mqtt::net::{TcpBroker, TcpClient};
use ifot::mqtt::packet::QoS;

fn main() -> std::io::Result<()> {
    let broker = TcpBroker::bind("127.0.0.1:0")?;
    let addr = broker.local_addr();
    println!("broker serving MQTT on {addr}");

    let mut subscriber = TcpClient::connect(addr, "tcp-subscriber")?;
    subscriber.subscribe("demo/#", QoS::ExactlyOnce)?;
    println!("subscriber connected and subscribed to demo/#");

    let mut publisher = TcpClient::connect(addr, "tcp-publisher")?;
    for (i, qos) in [QoS::AtMostOnce, QoS::AtLeastOnce, QoS::ExactlyOnce]
        .into_iter()
        .enumerate()
    {
        let payload = format!("message {i} at {qos:?}");
        publisher.publish("demo/stream", payload.into_bytes(), qos, false)?;
    }

    let mut received = 0;
    while received < 3 {
        publisher.drive()?; // pump acknowledgement flows
        if let Some(message) = subscriber.recv(Duration::from_millis(200))? {
            println!(
                "received on {}: {}",
                message.topic,
                String::from_utf8_lossy(&message.payload)
            );
            received += 1;
        }
    }

    let stats = broker.stats();
    println!(
        "broker stats: {} clients, {} in, {} out",
        stats.clients_connected, stats.messages_in, stats.messages_out
    );
    assert_eq!(received, 3);

    publisher.disconnect();
    subscriber.disconnect();
    broker.shutdown();
    println!("clean shutdown — OK");
    Ok(())
}
