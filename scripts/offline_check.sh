#!/usr/bin/env bash
# Runs cargo against the .offline-stubs stand-ins so the workspace can be
# typechecked (and the non-serde crates tested) without registry access.
#
#   scripts/offline_check.sh check --workspace
#   scripts/offline_check.sh test -p ifot-mqtt --lib
#   scripts/offline_check.sh clippy --workspace --all-targets -- -D warnings
#
# The stubs are activated purely via command-line --config patches; the
# committed manifests never reference them, so normal (online) builds are
# unaffected.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
stubs="$repo/.offline-stubs"

args=()
for crate in bytes parking_lot crossbeam rand serde serde_json proptest criterion; do
    args+=(--config "patch.crates-io.$crate.path=\"$stubs/$crate\"")
done

# The subcommand must come first: external subcommands like clippy do not
# see global flags given before their own name.
cmd="$1"
shift
exec cargo "$cmd" "${args[@]}" --offline "$@"
