//! Umbrella crate re-exporting the whole IFoT middleware stack.
pub use ifot_core as core;
pub use ifot_mgmt as mgmt;
pub use ifot_ml as ml;
pub use ifot_mqtt as mqtt;
pub use ifot_netsim as netsim;
pub use ifot_recipe as recipe;
pub use ifot_sensors as sensors;
