//! Integration: the event-loop broker front-end at connection counts a
//! thread-per-connection design cannot reach.
//!
//! The subscriber swarm is driven from **one** test thread through the
//! same readiness poller the broker uses ([`ifot::mqtt::poll::Poller`]):
//! every swarm socket is nonblocking, handshakes are pipelined
//! (CONNECT and SUBSCRIBE written back-to-back), and receipt counting
//! happens in a poll loop. This keeps the test's own footprint at two
//! threads no matter the swarm size, so the asserted broker property —
//! thread count fixed at `shards + 1` while thousands of sockets are
//! being serviced — is measured without the test itself distorting
//! `/proc/self`.
//!
//! The non-ignored test runs a few hundred connections so CI stays
//! fast; `c10k_fanout_smoke` scales to ~10 000 (bounded by
//! `RLIMIT_NOFILE`: each swarm connection costs the process two fds,
//! one client end + one broker end) and is `#[ignore]`d for on-demand
//! runs: `cargo test --release --test broker_c10k -- --ignored`.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::AsRawFd;
use std::time::{Duration, Instant};

use ifot::mqtt::broker::BrokerConfig;
use ifot::mqtt::codec::{encode, StreamDecoder};
use ifot::mqtt::net::{mqtt_thread_count, TcpBroker, TcpClient};
use ifot::mqtt::packet::{Connect, Packet, QoS, Subscribe, SubscribeFilter};
use ifot::mqtt::poll::{Event, Interest, Poller};
use ifot::mqtt::topic::TopicFilter;

/// One subscriber socket of the swarm.
struct SwarmConn {
    stream: TcpStream,
    decoder: StreamDecoder,
    connacked: bool,
    subacked: bool,
    delivered: u64,
}

/// Connects `count` subscribers to `addr`, all subscribed to `filter`,
/// with pipelined handshakes. Returns once every CONNACK and SUBACK has
/// arrived.
fn connect_swarm(addr: SocketAddr, count: usize, filter: &str) -> Vec<SwarmConn> {
    let poller = Poller::new().expect("swarm poller");
    let mut conns: Vec<SwarmConn> = Vec::with_capacity(count);
    for i in 0..count {
        let stream = TcpStream::connect(addr).expect("swarm connect");
        stream.set_nodelay(true).expect("nodelay");
        stream.set_nonblocking(true).expect("nonblocking");
        // Pipeline the whole handshake: both packets fit any fresh
        // socket buffer, so these writes cannot block.
        let mut hello = Vec::new();
        hello.extend_from_slice(&encode(&Packet::Connect(Connect {
            client_id: format!("swarm-{i}"),
            clean_session: true,
            keep_alive_secs: 0,
            will: None,
            username: None,
            password: None,
        })));
        hello.extend_from_slice(&encode(&Packet::Subscribe(Subscribe {
            packet_id: 1,
            filters: vec![SubscribeFilter {
                filter: TopicFilter::new(filter).expect("valid filter"),
                qos: QoS::AtMostOnce,
            }],
        })));
        (&stream).write_all(&hello).expect("pipelined handshake");
        poller
            .register(stream.as_raw_fd(), i as u64, Interest::READABLE, false)
            .expect("register swarm socket");
        conns.push(SwarmConn {
            stream,
            decoder: StreamDecoder::new(),
            connacked: false,
            subacked: false,
            delivered: 0,
        });
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut ready = 0usize;
    while ready < count {
        assert!(
            Instant::now() < deadline,
            "only {ready}/{count} handshakes completed in 60s"
        );
        pump_swarm(&poller, &mut conns, &mut |conn| {
            if conn.connacked && conn.subacked {
                ready += 1;
            }
        });
    }
    // The poller drops here; receipt counting re-polls with a fresh one
    // so the two phases cannot leak events into each other.
    conns
}

/// One poll-and-read sweep over the swarm. `on_ready` fires when a
/// connection completes its handshake (CONNACK + SUBACK observed).
fn pump_swarm(poller: &Poller, conns: &mut [SwarmConn], on_ready: &mut dyn FnMut(&SwarmConn)) {
    let mut events: Vec<Event> = Vec::new();
    poller
        .wait(&mut events, Some(Duration::from_millis(200)))
        .expect("swarm wait");
    let mut buf = [0u8; 16 * 1024];
    for ev in &events {
        let conn = &mut conns[ev.token as usize];
        loop {
            match (&conn.stream).read(&mut buf) {
                Ok(0) => panic!("broker closed a swarm connection"),
                Ok(n) => {
                    conn.decoder.feed(&buf[..n]);
                    let was_ready = conn.connacked && conn.subacked;
                    while let Some(packet) = conn.decoder.next_packet().expect("valid stream") {
                        match packet {
                            Packet::Connack(c) => {
                                assert_eq!(c.code, ifot::mqtt::packet::ConnectReturnCode::Accepted);
                                conn.connacked = true;
                            }
                            Packet::Suback(_) => conn.subacked = true,
                            Packet::Publish(_) => conn.delivered += 1,
                            other => panic!("unexpected packet in swarm: {other:?}"),
                        }
                    }
                    if !was_ready && conn.connacked && conn.subacked {
                        on_ready(conn);
                    }
                    if n < buf.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => panic!("swarm read failed: {e}"),
            }
        }
    }
}

/// Drives a fan-out round: publishes `publishes` messages, then polls
/// the swarm until every connection has received all of them (or the
/// deadline passes). Returns total deliveries.
fn fanout_round(addr: SocketAddr, conns: &mut [SwarmConn], publishes: u64) -> u64 {
    let poller = Poller::new().expect("fanout poller");
    for (i, conn) in conns.iter().enumerate() {
        poller
            .register(conn.stream.as_raw_fd(), i as u64, Interest::READABLE, false)
            .expect("re-register swarm socket");
    }
    let mut publisher = TcpClient::connect(addr, "c10k-pub").expect("publisher");
    for seq in 0..publishes {
        publisher
            .publish("c10k/t", seq.to_be_bytes().to_vec(), QoS::AtMostOnce, false)
            .expect("publish");
    }
    let expected: u64 = publishes * conns.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let delivered: u64 = conns.iter().map(|c| c.delivered).sum();
        if delivered >= expected || Instant::now() >= deadline {
            publisher.disconnect();
            return delivered;
        }
        pump_swarm(&poller, conns, &mut |_| {});
    }
}

fn run_fanout(connections: usize, publishes: u64, shards: usize) {
    let broker = TcpBroker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            shards,
            // Generous: the swarm drains in 200 ms poll sweeps, and a
            // fan-out burst can park bytes briefly on many sockets.
            write_timeout_ns: 30_000_000_000,
            ..BrokerConfig::default()
        },
    )
    .expect("bind");
    let addr = broker.local_addr();
    // Thread names are set by each thread itself at startup, so give
    // the freshly spawned pool a moment before pinning the baseline.
    let expected_threads = broker.service_threads();
    let spawn_deadline = Instant::now() + Duration::from_secs(5);
    let mut baseline_threads = mqtt_thread_count().expect("linux /proc");
    while baseline_threads != expected_threads && Instant::now() < spawn_deadline {
        std::thread::sleep(Duration::from_millis(5));
        baseline_threads = mqtt_thread_count().expect("linux /proc");
    }
    assert_eq!(
        baseline_threads, expected_threads,
        "an idle broker runs exactly shards + 1 threads"
    );

    let mut conns = connect_swarm(addr, connections, "c10k/#");
    assert_eq!(broker.stats().clients_connected, connections);
    // The C10K property: the connections arrived, the thread count did
    // not move. A thread-per-connection front-end would sit at
    // `connections + shards + 1` here.
    assert_eq!(
        mqtt_thread_count().expect("linux /proc"),
        baseline_threads,
        "broker thread count must not scale with connections"
    );

    let delivered = fanout_round(addr, &mut conns, publishes);
    let expected = publishes * connections as u64;
    assert_eq!(
        delivered, expected,
        "QoS 0 fan-out over live connections must be lossless"
    );
    assert_eq!(
        mqtt_thread_count().expect("linux /proc"),
        baseline_threads,
        "fan-out must not spawn threads"
    );
    drop(conns);
    broker.shutdown();
}

#[test]
fn five_hundred_connection_fanout_with_fixed_threads() {
    run_fanout(500, 20, 4);
}

/// The headline C10K cell. Sized to the process fd budget: each swarm
/// connection costs two fds in this process (client end + broker end).
/// Run explicitly: `cargo test --release --test broker_c10k -- --ignored`.
#[test]
#[ignore = "needs ~20k fds and several seconds; run with -- --ignored"]
fn c10k_fanout_smoke() {
    let nofile = ifot::mqtt::poll::nofile_limit().unwrap_or(1024);
    let budget = (nofile.saturating_sub(128) / 2) as usize;
    let connections = budget.min(10_000);
    assert!(
        connections >= 2_000,
        "fd limit {nofile} too low for a meaningful C10K run"
    );
    run_fanout(connections, 5, 4);
}
