//! Crash-recovery suite: the broker's WAL-backed durable state must
//! survive process death. Every cell kills a live broker (dropping the
//! value and every packet in flight), rebuilds it from the shared
//! [`MemBackend`] via `open_durable`, and proves the delivery guarantees
//! still hold end-to-end:
//!
//! * QoS 2 — **exactly once** across any number of kill/restart cycles,
//!   including crashes parked at every individual stage of the handshake
//!   and crashes landing inside snapshot installation.
//! * QoS 1 — **zero loss** (duplicates allowed, as the contract says).
//! * Retained messages, subscriptions and offline queues — present after
//!   restart, for both `Broker` and `ShardedBroker`.
//! * Torn or bit-flipped log tails — recovery never panics and always
//!   lands on a clean batch-prefix state.
//!
//! The chaotic cells run through `tests/common/mod.rs`'s
//! `run_with_broker_crashes` (the same supervisor-driven triangle as the
//! reconnect chaos suite); the deterministic cells drive the sans-I/O
//! state machines by hand so a crash can be planted between any two
//! packets.

mod common;

use std::collections::VecDeque;

use common::{run_with_broker_crashes, seq_payload, SeqLedger};

use ifot::mqtt::broker::{Action, Broker, BrokerConfig};
use ifot::mqtt::client::{Client, ClientConfig, ClientEvent};
use ifot::mqtt::packet::{Connect, Packet, Publish, QoS, Subscribe, SubscribeFilter};
use ifot::mqtt::shard::{shard_of, ShardedBroker};
use ifot::mqtt::topic::{TopicFilter, TopicName};
use ifot::mqtt::wal::{self, DurableState, MemBackend, SnapshotCrash, WalBackend};

const PUB: u8 = 1;
const SUB: u8 = 2;

fn topic(s: &str) -> TopicName {
    TopicName::new(s).expect("valid topic")
}

fn filter(s: &str) -> TopicFilter {
    TopicFilter::new(s).expect("valid filter")
}

fn sends(actions: Vec<Action<u8>>) -> Vec<(u8, Packet)> {
    actions
        .into_iter()
        .filter_map(|a| match a {
            Action::Send { conn, packet } => Some((conn, packet)),
            _ => None,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Chaotic kill/restart cells (supervisor-driven harness)
// ---------------------------------------------------------------------------

#[test]
fn qos2_exactly_once_across_broker_crashes() {
    let run = run_with_broker_crashes(
        QoS::ExactlyOnce,
        30,
        0,
        &[5_000, 20_000, 40_000],
        0xC0FF_EE00,
        0, // no automatic snapshots: pure log replay
    );
    assert!(run.settled, "run never drained: {run:?}");
    assert_eq!(run.crashes, 3);
    run.ledger.assert_exactly_once(1, 30);
    assert!(
        run.session_resumes >= 2,
        "restarted brokers must resume the persistent sessions: {run:?}"
    );
    // Every post-crash recovery rebuilt both sessions from the log.
    for report in &run.reports[1..] {
        assert!(report.state.sessions.contains_key("pub"), "{report:?}");
        assert!(report.state.sessions.contains_key("sub"), "{report:?}");
        assert!(!report.log_truncated, "clean shutdownless log: {report:?}");
    }
}

#[test]
fn qos2_exactly_once_across_crashes_with_loss() {
    let run = run_with_broker_crashes(QoS::ExactlyOnce, 20, 10, &[8_000, 30_000], 0xDEAD_BEEF, 0);
    assert!(run.settled, "run never drained: {run:?}");
    run.ledger.assert_exactly_once(1, 20);
}

#[test]
fn qos1_zero_loss_across_broker_crashes() {
    let run = run_with_broker_crashes(
        QoS::AtLeastOnce,
        30,
        5,
        &[6_000, 18_000, 35_000],
        0x1234_5678,
        0,
    );
    assert!(run.settled, "run never drained: {run:?}");
    run.ledger.assert_at_least_once(1, 30);
}

#[test]
fn qos2_exactly_once_with_snapshots_mid_traffic() {
    // Aggressive snapshot cadence: snapshot + truncate cycles interleave
    // with the crashes, so recoveries mix snapshot restore and tail
    // replay.
    let run = run_with_broker_crashes(
        QoS::ExactlyOnce,
        30,
        5,
        &[7_000, 22_000, 41_000],
        0xAB5E_1234,
        8,
    );
    assert!(run.settled, "run never drained: {run:?}");
    run.ledger.assert_exactly_once(1, 30);
    assert!(
        run.reports[1..].iter().any(|r| r.snapshot_records > 0),
        "at least one recovery should have started from a snapshot: {:?}",
        run.reports
    );
}

#[test]
fn qos2_exactly_once_across_many_back_to_back_crashes() {
    let crashes: Vec<u64> = (1..=6).map(|i| i * 5_000).collect();
    let run = run_with_broker_crashes(QoS::ExactlyOnce, 25, 0, &crashes, 0x0BAD_F00D, 16);
    assert!(run.settled, "run never drained: {run:?}");
    assert_eq!(run.crashes, 6);
    run.ledger.assert_exactly_once(1, 25);
}

// ---------------------------------------------------------------------------
// Deterministic crash-at-every-stage cell (hand-driven state machines)
// ---------------------------------------------------------------------------

/// A publisher → broker → subscriber triangle with a lossless,
/// hand-pumped wire, where the broker can be killed between any two
/// packets and rebuilt from its WAL.
struct Cell {
    backend: MemBackend,
    broker: Broker<u8>,
    publisher: Client,
    subscriber: Client,
    to_broker: VecDeque<(u8, Packet)>,
    now: u64,
    ledger: SeqLedger,
}

impl Cell {
    fn new(qos: QoS) -> Self {
        let cfg = || ClientConfig {
            retransmit_timeout_ns: 50,
            clean_session: false,
            ..ClientConfig::default()
        };
        let backend = MemBackend::new();
        let (broker, _) = Broker::<u8>::open_durable(
            BrokerConfig {
                retransmit_timeout_ns: 50,
                ..Default::default()
            },
            Box::new(backend.clone()),
        )
        .expect("open empty backend");
        let mut cell = Cell {
            backend,
            broker,
            publisher: Client::new("pub", cfg()),
            subscriber: Client::new("sub", cfg()),
            to_broker: VecDeque::new(),
            now: 0,
            ledger: SeqLedger::new(),
        };
        cell.reconnect_clients();
        cell.pump_all();
        let subscribe = cell
            .subscriber
            .subscribe(vec![(filter("t/#"), qos)], cell.now)
            .expect("subscribe");
        cell.to_broker.push_back((SUB, subscribe));
        cell.pump_all();
        cell
    }

    /// (Re)connects both clients through fresh transports; session
    /// replays land on the wire for the next pump.
    fn reconnect_clients(&mut self) {
        for (conn, client) in [(PUB, &mut self.publisher), (SUB, &mut self.subscriber)] {
            self.broker.connection_opened(conn, self.now);
            let connect = client.connect().expect("connect while disconnected");
            self.to_broker.push_back((conn, connect));
        }
    }

    /// Kills the broker (every queued packet dies with it), recovers a
    /// fresh one from the WAL, and reconnects both clients.
    fn crash(&mut self) {
        let (fresh, _report) = Broker::<u8>::open_durable(
            BrokerConfig {
                retransmit_timeout_ns: 50,
                ..Default::default()
            },
            Box::new(self.backend.clone()),
        )
        .expect("recover after crash");
        self.broker = fresh;
        self.to_broker.clear();
        self.publisher.transport_lost();
        self.subscriber.transport_lost();
        self.reconnect_clients();
    }

    /// Feeds one packet to the broker and routes everything it says back
    /// into the clients (whose responses queue up for the next call).
    /// Returns false when the wire is empty.
    fn pump_one(&mut self) -> bool {
        let Some((conn, packet)) = self.to_broker.pop_front() else {
            return false;
        };
        for (conn, packet) in sends(self.broker.handle_packet(&conn, packet, self.now)) {
            self.deliver(conn, packet);
        }
        true
    }

    fn deliver(&mut self, conn: u8, packet: Packet) {
        let client = if conn == PUB {
            &mut self.publisher
        } else {
            &mut self.subscriber
        };
        let Ok((events, out)) = client.handle_packet(packet, self.now) else {
            return;
        };
        for event in events {
            if let ClientEvent::Message(p) = event {
                self.ledger.record_payload(p.payload.as_ref());
            }
        }
        for packet in out {
            self.to_broker.push_back((conn, packet));
        }
    }

    fn pump_all(&mut self) {
        while self.pump_one() {}
    }

    /// Runs the wire plus retransmission timers until everything drains.
    fn drain(&mut self) {
        for _ in 0..200 {
            self.pump_all();
            self.now += 60;
            for (conn, client) in [(PUB, &mut self.publisher), (SUB, &mut self.subscriber)] {
                for packet in client.poll(self.now) {
                    self.to_broker.push_back((conn, packet));
                }
            }
            for (conn, packet) in sends(self.broker.poll(self.now)) {
                self.deliver(conn, packet);
            }
            if self.to_broker.is_empty()
                && self.publisher.inflight_count() == 0
                && self.publisher.inflight2_count() == 0
            {
                return;
            }
        }
        panic!("cell never drained");
    }
}

#[test]
fn qos2_single_message_survives_a_crash_at_every_stage() {
    // One QoS 2 publish takes a handful of broker inputs (PUBLISH,
    // PUBREL, the subscriber leg's PUBREC and PUBCOMP, interleaved with
    // reconnect traffic). Plant exactly one crash after the broker has
    // consumed n packets, for every n — the message must arrive exactly
    // once regardless of which stage the crash interrupts.
    for crash_after in 0..=6usize {
        let mut cell = Cell::new(QoS::ExactlyOnce);
        let publish = cell
            .publisher
            .publish(
                topic("t/x"),
                seq_payload(0, 0).to_vec(),
                QoS::ExactlyOnce,
                false,
                cell.now,
            )
            .expect("publish");
        cell.to_broker.push_back((PUB, publish));

        let mut processed = 0usize;
        let mut crashed = false;
        loop {
            if !crashed && processed >= crash_after {
                cell.crash();
                crashed = true;
            }
            if cell.pump_one() {
                processed += 1;
            } else if crashed {
                break;
            } else {
                // The handshake finished in fewer inputs than
                // `crash_after`: crash the idle broker instead.
                cell.crash();
                crashed = true;
            }
        }
        cell.drain();
        assert_eq!(
            cell.ledger.total(),
            1,
            "crash after {crash_after} inputs: duplicates or loss"
        );
        cell.ledger.assert_exactly_once(1, 1);
    }
}

#[test]
fn qos1_single_message_survives_a_crash_at_every_stage() {
    for crash_after in 0..=4usize {
        let mut cell = Cell::new(QoS::AtLeastOnce);
        let publish = cell
            .publisher
            .publish(
                topic("t/x"),
                seq_payload(0, 0).to_vec(),
                QoS::AtLeastOnce,
                false,
                cell.now,
            )
            .expect("publish");
        cell.to_broker.push_back((PUB, publish));

        let mut processed = 0usize;
        let mut crashed = false;
        loop {
            if !crashed && processed >= crash_after {
                cell.crash();
                crashed = true;
            }
            if cell.pump_one() {
                processed += 1;
            } else if crashed {
                break;
            } else {
                cell.crash();
                crashed = true;
            }
        }
        cell.drain();
        cell.ledger.assert_at_least_once(1, 1);
    }
}

// ---------------------------------------------------------------------------
// Retained-message durability (plain and sharded)
// ---------------------------------------------------------------------------

#[test]
fn retained_messages_survive_restart_plain_broker() {
    let backend = MemBackend::new();
    let (mut broker, _) =
        Broker::<u8>::open_durable(BrokerConfig::default(), Box::new(backend.clone()))
            .expect("open");

    let retained = |t: &str, payload: &[u8]| Publish {
        dup: false,
        qos: QoS::AtMostOnce,
        retain: true,
        topic: topic(t),
        packet_id: None,
        payload: payload.to_vec().into(),
    };
    broker.publish_internal(retained("conf/a", b"alpha"), 0);
    broker.publish_internal(retained("conf/b", b"beta"), 0);
    // Set then clear: the clear must also be durable.
    broker.publish_internal(retained("conf/c", b"gone"), 0);
    broker.publish_internal(retained("conf/c", b""), 0);

    drop(broker);
    let (mut broker, report) =
        Broker::<u8>::open_durable(BrokerConfig::default(), Box::new(backend.clone()))
            .expect("recover");
    assert_eq!(report.state.retained.len(), 2, "{report:?}");

    broker.connection_opened(SUB, 1);
    let mut got = sends(broker.handle_packet(&SUB, Packet::Connect(Connect::new("s")), 1));
    got.extend(sends(broker.handle_packet(
        &SUB,
        Packet::Subscribe(Subscribe {
            packet_id: 1,
            filters: vec![SubscribeFilter {
                filter: filter("conf/#"),
                qos: QoS::AtMostOnce,
            }],
        }),
        1,
    )));
    let mut payloads: Vec<(String, Vec<u8>)> = got
        .into_iter()
        .filter_map(|(_, p)| match p {
            Packet::Publish(p) => {
                assert!(p.retain, "replayed retained must carry the retain flag");
                Some((p.topic.as_str().to_owned(), p.payload.to_vec()))
            }
            _ => None,
        })
        .collect();
    payloads.sort();
    assert_eq!(
        payloads,
        vec![
            ("conf/a".to_owned(), b"alpha".to_vec()),
            ("conf/b".to_owned(), b"beta".to_vec()),
        ]
    );
}

/// First id of the form `{prefix}{i}` that hashes onto `target`.
fn id_on_shard(prefix: &str, target: usize, shards: usize) -> String {
    (0..1000)
        .map(|i| format!("{prefix}{i}"))
        .find(|id| shard_of(id, shards) == target)
        .expect("some id lands on every shard")
}

fn open_sharded(backends: &[MemBackend]) -> ShardedBroker<u8> {
    let config = BrokerConfig {
        shards: backends.len(),
        ..BrokerConfig::default()
    };
    let boxed: Vec<Box<dyn WalBackend>> = backends
        .iter()
        .map(|b| Box::new(b.clone()) as Box<dyn WalBackend>)
        .collect();
    ShardedBroker::open_durable(config, boxed).expect("sharded open")
}

#[test]
fn retained_messages_survive_restart_sharded() {
    let backends = vec![MemBackend::new(), MemBackend::new()];
    let sb = open_sharded(&backends);
    let pub_id = id_on_shard("pub", 1, 2);

    sb.connection_opened(PUB, 0);
    sb.resolve(
        sb.handle_packet(&PUB, Packet::Connect(Connect::new(&pub_id)), 0),
        0,
    );
    let mut p = Publish::qos0(topic("conf/site"), b"v1".to_vec());
    p.retain = true;
    sb.resolve(sb.handle_packet(&PUB, Packet::Publish(p), 0), 0);

    drop(sb);
    let sb = open_sharded(&backends);
    // A fresh subscriber whose home is shard 0 — the publisher lived on
    // shard 1, so this proves retained state is durable on every shard
    // it was replicated to.
    let sub_id = id_on_shard("sub", 0, 2);
    sb.connection_opened(SUB, 1);
    sb.resolve(
        sb.handle_packet(&SUB, Packet::Connect(Connect::new(&sub_id)), 1),
        1,
    );
    let out = sb.handle_packet(
        &SUB,
        Packet::Subscribe(Subscribe {
            packet_id: 1,
            filters: vec![SubscribeFilter {
                filter: filter("conf/#"),
                qos: QoS::AtMostOnce,
            }],
        }),
        1,
    );
    let got: Vec<Publish> = sb
        .resolve(out, 1)
        .into_iter()
        .filter_map(|a| match a {
            Action::Send {
                conn: SUB,
                packet: Packet::Publish(p),
            } => Some(p),
            _ => None,
        })
        .collect();
    assert_eq!(got.len(), 1, "retained replay after restart: {got:?}");
    assert!(got[0].retain);
    assert_eq!(got[0].payload.as_ref(), b"v1");
}

#[test]
fn sharded_cross_shard_subscription_survives_restart() {
    let backends = vec![MemBackend::new(), MemBackend::new()];
    let sb = open_sharded(&backends);
    let sub_id = id_on_shard("sub", 0, 2);
    let pub_id = id_on_shard("pub", 1, 2);

    // Persistent subscriber on shard 0.
    sb.connection_opened(SUB, 0);
    let mut c = Connect::new(&sub_id);
    c.clean_session = false;
    sb.resolve(sb.handle_packet(&SUB, Packet::Connect(c.clone()), 0), 0);
    sb.resolve(
        sb.handle_packet(
            &SUB,
            Packet::Subscribe(Subscribe {
                packet_id: 1,
                filters: vec![SubscribeFilter {
                    filter: filter("s/#"),
                    qos: QoS::AtMostOnce,
                }],
            }),
            0,
        ),
        0,
    );

    drop(sb);
    let sb = open_sharded(&backends);
    assert!(
        sb.recovery_reports()[0]
            .state
            .sessions
            .contains_key(&sub_id),
        "shard 0 must have recovered the subscriber session"
    );

    // The subscriber comes back; a publisher on the *other* shard must
    // reach it purely through the rebuilt master subscription tree.
    sb.connection_opened(SUB, 1);
    sb.resolve(sb.handle_packet(&SUB, Packet::Connect(c), 1), 1);
    sb.connection_opened(PUB, 1);
    sb.resolve(
        sb.handle_packet(&PUB, Packet::Connect(Connect::new(&pub_id)), 1),
        1,
    );
    let out = sb.handle_packet(
        &PUB,
        Packet::Publish(Publish::qos0(topic("s/a"), b"x".to_vec())),
        2,
    );
    assert_eq!(out.forwards.len(), 1, "must forward to shard 0: {out:?}");
    // QoS 0 deliveries come back pre-encoded (SendFrame).
    let delivered = sb
        .resolve(out, 2)
        .into_iter()
        .filter(|a| {
            matches!(
                a,
                Action::Send { conn: SUB, .. } | Action::SendFrame { conn: SUB, .. }
            )
        })
        .count();
    assert_eq!(delivered, 1, "restored cross-shard subscription delivers");
}

// ---------------------------------------------------------------------------
// Offline queue + snapshot crash windows
// ---------------------------------------------------------------------------

/// Builds a broker with a persistent, *offline* QoS 1 subscriber and six
/// queued messages, exercising the requested snapshot-crash mode while
/// the queue builds up; then kills the broker and returns the backend.
fn queued_backend(mode: Option<SnapshotCrash>, snapshot_every: u64) -> MemBackend {
    let backend = MemBackend::new();
    let (mut broker, _) = Broker::<u8>::open_durable(
        BrokerConfig {
            wal_snapshot_every: snapshot_every,
            ..BrokerConfig::default()
        },
        Box::new(backend.clone()),
    )
    .expect("open");

    broker.connection_opened(SUB, 0);
    let mut c = Connect::new("s");
    c.clean_session = false;
    broker.handle_packet(&SUB, Packet::Connect(c), 0);
    broker.handle_packet(
        &SUB,
        Packet::Subscribe(Subscribe {
            packet_id: 1,
            filters: vec![SubscribeFilter {
                filter: filter("q/#"),
                qos: QoS::AtLeastOnce,
            }],
        }),
        0,
    );
    broker.connection_lost(&SUB, 1);

    if let Some(mode) = mode {
        backend.crash_next_snapshot(mode);
    }
    for i in 0..6u32 {
        let publish = Publish::qos1(topic("q/m"), seq_payload(0, i).to_vec(), 1);
        broker.publish_internal(publish, 2 + u64::from(i));
    }
    drop(broker);
    backend
}

/// Recovers from `backend`, reconnects the subscriber, and returns the
/// receipt ledger after draining the replayed queue.
fn drain_queue(backend: &MemBackend) -> SeqLedger {
    let (mut broker, _) =
        Broker::<u8>::open_durable(BrokerConfig::default(), Box::new(backend.clone()))
            .expect("recover");
    let mut ledger = SeqLedger::new();
    broker.connection_opened(SUB, 100);
    let mut c = Connect::new("s");
    c.clean_session = false;
    let mut wire: VecDeque<Packet> = sends(broker.handle_packet(&SUB, Packet::Connect(c), 100))
        .into_iter()
        .map(|(_, p)| p)
        .collect();
    for round in 0..50u64 {
        let now = 101 + round;
        while let Some(packet) = wire.pop_front() {
            if let Packet::Publish(p) = &packet {
                ledger.record_payload(p.payload.as_ref());
                let pid = p.packet_id.expect("qos1 has a pid");
                wire.extend(
                    sends(broker.handle_packet(&SUB, Packet::Puback(pid), now))
                        .into_iter()
                        .map(|(_, p)| p),
                );
            }
        }
        wire.extend(sends(broker.poll(now)).into_iter().map(|(_, p)| p));
        if wire.is_empty() && round > 2 {
            break;
        }
    }
    ledger
}

#[test]
fn queued_messages_survive_restart() {
    let backend = queued_backend(None, 0);
    let ledger = drain_queue(&backend);
    ledger.assert_exactly_once(1, 6);
}

#[test]
fn crash_before_snapshot_install_replays_from_log() {
    let backend = queued_backend(Some(SnapshotCrash::BeforeInstall), 4);
    let ledger = drain_queue(&backend);
    ledger.assert_exactly_once(1, 6);
}

#[test]
fn crash_between_install_and_truncate_does_not_double_deliver() {
    // The snapshot landed but the log it covers was never truncated —
    // replaying both must not double-apply the queued messages. Six
    // messages in, exactly six out.
    let backend = queued_backend(Some(SnapshotCrash::BetweenInstallAndTruncate), 4);
    let ledger = drain_queue(&backend);
    ledger.assert_exactly_once(1, 6);
}

#[test]
fn torn_snapshot_falls_back_to_log_replay() {
    let backend = queued_backend(Some(SnapshotCrash::TornWrite(10)), 4);
    let ledger = drain_queue(&backend);
    ledger.assert_exactly_once(1, 6);
}

// ---------------------------------------------------------------------------
// Torn and corrupt log tails
// ---------------------------------------------------------------------------

/// A backend with a realistic multi-batch log (sessions, subscriptions,
/// retained messages, queued publishes) and no snapshot.
fn busy_backend() -> MemBackend {
    let backend = queued_backend(None, 0);
    let (mut broker, _) =
        Broker::<u8>::open_durable(BrokerConfig::default(), Box::new(backend.clone()))
            .expect("reopen");
    let mut p = Publish::qos0(topic("conf/x"), b"retained".to_vec());
    p.retain = true;
    broker.publish_internal(p, 50);
    backend
}

/// Folds the parsed batches of `log` into the state after each complete
/// batch: `states[k]` is the state once batches `0..k` applied.
fn prefix_states(log: &[u8]) -> Vec<DurableState> {
    let (batches, torn, _clean) = wal::parse_stream(log);
    assert!(!torn, "the full log must be clean");
    let mut states = vec![DurableState::default()];
    let mut acc = DurableState::default();
    for (_, records) in &batches {
        for rec in records {
            acc.apply(rec);
        }
        states.push(acc.clone());
    }
    states
}

#[test]
fn truncated_tail_recovers_a_clean_prefix_at_every_offset() {
    let full = busy_backend();
    let log = full.raw_log();
    let states = prefix_states(&log);
    let mut last_idx = 0usize;
    for cut in 0..=log.len() {
        let mut backend = MemBackend::new();
        backend.set_raw_log(log[..cut].to_vec());
        let report = wal::recover(&mut backend).expect("in-memory recovery cannot io-fail");
        let idx = states
            .iter()
            .position(|s| *s == report.state)
            .unwrap_or_else(|| panic!("cut at {cut}: not a batch-prefix state: {report:?}"));
        assert!(idx >= last_idx, "prefix states must be monotone in cut");
        last_idx = idx;
        if !report.log_truncated {
            // A clean parse means the cut landed exactly on a batch
            // boundary: the recovered state is the full state of the
            // bytes kept, not a truncation of them.
            assert_eq!(idx as u64, report.log_batches);
        }
    }
    assert_eq!(last_idx, states.len() - 1, "full log yields full state");
}

#[test]
fn bit_flipped_tail_recovers_a_clean_prefix_at_every_byte() {
    let full = busy_backend();
    let log = full.raw_log();
    let states = prefix_states(&log);
    for i in 0..log.len() {
        for bit in [0x01u8, 0x80u8] {
            let mut corrupt = log.clone();
            corrupt[i] ^= bit;
            let mut backend = MemBackend::new();
            backend.set_raw_log(corrupt);
            let report = wal::recover(&mut backend).expect("in-memory recovery cannot io-fail");
            assert!(
                states.contains(&report.state),
                "flip at byte {i} bit {bit:#x}: recovered state is not a \
                 clean batch prefix: {report:?}"
            );
        }
    }
}

#[test]
fn torn_append_forces_resync_snapshot() {
    // The classic torn write: an append only partially reaches the disk
    // and the backend reports the error. The broker's in-memory state
    // already holds the mutation, so the WAL must resync log and state
    // with a forced snapshot *in the same barrier* — otherwise the
    // acknowledged publish would silently diverge from the log.
    let backend = queued_backend(None, 0);
    let before = wal::recover(&mut backend.clone()).expect("recover").state;
    let whole = backend.log_len();
    backend.tear_log_at(whole + 3); // 3 bytes of the next batch land
    let (mut broker, _) =
        Broker::<u8>::open_durable(BrokerConfig::default(), Box::new(backend.clone()))
            .expect("reopen");
    let mut p = Publish::qos0(topic("conf/torn"), b"kept".to_vec());
    p.retain = true;
    broker.publish_internal(p, 60);
    let stats = broker.wal_stats().expect("durable broker has stats");
    assert_eq!(stats.append_errors, 1, "the torn append must be counted");
    assert!(
        stats.snapshots_installed >= 1,
        "a lost batch must force a resync snapshot in the same barrier: {stats:?}"
    );
    drop(broker);
    backend.clear_tear();

    let report = wal::recover(&mut backend.clone()).expect("recover");
    assert!(
        !report.log_truncated,
        "the resync snapshot replaced the torn log: {report:?}"
    );
    assert!(
        report.state.retained.contains_key("conf/torn"),
        "the acknowledged publish must survive via the resync snapshot"
    );
    assert_eq!(
        report.state.sessions["s"].queue.len(),
        before.sessions["s"].queue.len(),
        "pre-tear state must be carried over intact"
    );
    // And the queue still drains exactly once after the crash.
    drain_queue(&backend).assert_exactly_once(1, 6);
}

#[test]
fn double_crash_with_torn_tail_loses_no_post_restart_writes() {
    // The high-severity double-crash case: a crash leaves a torn tail on
    // the log; the restarted broker must physically repair it at open,
    // or everything it commits afterwards sits behind the corrupt bytes
    // and the *second* crash silently loses it.
    let backend = queued_backend(None, 0);
    let mut raw = backend.raw_log();
    raw.extend_from_slice(&[0x7f, 0x00, 0x01, 0x02, 0x03]); // torn final batch
    backend.set_raw_log(raw);

    let (mut broker, report) =
        Broker::<u8>::open_durable(BrokerConfig::default(), Box::new(backend.clone()))
            .expect("reopen over torn tail");
    assert!(report.log_truncated, "the torn tail must be detected");
    assert_eq!(
        backend.log_len(),
        report.clean_log_bytes,
        "open must physically truncate the torn tail"
    );
    let mut p = Publish::qos0(topic("conf/second"), b"survives".to_vec());
    p.retain = true;
    broker.publish_internal(p, 60);
    drop(broker); // second crash

    let report = wal::recover(&mut backend.clone()).expect("recover");
    assert!(
        !report.log_truncated,
        "the repaired log must replay cleanly: {report:?}"
    );
    assert!(
        report.state.retained.contains_key("conf/second"),
        "writes committed after the first restart must survive the second crash"
    );
    assert_eq!(report.state.sessions["s"].queue.len(), 6);
    drain_queue(&backend).assert_exactly_once(1, 6);
}

#[test]
fn recovered_broker_reports_wal_stats() {
    let backend = queued_backend(None, 0);
    let (mut broker, _) =
        Broker::<u8>::open_durable(BrokerConfig::default(), Box::new(backend.clone()))
            .expect("recover");
    let mut p = Publish::qos0(topic("conf/y"), b"z".to_vec());
    p.retain = true;
    broker.publish_internal(p, 70);
    let stats = broker.wal_stats().expect("durable broker has stats");
    assert!(stats.records_appended > 0);
    assert!(stats.batches_committed > 0);
    assert_eq!(stats.append_errors, 0);
}
