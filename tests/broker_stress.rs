//! Integration: the sharded TCP broker under real concurrency — 16 OS
//! client threads publishing QoS 1 simultaneously through [`TcpBroker`]
//! to a QoS 1 subscriber, with the receipt ledger proving **zero loss
//! and zero duplication** (see `tests/common/mod.rs::SeqLedger`).
//!
//! Retransmission timeouts are raised far beyond the test's runtime on
//! both sides so any duplicate observed is a genuine routing bug (a
//! message crossing shards twice, a replica applying a subscription
//! twice), never a legitimately re-sent QoS 1 copy. Loss would mean a
//! dropped forward between shards or a write that vanished under the
//! coalesced writer loops; a hang would mean a deadlock between reader,
//! service, and writer paths. The test therefore exercises exactly the
//! hazards the multi-core refactor introduced.

mod common;

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use common::{seq_payload, SeqLedger};

use ifot::mqtt::broker::BrokerConfig;
use ifot::mqtt::client::ClientConfig;
use ifot::mqtt::net::{TcpBroker, TcpClient};
use ifot::mqtt::packet::QoS;

const PUBLISHERS: u32 = 16;
const PER_PUBLISHER: u32 = 50;

/// Client session config that never retransmits within the test window,
/// so at-least-once cannot manufacture benign duplicates.
fn patient_client() -> ClientConfig {
    ClientConfig {
        retransmit_timeout_ns: 300_000_000_000,
        ..ClientConfig::default()
    }
}

#[test]
fn sixteen_concurrent_qos1_publishers_lose_and_duplicate_nothing() {
    let config = BrokerConfig {
        // As above: the broker must not legitimately re-send to the
        // subscriber inside the test window either.
        retransmit_timeout_ns: 300_000_000_000,
        ..BrokerConfig::default()
    };
    assert!(config.shards >= 4, "stress must cross shard boundaries");
    let broker = TcpBroker::bind_with("127.0.0.1:0", config).expect("bind broker");
    let addr = broker.local_addr();

    // Publishers start only after the subscription is acknowledged, so
    // every publish must be routed (QoS 1 has no pre-subscribe grace).
    let start_line = Arc::new(Barrier::new(PUBLISHERS as usize + 1));

    let subscriber = {
        let start_line = Arc::clone(&start_line);
        std::thread::spawn(move || {
            let mut client = TcpClient::connect_with(addr, "stress-sub", patient_client())
                .expect("subscriber connect");
            client
                .subscribe("stress/#", QoS::AtLeastOnce)
                .expect("subscribe");
            start_line.wait();
            let mut ledger = SeqLedger::new();
            let expected = u64::from(PUBLISHERS) * u64::from(PER_PUBLISHER);
            let deadline = Instant::now() + Duration::from_secs(60);
            while ledger.total() < expected && Instant::now() < deadline {
                match client.recv(Duration::from_millis(100)) {
                    Ok(Some(publish)) => ledger.record_payload(&publish.payload),
                    Ok(None) => {}
                    Err(e) => panic!("subscriber connection failed mid-run: {e}"),
                }
            }
            // Linger briefly so late duplicates (the actual bug class)
            // would still be caught rather than racing the shutdown.
            let linger = Instant::now() + Duration::from_millis(300);
            while Instant::now() < linger {
                if let Ok(Some(publish)) = client.recv(Duration::from_millis(50)) {
                    ledger.record_payload(&publish.payload);
                }
            }
            client.disconnect();
            ledger
        })
    };

    let publishers: Vec<_> = (0..PUBLISHERS)
        .map(|p| {
            let start_line = Arc::clone(&start_line);
            std::thread::spawn(move || {
                let mut client =
                    TcpClient::connect_with(addr, &format!("stress-pub-{p}"), patient_client())
                        .expect("publisher connect");
                start_line.wait();
                for seq in 0..PER_PUBLISHER {
                    client
                        .publish(
                            &format!("stress/p{p}"),
                            seq_payload(p, seq).to_vec(),
                            QoS::AtLeastOnce,
                            false,
                        )
                        .expect("publish");
                }
                // Drain PUBACKs: the broker owns every message once these
                // hit zero, so loss past this point is the broker's fault.
                let deadline = Instant::now() + Duration::from_secs(30);
                while client.inflight() > 0 && Instant::now() < deadline {
                    client.drive().expect("drive publisher");
                }
                assert_eq!(client.inflight(), 0, "publisher {p} never got all PUBACKs");
                client.disconnect();
            })
        })
        .collect();

    for handle in publishers {
        if let Err(e) = handle.join() {
            std::panic::resume_unwind(e);
        }
    }
    let ledger = match subscriber.join() {
        Ok(ledger) => ledger,
        Err(e) => std::panic::resume_unwind(e),
    };
    ledger.assert_exactly_once(PUBLISHERS, PER_PUBLISHER);

    // Every client sent DISCONNECT; teardown is asynchronous, so poll.
    let deadline = Instant::now() + Duration::from_secs(5);
    while broker.stats().clients_connected > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        broker.stats().clients_connected,
        0,
        "sessions lingered after DISCONNECT"
    );
    broker.shutdown();
}
