//! Shared harness for the delivery-guarantee suites: a sans-I/O
//! publisher → broker → subscriber triangle with persistent sessions,
//! driven under arbitrary packet loss *and* arbitrary forced-disconnect
//! schedules, with reconnection handled by the real
//! [`ReconnectSupervisor`] — the same component the middleware node
//! runs. Used by `tests/exactly_once.rs` (concrete regression
//! schedules) and `tests/proptests.rs` (property-based schedules).
#![allow(dead_code)]

use std::collections::{BTreeMap, VecDeque};

use ifot::mqtt::broker::{Action, Broker, BrokerConfig};
use ifot::mqtt::client::{Client, ClientConfig, ClientEvent, ClientState};
use ifot::mqtt::packet::{Packet, QoS};
use ifot::mqtt::supervisor::{ReconnectConfig, ReconnectSupervisor, SupervisorAction};
use ifot::mqtt::topic::{TopicFilter, TopicName};
use ifot::mqtt::wal::{MemBackend, RecoveryReport};

pub const PUB: u8 = 1;
pub const SUB: u8 = 2;

/// Deterministic loss decision (LCG), ~`loss_pct`% drops.
pub struct Loss {
    state: u64,
    loss_pct: u64,
}

impl Loss {
    pub fn new(state: u64, loss_pct: u64) -> Self {
        Loss { state, loss_pct }
    }

    pub fn drop(&mut self) -> bool {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.state >> 33) % 100 < self.loss_pct
    }
}

/// SplitMix64 step — a tiny deterministic RNG for jitter draws.
pub fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What a chaotic run produced at the subscriber.
#[derive(Debug)]
pub struct ReconnectRun {
    /// payload → delivery count.
    pub delivered: BTreeMap<Vec<u8>, u32>,
    /// Session resumes observed (CONNACK with `session_present`).
    pub session_resumes: u64,
    /// Whether the run drained completely (all retransmission windows
    /// closed and both sides reconnected).
    pub settled: bool,
}

/// Publishes `count` messages at `qos` through a transport with
/// `loss_pct`% loss while `schedule` forcibly kills connections:
/// each entry `(time_ns, is_publisher)` tears down that side's
/// transport at the given virtual time (broker *and* client side, like
/// a TCP reset). Both sessions are persistent (`clean_session = false`)
/// and come back solely through the [`ReconnectSupervisor`], so QoS 1/2
/// in-flight state must survive arbitrary loss + reconnect schedules.
pub fn run_with_reconnects(
    qos: QoS,
    count: u32,
    loss_pct: u64,
    schedule: &[(u64, bool)],
    seed: u64,
) -> ReconnectRun {
    let cfg = || ClientConfig {
        retransmit_timeout_ns: 50,
        clean_session: false,
        ..ClientConfig::default()
    };
    // Timeouts in the same tiny virtual-nanosecond units as the tick.
    let sup = || {
        ReconnectSupervisor::new(
            ReconnectConfig {
                keep_alive_factor: 1.5,
                connect_timeout_ns: 200,
                backoff_base_ns: 100,
                backoff_max_ns: 1_000,
                jitter_frac: 0.25,
            },
            0, // keep-alive disabled: the schedule forces the failures
        )
    };
    let mut publisher = Client::new("pub", cfg());
    let mut subscriber = Client::new("sub", cfg());
    let mut pub_sup = sup();
    let mut sub_sup = sup();
    let mut broker: Broker<u8> = Broker::with_config(BrokerConfig {
        retransmit_timeout_ns: 50,
        ..Default::default()
    });
    let mut loss = Loss::new(seed | 1, loss_pct);
    let mut rng_state = seed ^ 0xD1B5_4A32_D192_ED03;
    let mut delivered: BTreeMap<Vec<u8>, u32> = BTreeMap::new();
    let mut session_resumes = 0u64;

    let mut schedule: Vec<(u64, bool)> = schedule.to_vec();
    schedule.sort_unstable();
    let mut next_disruption = 0usize;

    let mut to_broker: Vec<(u8, Packet)> = Vec::new();
    let mut to_client: Vec<(u8, Packet)> = Vec::new();

    // Session setup on a lossless prefix at t=0: both CONNECTs and the
    // subscription land. Everything after is fair game (the persistent
    // sessions keep the subscription across every reconnect).
    broker.connection_opened(PUB, 0);
    broker.connection_opened(SUB, 0);
    for (conn, client, sup) in [
        (PUB, &mut publisher, &mut pub_sup),
        (SUB, &mut subscriber, &mut sub_sup),
    ] {
        let connect = client.connect().expect("first connect");
        sup.on_connect_sent(0);
        for action in broker.handle_packet(&conn, connect, 0) {
            if let Action::Send { packet, .. } = action {
                let (_, out) = client.handle_packet(packet, 0).expect("connack");
                assert!(out.is_empty(), "fresh session has nothing to replay");
            }
        }
        sup.on_connected(0);
    }
    let subscribe = subscriber
        .subscribe(vec![(TopicFilter::new("t/#").expect("valid"), qos)], 0)
        .expect("subscribe");
    for action in broker.handle_packet(&SUB, subscribe, 0) {
        if let Action::Send { packet, .. } = action {
            let _ = subscriber.handle_packet(packet, 0).expect("suback");
        }
    }

    // One new message enters the pipeline every 50 ticks; messages that
    // cannot be published while disconnected wait here (the harness
    // mirror of the node's offline queue).
    let mut pending: VecDeque<u32> = VecDeque::new();
    let mut next_pub: u32 = 0;
    let mut settled = false;

    let mut now = 0u64;
    for _ in 0..60_000 {
        now += 10;

        // Forced disconnects due at this tick.
        while next_disruption < schedule.len() && schedule[next_disruption].0 <= now {
            let (_, is_publisher) = schedule[next_disruption];
            next_disruption += 1;
            let (conn, client) = if is_publisher {
                (PUB, &mut publisher)
            } else {
                (SUB, &mut subscriber)
            };
            if client.state() != ClientState::Disconnected {
                client.transport_lost();
            }
            for action in broker.connection_lost(&conn, now) {
                if let Action::Send { conn, packet } = action {
                    if !loss.drop() {
                        to_client.push((conn, packet));
                    }
                }
            }
        }

        // Reconnect supervision for both sides.
        for (conn, client, sup) in [
            (PUB, &mut publisher, &mut pub_sup),
            (SUB, &mut subscriber, &mut sub_sup),
        ] {
            let action = sup.poll(client.state(), now, &mut || splitmix(&mut rng_state));
            match action {
                SupervisorAction::TransportLost => client.transport_lost(),
                SupervisorAction::Connect => {
                    broker.connection_opened(conn, now);
                    let packet = client.connect().expect("connect while disconnected");
                    sup.on_connect_sent(now);
                    if !loss.drop() {
                        to_broker.push((conn, packet));
                    }
                }
                SupervisorAction::None => {}
            }
        }

        // Offered load, buffered while the publisher is offline.
        if next_pub < count && now >= u64::from(next_pub) * 50 {
            pending.push_back(next_pub);
            next_pub += 1;
        }
        while publisher.state() == ClientState::Connected {
            let Some(i) = pending.pop_front() else { break };
            let packet = publisher
                .publish(
                    TopicName::new("t/x").expect("valid"),
                    i.to_be_bytes().to_vec(),
                    qos,
                    false,
                    now,
                )
                .expect("connected publish");
            if !loss.drop() {
                to_broker.push((PUB, packet));
            }
        }

        // Broker ingress.
        for (conn, packet) in std::mem::take(&mut to_broker) {
            for action in broker.handle_packet(&conn, packet, now) {
                if let Action::Send { conn, packet } = action {
                    if !loss.drop() {
                        to_client.push((conn, packet));
                    }
                }
            }
        }
        // Client ingress.
        for (conn, packet) in std::mem::take(&mut to_client) {
            let (client, sup) = if conn == PUB {
                (&mut publisher, &mut pub_sup)
            } else {
                (&mut subscriber, &mut sub_sup)
            };
            sup.on_inbound(now);
            let Ok((events, out)) = client.handle_packet(packet, now) else {
                continue;
            };
            for event in events {
                match event {
                    ClientEvent::Message(p) => {
                        *delivered.entry(p.payload.to_vec()).or_insert(0) += 1;
                    }
                    ClientEvent::Connected { session_present } => {
                        sup.on_connected(now);
                        if session_present {
                            session_resumes += 1;
                        }
                    }
                    _ => {}
                }
            }
            for packet in out {
                if !loss.drop() {
                    to_broker.push((conn, packet));
                }
            }
        }
        // Retransmissions.
        for (conn, client) in [(PUB, &mut publisher), (SUB, &mut subscriber)] {
            for packet in client.poll(now) {
                if !loss.drop() {
                    to_broker.push((conn, packet));
                }
            }
        }
        for action in broker.poll(now) {
            if let Action::Send { conn, packet } = action {
                if !loss.drop() {
                    to_client.push((conn, packet));
                }
            }
        }

        if next_disruption == schedule.len()
            && next_pub == count
            && pending.is_empty()
            && to_broker.is_empty()
            && to_client.is_empty()
            && publisher.state() == ClientState::Connected
            && subscriber.state() == ClientState::Connected
            && publisher.inflight_count() == 0
            && publisher.inflight2_count() == 0
            && delivered.len() == count as usize
        {
            settled = true;
            break;
        }
    }

    ReconnectRun {
        delivered,
        session_resumes,
        settled,
    }
}

/// Asserts the QoS-level delivery guarantee plus payload preservation
/// for a finished run.
pub fn assert_guarantee(run: &ReconnectRun, qos: QoS, count: u32) {
    assert!(run.settled, "run never drained: {run:?}");
    assert_eq!(
        run.delivered.len(),
        count as usize,
        "every message must arrive: {run:?}"
    );
    // Payload preservation: the delivered set is exactly the sent set.
    for i in 0..count {
        assert!(
            run.delivered.contains_key(i.to_be_bytes().as_slice()),
            "payload of message {i} was lost or corrupted"
        );
    }
    match qos {
        QoS::AtLeastOnce => assert!(
            run.delivered.values().all(|&n| n >= 1),
            "at-least-once violated: {run:?}"
        ),
        QoS::ExactlyOnce => assert!(
            run.delivered.values().all(|&n| n == 1),
            "exactly-once violated: {run:?}"
        ),
        QoS::AtMostOnce => unreachable!("QoS 0 has no delivery guarantee to assert"),
    }
}

/// What a broker-crash run produced.
#[derive(Debug)]
pub struct CrashRun {
    /// Receipt ledger at the subscriber (publisher id 0).
    pub ledger: SeqLedger,
    /// Session resumes observed (CONNACK with `session_present`).
    pub session_resumes: u64,
    /// Whether the run drained completely.
    pub settled: bool,
    /// Broker crashes executed.
    pub crashes: usize,
    /// Recovery report of every durable open: index 0 is the initial
    /// (empty) open, one more per crash/restart cycle.
    pub reports: Vec<RecoveryReport>,
}

/// Like [`run_with_reconnects`], but the *broker process* dies: at each
/// entry of `crash_times` the broker value is dropped on the floor —
/// along with every packet in flight on the wire — and a fresh broker is
/// recovered from the write-ahead log (shared [`MemBackend`]) as if the
/// process had been killed and restarted. Both clients keep their own
/// session state (their device didn't crash) and reconnect through the
/// real [`ReconnectSupervisor`]. Messages are published at `qos` with
/// [`seq_payload`]`(0, i)` payloads and receipts land in a [`SeqLedger`],
/// so callers can assert zero loss / zero duplication across restarts.
///
/// `snapshot_every` sets [`BrokerConfig::wal_snapshot_every`], letting
/// cells force frequent snapshot + truncate cycles mid-traffic.
pub fn run_with_broker_crashes(
    qos: QoS,
    count: u32,
    loss_pct: u64,
    crash_times: &[u64],
    seed: u64,
    snapshot_every: u64,
) -> CrashRun {
    let cfg = || ClientConfig {
        retransmit_timeout_ns: 50,
        clean_session: false,
        ..ClientConfig::default()
    };
    let sup = || {
        ReconnectSupervisor::new(
            ReconnectConfig {
                keep_alive_factor: 1.5,
                connect_timeout_ns: 200,
                backoff_base_ns: 100,
                backoff_max_ns: 1_000,
                jitter_frac: 0.25,
            },
            0,
        )
    };
    let broker_cfg = || BrokerConfig {
        retransmit_timeout_ns: 50,
        wal_snapshot_every: snapshot_every,
        ..Default::default()
    };
    let backend = MemBackend::new();
    let mut reports = Vec::new();
    let (mut broker, report) = Broker::<u8>::open_durable(broker_cfg(), Box::new(backend.clone()))
        .expect("initial durable open");
    reports.push(report);

    let mut publisher = Client::new("pub", cfg());
    let mut subscriber = Client::new("sub", cfg());
    let mut pub_sup = sup();
    let mut sub_sup = sup();
    let mut loss = Loss::new(seed | 1, loss_pct);
    let mut rng_state = seed ^ 0xD1B5_4A32_D192_ED03;
    let mut ledger = SeqLedger::new();
    let mut session_resumes = 0u64;

    let mut crash_times: Vec<u64> = crash_times.to_vec();
    crash_times.sort_unstable();
    let mut next_crash = 0usize;
    let mut crashes = 0usize;

    let mut to_broker: Vec<(u8, Packet)> = Vec::new();
    let mut to_client: Vec<(u8, Packet)> = Vec::new();

    // Lossless session setup at t=0, as in `run_with_reconnects`.
    broker.connection_opened(PUB, 0);
    broker.connection_opened(SUB, 0);
    for (conn, client, sup) in [
        (PUB, &mut publisher, &mut pub_sup),
        (SUB, &mut subscriber, &mut sub_sup),
    ] {
        let connect = client.connect().expect("first connect");
        sup.on_connect_sent(0);
        for action in broker.handle_packet(&conn, connect, 0) {
            if let Action::Send { packet, .. } = action {
                let (_, out) = client.handle_packet(packet, 0).expect("connack");
                assert!(out.is_empty(), "fresh session has nothing to replay");
            }
        }
        sup.on_connected(0);
    }
    let subscribe = subscriber
        .subscribe(vec![(TopicFilter::new("t/#").expect("valid"), qos)], 0)
        .expect("subscribe");
    for action in broker.handle_packet(&SUB, subscribe, 0) {
        if let Action::Send { packet, .. } = action {
            let _ = subscriber.handle_packet(packet, 0).expect("suback");
        }
    }

    let mut pending: VecDeque<u32> = VecDeque::new();
    let mut next_pub: u32 = 0;
    let mut settled = false;

    let mut now = 0u64;
    for _ in 0..60_000 {
        now += 10;

        // Broker crashes due at this tick: the broker value and every
        // packet on the wire vanish; the replacement is rebuilt purely
        // from the WAL. Both clients see a transport reset.
        while next_crash < crash_times.len() && crash_times[next_crash] <= now {
            next_crash += 1;
            crashes += 1;
            drop(broker);
            to_broker.clear();
            to_client.clear();
            let (fresh, report) =
                Broker::<u8>::open_durable(broker_cfg(), Box::new(backend.clone()))
                    .expect("recover after crash");
            broker = fresh;
            reports.push(report);
            for client in [&mut publisher, &mut subscriber] {
                if client.state() != ClientState::Disconnected {
                    client.transport_lost();
                }
            }
        }

        // Reconnect supervision for both sides.
        for (conn, client, sup) in [
            (PUB, &mut publisher, &mut pub_sup),
            (SUB, &mut subscriber, &mut sub_sup),
        ] {
            let action = sup.poll(client.state(), now, &mut || splitmix(&mut rng_state));
            match action {
                SupervisorAction::TransportLost => client.transport_lost(),
                SupervisorAction::Connect => {
                    broker.connection_opened(conn, now);
                    let packet = client.connect().expect("connect while disconnected");
                    sup.on_connect_sent(now);
                    if !loss.drop() {
                        to_broker.push((conn, packet));
                    }
                }
                SupervisorAction::None => {}
            }
        }

        // Offered load, buffered while the publisher is offline.
        if next_pub < count && now >= u64::from(next_pub) * 50 {
            pending.push_back(next_pub);
            next_pub += 1;
        }
        while publisher.state() == ClientState::Connected {
            let Some(i) = pending.pop_front() else { break };
            let packet = publisher
                .publish(
                    TopicName::new("t/x").expect("valid"),
                    seq_payload(0, i).to_vec(),
                    qos,
                    false,
                    now,
                )
                .expect("connected publish");
            if !loss.drop() {
                to_broker.push((PUB, packet));
            }
        }

        // Broker ingress.
        for (conn, packet) in std::mem::take(&mut to_broker) {
            for action in broker.handle_packet(&conn, packet, now) {
                if let Action::Send { conn, packet } = action {
                    if !loss.drop() {
                        to_client.push((conn, packet));
                    }
                }
            }
        }
        // Client ingress.
        for (conn, packet) in std::mem::take(&mut to_client) {
            let (client, sup) = if conn == PUB {
                (&mut publisher, &mut pub_sup)
            } else {
                (&mut subscriber, &mut sub_sup)
            };
            sup.on_inbound(now);
            let Ok((events, out)) = client.handle_packet(packet, now) else {
                continue;
            };
            for event in events {
                match event {
                    ClientEvent::Message(p) => {
                        ledger.record_payload(p.payload.as_ref());
                    }
                    ClientEvent::Connected { session_present } => {
                        sup.on_connected(now);
                        if session_present {
                            session_resumes += 1;
                        }
                    }
                    _ => {}
                }
            }
            for packet in out {
                if !loss.drop() {
                    to_broker.push((conn, packet));
                }
            }
        }
        // Retransmissions.
        for (conn, client) in [(PUB, &mut publisher), (SUB, &mut subscriber)] {
            for packet in client.poll(now) {
                if !loss.drop() {
                    to_broker.push((conn, packet));
                }
            }
        }
        for action in broker.poll(now) {
            if let Action::Send { conn, packet } = action {
                if !loss.drop() {
                    to_client.push((conn, packet));
                }
            }
        }

        if next_crash == crash_times.len()
            && next_pub == count
            && pending.is_empty()
            && to_broker.is_empty()
            && to_client.is_empty()
            && publisher.state() == ClientState::Connected
            && subscriber.state() == ClientState::Connected
            && publisher.inflight_count() == 0
            && publisher.inflight2_count() == 0
            && ledger.distinct() == count as usize
        {
            settled = true;
            break;
        }
    }

    CrashRun {
        ledger,
        session_resumes,
        settled,
        crashes,
        reports,
    }
}

/// Encodes a `(publisher, seq)` pair as the 8-byte big-endian payload
/// the sequence-ledger stress tests publish.
pub fn seq_payload(publisher: u32, seq: u32) -> [u8; 8] {
    let mut out = [0u8; 8];
    out[..4].copy_from_slice(&publisher.to_be_bytes());
    out[4..].copy_from_slice(&seq.to_be_bytes());
    out
}

/// Receipt ledger for multi-publisher stress runs: every delivery is
/// recorded as a `(publisher, seq)` pair, and the final assertion proves
/// the per-publisher sequence spaces were delivered with **zero loss and
/// zero duplication** — the strongest statement a concurrent QoS 1 run
/// can make when no retransmission was provoked.
#[derive(Debug, Default)]
pub struct SeqLedger {
    counts: BTreeMap<(u32, u32), u32>,
    total: u64,
    malformed: u64,
}

impl SeqLedger {
    pub fn new() -> Self {
        SeqLedger::default()
    }

    /// Records one received copy of `(publisher, seq)`.
    pub fn record(&mut self, publisher: u32, seq: u32) {
        *self.counts.entry((publisher, seq)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records a receipt from its [`seq_payload`] wire form.
    pub fn record_payload(&mut self, payload: &[u8]) {
        if payload.len() != 8 {
            self.malformed += 1;
            self.total += 1;
            return;
        }
        let publisher = u32::from_be_bytes(payload[..4].try_into().expect("4 bytes"));
        let seq = u32::from_be_bytes(payload[4..].try_into().expect("4 bytes"));
        self.record(publisher, seq);
    }

    /// Total receipts recorded (duplicates included).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct `(publisher, seq)` pairs received so far.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Asserts the full cross product `publishers × per_publisher` was
    /// received at least once each (duplicates tolerated — the QoS 1
    /// contract), with nothing malformed and nothing outside the space.
    pub fn assert_at_least_once(&self, publishers: u32, per_publisher: u32) {
        assert_eq!(self.malformed, 0, "malformed payloads received");
        let mut lost = Vec::new();
        for p in 0..publishers {
            for s in 0..per_publisher {
                if !self.counts.contains_key(&(p, s)) {
                    lost.push((p, s));
                }
            }
        }
        assert!(lost.is_empty(), "lost messages: {lost:?}");
        let strays: Vec<_> = self
            .counts
            .keys()
            .filter(|(p, s)| *p >= publishers || *s >= per_publisher)
            .collect();
        assert!(strays.is_empty(), "receipts outside the space: {strays:?}");
    }

    /// Asserts the full cross product `publishers × per_publisher` was
    /// received exactly once each, with nothing extra and nothing
    /// malformed.
    pub fn assert_exactly_once(&self, publishers: u32, per_publisher: u32) {
        assert_eq!(self.malformed, 0, "malformed payloads received");
        let mut lost = Vec::new();
        for p in 0..publishers {
            for s in 0..per_publisher {
                match self.counts.get(&(p, s)) {
                    None => lost.push((p, s)),
                    Some(1) => {}
                    Some(n) => panic!("message ({p}, {s}) delivered {n} times"),
                }
            }
        }
        assert!(lost.is_empty(), "lost messages: {lost:?}");
        assert_eq!(
            self.total,
            u64::from(publishers) * u64::from(per_publisher),
            "receipts outside the expected sequence space: {:?}",
            self.counts
                .keys()
                .filter(|(p, s)| *p >= publishers || *s >= per_publisher)
                .collect::<Vec<_>>()
        );
    }
}
