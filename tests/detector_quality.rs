//! Integration: detector quality against injected ground truth.
//!
//! The virtual device layer labels every sample it perturbs; feeding the
//! labelled stream through the ML substrate's detectors yields honest
//! precision/recall — the property the elderly-monitoring scenario
//! depends on.

use ifot::ml::anomaly::{MahalanobisDetector, RunningZScore};
use ifot::ml::eval::BinaryConfusion;
use ifot::ml::feature::Datum;
use ifot::sensors::device::VirtualSensor;
use ifot::sensors::inject::{AnomalyInjector, FaultKind, FaultWindow};
use ifot::sensors::sample::SensorKind;

/// Streams `seconds` of a faulted temperature sensor through a detector
/// closure; returns the confusion against ground truth.
fn evaluate(
    seconds: u64,
    rate_hz: u64,
    mut score_and_observe: impl FnMut(&Datum) -> f64,
    threshold: f64,
) -> BinaryConfusion {
    let sensor = VirtualSensor::preset(SensorKind::Temperature, 1, 99);
    let mut injector = AnomalyInjector::new(sensor);
    // Three spike episodes across the run.
    for k in 0..3u64 {
        let start = (10 + k * 15) * 1_000_000_000;
        injector.schedule(FaultWindow {
            from_ns: start,
            until_ns: start + 2_000_000_000,
            kind: FaultKind::Spike { magnitude: 25.0 },
        });
    }
    let period_ns = 1_000_000_000 / rate_hz;
    let mut confusion = BinaryConfusion::new();
    let warmup = 20;
    for i in 0..(seconds * rate_hz) {
        let labelled = injector.read(i * period_ns);
        let mut datum = Datum::new();
        for (j, v) in labelled.sample.values.iter().enumerate() {
            datum.set(format!("ch{j}"), *v as f64);
        }
        let score = score_and_observe(&datum);
        if i >= warmup {
            confusion.record(labelled.anomalous, score > threshold);
        }
    }
    confusion
}

#[test]
fn zscore_detects_spike_episodes() {
    // Contamination guard, as in the middleware's Anomaly operator: only
    // absorb samples that were not flagged.
    let mut d = RunningZScore::new(4.0);
    let confusion = evaluate(
        60,
        10,
        |datum| {
            let v: f64 = datum.iter().map(|(_, x)| x).sum();
            let s = d.score(v);
            if s <= 4.0 {
                d.observe(v);
            }
            s
        },
        4.0,
    );
    assert!(
        confusion.recall() > 0.5,
        "z-score missed the spikes: {confusion}"
    );
    assert!(
        confusion.precision() > 0.5,
        "z-score too noisy: {confusion}"
    );
}

#[test]
fn mahalanobis_detects_spike_episodes() {
    let mut d = MahalanobisDetector::new();
    let confusion = evaluate(
        60,
        10,
        |datum| {
            let v = datum.to_vector(1 << 16);
            let s = d.score(&v);
            if s <= 6.0 {
                d.observe(&v);
            }
            s
        },
        6.0,
    );
    assert!(
        confusion.recall() > 0.5,
        "mahalanobis missed the spikes: {confusion}"
    );
    assert!(
        confusion.precision() > 0.5,
        "mahalanobis too noisy: {confusion}"
    );
}

#[test]
fn clean_stream_produces_almost_no_false_alarms() {
    // No fault windows at all: the detector must stay quiet.
    let sensor = VirtualSensor::preset(SensorKind::Temperature, 2, 7);
    let mut injector = AnomalyInjector::new(sensor);
    let mut d = RunningZScore::new(4.0);
    let mut false_alarms = 0;
    let n = 600;
    for i in 0..n {
        let labelled = injector.read(i * 100_000_000);
        assert!(!labelled.anomalous);
        let v = labelled.sample.values[0] as f64;
        let s = d.score(v);
        d.observe(v);
        if i > 20 && s > 4.0 {
            false_alarms += 1;
        }
    }
    assert!(
        false_alarms <= n / 100,
        "too many false alarms on a clean stream: {false_alarms}"
    );
}
