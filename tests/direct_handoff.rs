//! Integration: direct stage-to-stage handoff through the public
//! worker-pool API.
//!
//! The unit tests in `executor::handoff` pin the routing decisions; this
//! suite drives real worker threads end-to-end and pins the properties
//! the node runtime depends on:
//!
//! * **Per-topic FIFO** — a single-worker chain delivers every item to
//!   egress in injection order: direct handoff must not reorder a
//!   stage's mailbox.
//! * **Exact conservation** — a multi-worker fan-out delivers every
//!   emission to every consumer exactly once, all of it counted as
//!   direct handoff when nothing saturates.
//! * **Determinism** — the handoff flag cannot perturb the netsim
//!   runtime: same-seed runs with the flag on and off produce
//!   bit-identical trace digests (inline mode never consults it).
//!
//! The test thread plays the node: the pool's `deliver` callback only
//! pushes into a shared inbox (never blocks, mirroring the real
//! node-thread channel) and the main thread drains it, routing any
//! fallback leftovers exactly like `handle_outputs` would.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use ifot::core::config::{ExecutorConfig, NodeConfig, OperatorKind, OperatorSpec, SensorSpec};
use ifot::core::executor::pool::{WorkerPool, WorkerRuntime};
use ifot::core::executor::{ExecutorGraph, WorkItem};
use ifot::core::flow::{FlowItem, FlowMessage};
use ifot::core::operators::OpOutput;
use ifot::core::sim_adapter::add_middleware_node;
use ifot::ml::feature::Datum;
use ifot::netsim::cpu::CpuProfile;
use ifot::netsim::metrics::Metrics;
use ifot::netsim::sim::Simulation;
use ifot::netsim::time::SimTime;
use ifot::netsim::wlan::WlanConfig;
use ifot::sensors::sample::SensorKind;

/// Pass-through stage feeding other local stages (handoff-eligible).
fn link(id: &str, input: &str, output: &str) -> OperatorSpec {
    OperatorSpec::through(
        id,
        OperatorKind::Custom {
            operator: "probe".into(),
        },
        vec![input.into()],
        output,
    )
    .local_only()
}

/// Pass-through stage whose output is published (egress: never handed
/// off, always routed through `deliver`).
fn egress(id: &str, input: &str, output: &str) -> OperatorSpec {
    OperatorSpec::through(
        id,
        OperatorKind::Custom {
            operator: "probe".into(),
        },
        vec![input.into()],
        output,
    )
}

fn probe_item(topic: &str, i: u64) -> FlowItem {
    FlowItem {
        topic: topic.into(),
        origin_ts_ns: i,
        seq: i,
        datum: Datum::new().with("x", i as f64),
        label: None,
        score: None,
    }
}

/// Outputs captured off worker threads, tagged with the emitting stage.
type Inbox = Arc<Mutex<Vec<(usize, OpOutput)>>>;

fn spawn_pool(graph: &ExecutorGraph, workers: usize, inbox: &Inbox) -> WorkerPool {
    let sink = Arc::clone(inbox);
    WorkerPool::spawn(
        "handoff-test",
        workers,
        graph.cells(),
        Arc::new(move |src, outputs| {
            let mut inbox = sink.lock();
            inbox.extend(outputs.into_iter().map(|o| (src, o)));
        }),
        Some(graph.direct_handoff()),
        WorkerRuntime {
            epoch: Instant::now(),
            metrics: Arc::new(Mutex::new(Metrics::new())),
            speed: None,
            seed: 0x1F07,
        },
    )
}

/// Drains the inbox until `expected` egress emissions arrived (or a
/// deadline passes), playing the node thread for fallback leftovers:
/// emissions on a non-egress stage's output topic are re-routed to their
/// consumers via the graph's route plan, exactly like `handle_outputs`.
fn collect_egress(
    graph: &ExecutorGraph,
    pool: &WorkerPool,
    inbox: &Inbox,
    expected: usize,
) -> Vec<(usize, FlowMessage)> {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut out: Vec<(usize, FlowMessage)> = Vec::new();
    while out.len() < expected && Instant::now() < deadline {
        let drained: Vec<(usize, OpOutput)> = {
            let mut inbox = inbox.lock();
            inbox.drain(..).collect()
        };
        let mut routed = false;
        for (src, output) in drained {
            let msg = match output {
                OpOutput::Emit(m) => m,
                other => panic!("pass-through stages only emit, got {other:?}"),
            };
            let spec = &graph.specs()[src];
            if spec.publish_output {
                out.push((src, msg));
                continue;
            }
            // Fallback leftover: route it like the node thread.
            let topic = spec.output.clone().expect("emitting stage has an output");
            let plan = graph.route(&topic);
            for route in &plan.stages {
                if route.stage == src {
                    continue;
                }
                graph.enqueue(
                    route.stage,
                    WorkItem::Item(FlowItem::from_message(&topic, msg.clone())),
                    0,
                );
                routed = true;
            }
        }
        if routed {
            pool.notify_work();
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    out
}

/// A single worker draining a three-stage chain must deliver every item
/// to egress in injection order — direct handoff preserves per-topic
/// FIFO — and every intra-node hop must be a direct handoff.
#[test]
fn single_worker_chain_is_fifo_and_fully_direct() {
    const N: u64 = 400;
    let specs = vec![
        link("a", "flow/in", "flow/ab"),
        link("b", "flow/ab", "flow/bc"),
        egress("c", "flow/bc", "flow/out"),
    ];
    let config = ExecutorConfig {
        workers: 1,
        mailbox_capacity: 1024,
        ..ExecutorConfig::default()
    };
    let graph = ExecutorGraph::compile(specs, &config);
    let inbox: Inbox = Arc::new(Mutex::new(Vec::new()));
    let pool = spawn_pool(&graph, 1, &inbox);

    for i in 0..N {
        graph.enqueue(0, WorkItem::Item(probe_item("flow/in", i)), 0);
    }
    pool.notify_work();
    let out = collect_egress(&graph, &pool, &inbox, N as usize);
    pool.stop();

    assert_eq!(out.len(), N as usize, "every item must reach egress");
    let origins: Vec<u64> = out.iter().map(|(_, m)| m.origin_ts_ns).collect();
    assert_eq!(
        origins,
        (0..N).collect::<Vec<_>>(),
        "direct handoff must preserve per-topic FIFO"
    );
    assert!(out.iter().all(|(src, _)| *src == 2), "egress comes from c");

    // Both intra-node hops (a→b, b→c) were direct; nothing saturated
    // (capacity 1024 > N) and nothing churned the routes.
    for stage in [0, 1] {
        let stats = graph.stats(stage);
        assert_eq!(stats.handoff_direct, N, "stage {stage} hops are direct");
        assert_eq!(stats.handoff_fallback, 0);
        assert_eq!(stats.handoff_stale_route, 0);
    }
    // Egress is never handed off.
    assert_eq!(graph.stats(2).handoff_direct, 0);

    let direct: u64 = (0..2).map(|s| graph.stats(s).handoff_direct).sum();
    let total: u64 = (0..2)
        .map(|s| {
            let st = graph.stats(s);
            st.handoff_direct + st.handoff_fallback + st.handoff_stale_route
        })
        .sum();
    assert!(
        direct as f64 >= 0.9 * total as f64,
        "direct handoff must cover >=90% of intra-node hops: {direct}/{total}"
    );
}

/// Four workers draining a fan-out (one producer, two egress consumers)
/// must conserve the flow exactly: each of the `N` emissions reaches
/// both consumers exactly once, all by direct handoff. (Inbox *arrival*
/// order is not asserted here — `deliver` runs after the stage lock is
/// released, so two workers stepping the same consumer back-to-back may
/// invert it, exactly as on the pre-handoff pooled path. Mailbox FIFO
/// itself is pinned by the single-worker test above.)
#[test]
fn multi_worker_fanout_conserves_every_item() {
    const N: u64 = 500;
    let specs = vec![
        link("a", "flow/in", "flow/ab"),
        egress("b", "flow/ab", "flow/out/b"),
        egress("c", "flow/ab", "flow/out/c"),
    ];
    let config = ExecutorConfig {
        workers: 4,
        mailbox_capacity: 4096,
        ..ExecutorConfig::default()
    };
    let graph = ExecutorGraph::compile(specs, &config);
    let inbox: Inbox = Arc::new(Mutex::new(Vec::new()));
    let pool = spawn_pool(&graph, 4, &inbox);

    for i in 0..N {
        graph.enqueue(0, WorkItem::Item(probe_item("flow/in", i)), 0);
    }
    pool.notify_work();
    let out = collect_egress(&graph, &pool, &inbox, 2 * N as usize);
    pool.stop();

    assert_eq!(
        out.len(),
        2 * N as usize,
        "exact conservation: N per consumer"
    );
    for stage in [1usize, 2] {
        let mut origins: Vec<u64> = out
            .iter()
            .filter(|(src, _)| *src == stage)
            .map(|(_, m)| m.origin_ts_ns)
            .collect();
        origins.sort_unstable();
        assert_eq!(
            origins,
            (0..N).collect::<Vec<_>>(),
            "consumer stage {stage} must see every item exactly once"
        );
    }
    // Nothing saturates (capacity 4096 > N): the producer's 2N hops are
    // all direct, which also satisfies the >=90% intra-node bound.
    let stats = graph.stats(0);
    assert_eq!(stats.handoff_direct, 2 * N);
    assert_eq!(stats.handoff_fallback, 0);
    assert_eq!(stats.handoff_stale_route, 0);
}

/// Same-seed netsim runs with the handoff flag on and off. The
/// deterministic runtime executes stages inline (`workers == 0`), where
/// the flag must have no effect — the digests are bit-identical, so
/// enabling the default cannot perturb any pinned trace.
#[test]
fn netsim_digest_is_identical_with_handoff_disabled() {
    fn run(handoff_enabled: bool, seed: u64) -> (u64, u64) {
        let mut sim = Simulation::with_wlan(WlanConfig::ideal(), seed);
        add_middleware_node(
            &mut sim,
            CpuProfile::RASPBERRY_PI_2,
            NodeConfig::new("broker").with_broker(),
        );
        add_middleware_node(
            &mut sim,
            CpuProfile::RASPBERRY_PI_2,
            NodeConfig::new("sensor-node")
                .with_broker_node("broker")
                .with_sensor(SensorSpec::new(SensorKind::Sound, 1, 20.0, seed)),
        );
        let mut analysis = NodeConfig::new("analysis")
            .with_broker_node("broker")
            .with_wire_format(ifot::core::wire::WireFormat::Binary)
            // An intra-node chain so the consumer topology the handoff
            // targets actually exists in the sim.
            .with_operator(
                OperatorSpec::through(
                    "refine",
                    OperatorKind::Custom {
                        operator: "probe".into(),
                    },
                    vec!["sensor/#".into()],
                    "flow/refined",
                )
                .local_only(),
            )
            .with_operator(OperatorSpec::sink(
                "score",
                OperatorKind::Anomaly {
                    detector: "zscore".into(),
                    threshold: 4.0,
                },
                vec!["flow/refined".into()],
            ));
        if !handoff_enabled {
            analysis = analysis.without_direct_handoff();
        }
        add_middleware_node(&mut sim, CpuProfile::RASPBERRY_PI_2, analysis);
        sim.enable_trace();
        sim.run_until(SimTime::from_secs(4));
        let scored = sim.metrics().counter("anomaly_scored");
        (sim.take_trace().digest(), scored)
    }

    let enabled = run(true, 0x1F07);
    let disabled = run(false, 0x1F07);
    assert!(enabled.1 > 20, "scoring must make progress: {enabled:?}");
    assert_eq!(
        enabled, disabled,
        "the handoff flag must not perturb the deterministic runtime"
    );
}
