//! Integration: dynamic join/leave and stream search (the paper's
//! future-work item, implemented over retained MQTT announcements).

use ifot::core::config::{NodeConfig, SensorSpec};
use ifot::core::sim_adapter::{add_middleware_node, SimNode};
use ifot::netsim::cpu::CpuProfile;
use ifot::netsim::sim::Simulation;
use ifot::netsim::time::SimDuration;
use ifot::netsim::wlan::WlanConfig;
use ifot::sensors::sample::SensorKind;

fn announcing_sensor(name: &str, kind: SensorKind, device: u16, seed: u64) -> NodeConfig {
    NodeConfig::new(name)
        .with_broker_node("broker")
        .with_announce()
        .with_sensor(SensorSpec::new(kind, device, 10.0, seed))
}

#[test]
fn directory_sees_joins_searches_and_leaves() {
    let mut sim = Simulation::with_wlan(WlanConfig::ideal(), 13);
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("broker").with_broker(),
    );
    // The observer joins FIRST, before any sensor announces.
    let observer = add_middleware_node(
        &mut sim,
        CpuProfile::THINKPAD_X250,
        NodeConfig::new("observer")
            .with_broker_node("broker")
            .with_directory(),
    );
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        announcing_sensor("kitchen", SensorKind::Temperature, 1, 3),
    );
    sim.run_for(SimDuration::from_secs(2));

    {
        let node: &SimNode = sim.actor_as(observer).expect("observer");
        let dir = node.middleware().directory();
        assert_eq!(dir.online_nodes(), vec!["kitchen"]);
        let hits = dir.search_kind("temperature");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1.topic, "sensor/1/temperature");
        assert_eq!(hits[0].1.rate_hz, Some(10.0));
        assert_eq!(dir.search_capability("sensor:temperature"), vec!["kitchen"]);
    }

    // A second module joins dynamically, two seconds in.
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        announcing_sensor("porch", SensorKind::Motion, 2, 4),
    );
    sim.run_for(SimDuration::from_secs(2));
    {
        let node: &SimNode = sim.actor_as(observer).expect("observer");
        let dir = node.middleware().directory();
        assert_eq!(dir.online_nodes(), vec!["kitchen", "porch"]);
        assert_eq!(dir.search_topic("sensor/#").len(), 2);
    }

    // The kitchen module dies ungracefully: keep-alive expiry fires its
    // will and the directory marks it offline.
    let kitchen = sim.node_id("kitchen").expect("registered");
    sim.set_node_up(kitchen, false);
    sim.run_for(SimDuration::from_secs(60)); // beyond 1.5x keep-alive (30 s)
    let node: &SimNode = sim.actor_as(observer).expect("observer");
    let dir = node.middleware().directory();
    assert_eq!(
        dir.online_nodes(),
        vec!["porch"],
        "dead node must leave the directory via its will"
    );
    assert_eq!(dir.len(), 2, "tombstone kept");
    assert!(dir.search_kind("temperature").is_empty());
}

#[test]
fn late_joining_observer_learns_from_retained_announcements() {
    let mut sim = Simulation::with_wlan(WlanConfig::ideal(), 14);
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("broker").with_broker(),
    );
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        announcing_sensor("kitchen", SensorKind::Sound, 1, 5),
    );
    sim.run_for(SimDuration::from_secs(2));

    // Observer joins AFTER the announcement was published: retention
    // must replay it on subscribe.
    let observer = add_middleware_node(
        &mut sim,
        CpuProfile::THINKPAD_X250,
        NodeConfig::new("late-observer")
            .with_broker_node("broker")
            .with_directory(),
    );
    sim.run_for(SimDuration::from_secs(2));
    let node: &SimNode = sim.actor_as(observer).expect("observer");
    assert_eq!(
        node.middleware().directory().online_nodes(),
        vec!["kitchen"],
        "retained announcement must reach late joiners"
    );
}

#[test]
fn announcements_include_operator_output_streams() {
    use ifot::core::config::{OperatorKind, OperatorSpec};
    let mut sim = Simulation::with_wlan(WlanConfig::ideal(), 15);
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("broker").with_broker(),
    );
    let observer = add_middleware_node(
        &mut sim,
        CpuProfile::THINKPAD_X250,
        NodeConfig::new("observer")
            .with_broker_node("broker")
            .with_directory(),
    );
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("analysis")
            .with_broker_node("broker")
            .with_announce()
            .with_sensor(SensorSpec::new(SensorKind::Humidity, 3, 5.0, 9))
            .with_operator(OperatorSpec::through(
                "smooth",
                OperatorKind::Window { size_ms: 200 },
                vec!["sensor/#".into()],
                "flow/app/smooth",
            )),
    );
    sim.run_for(SimDuration::from_secs(2));
    let node: &SimNode = sim.actor_as(observer).expect("observer");
    let dir = node.middleware().directory();
    // Both the raw sensor stream and the derived flow are discoverable —
    // the "secondary/tertiary use" of curated flows from the paper's
    // conclusion.
    assert_eq!(dir.search_topic("sensor/3/humidity").len(), 1);
    assert_eq!(dir.search_topic("flow/app/smooth").len(), 1);
}
