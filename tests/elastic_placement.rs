//! Integration: the elastic placement runtime end to end — a
//! `replicas = N` recipe deployed through the assignment strategy onto
//! the thread runtime with a zero-loss/zero-dup sequence ledger, and a
//! netsim migration cell driving the four-message shard-handover
//! protocol with exact flow conservation and bit-identical same-seed
//! digests.

use ifot::core::config::{NodeConfig, OperatorKind, OperatorSpec, SensorSpec};
use ifot::core::deploy::deploy;
use ifot::core::node::MQTT_BROKER_PORT;
use ifot::core::rebalance::{control_topic, ControlCommand, MigrateShard, RebalanceConfig};
use ifot::core::sim_adapter::{add_middleware_node, SimNode};
use ifot::core::thread_rt::ClusterBuilder;
use ifot::mqtt::codec::encode;
use ifot::mqtt::packet::{Connect, Packet as MqttPacket, Publish};
use ifot::mqtt::topic::TopicName;
use ifot::netsim::actor::{Actor, Context, Packet};
use ifot::netsim::cpu::CpuProfile;
use ifot::netsim::sim::Simulation;
use ifot::netsim::time::SimDuration;
use ifot::netsim::wlan::WlanConfig;
use ifot::recipe::assign::{LoadAware, ModuleInfo};
use ifot::recipe::dsl;
use ifot::sensors::sample::SensorKind;

/// A `replicas = 2` predict task compiled through `deploy` must land
/// its shards on two distinct modules via the assignment strategy, and
/// the thread runtime must process every sensed item exactly once
/// (complementary shard cover + phased-shutdown drain), with a clean
/// sequence ledger on every node.
#[test]
fn replicated_recipe_deploys_and_conserves_on_threads() {
    let recipe = dsl::parse(
        r#"
        recipe elastic {
            task mic:     sense(sensor = "sound", rate_hz = 25);
            task predict: predict(algorithm = "pa", replicas = 2);
            mic -> predict;
        }
    "#,
    )
    .expect("recipe parses");
    let modules = vec![
        ModuleInfo::new("m-sound", 1.0).with_capability("sensor:sound"),
        ModuleInfo::new("m-hub", 2.0),
        ModuleInfo::new("m-edge", 1.0),
    ];
    let plan = deploy(&recipe, &modules, &LoadAware, "m-hub").expect("deploys");

    // The strategy spread the two shards over two distinct modules,
    // with complementary sequence filters.
    let hosts: Vec<(&str, (u64, u64))> = plan
        .configs
        .iter()
        .flat_map(|c| c.operators.iter().map(move |o| (c, o)))
        .filter(|(_, o)| o.id == "predict")
        .map(|(c, o)| (c.name.as_str(), o.shard.expect("replicas are sharded")))
        .collect();
    assert_eq!(hosts.len(), 2, "two replicas placed: {hosts:?}");
    assert_ne!(hosts[0].0, hosts[1].0, "replicas on distinct modules");
    let mut shards: Vec<u64> = hosts.iter().map(|(_, (_, k))| *k).collect();
    shards.sort_unstable();
    assert_eq!(shards, vec![0, 1]);
    assert!(hosts.iter().all(|(_, (m, _))| *m == 2));

    let mut builder = ClusterBuilder::new();
    for cfg in plan.configs.clone() {
        builder = builder.node(cfg);
    }
    let report = builder
        .start()
        .run_for(std::time::Duration::from_millis(1500));

    let sensed = report.metrics.counter("flow_items_published");
    let predicted = report.metrics.counter("predicted");
    assert!(predicted > 10, "pipeline made progress: {predicted}");
    // Exactly-once across the shard cover: each sensed item predicted
    // by exactly one replica, none lost and none duplicated.
    assert_eq!(
        sensed, predicted,
        "shard cover lost or duplicated items: sensed={sensed} predicted={predicted}"
    );
    for node in &report.nodes {
        let r = node.resilience();
        assert_eq!(r.seq_gaps, 0, "{}: gaps {r:?}", node.name());
        assert_eq!(r.seq_duplicates, 0, "{}: dups {r:?}", node.name());
    }
    // The monitor's placement view shows the live shard assignment.
    let placements: Vec<String> = report.nodes.iter().flat_map(|n| n.placement()).collect();
    assert!(
        placements.iter().any(|p| p.contains("predict shard 0/2")),
        "placement view missing shard 0: {placements:?}"
    );
    assert!(
        placements.iter().any(|p| p.contains("predict shard 1/2")),
        "placement view missing shard 1: {placements:?}"
    );
}

/// Minimal MQTT client actor standing in for an operator console: it
/// connects to the broker and publishes one control-plane command at a
/// fixed simulation time.
struct ControlInjector {
    broker: String,
    topic: String,
    payload: Vec<u8>,
    fire_after_ms: u64,
    sent: bool,
}

impl std::fmt::Debug for ControlInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlInjector")
            .field("topic", &self.topic)
            .finish()
    }
}

impl Actor for ControlInjector {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if let Some(id) = ctx.lookup(&self.broker) {
            ctx.send(
                id,
                MQTT_BROKER_PORT,
                encode(&MqttPacket::Connect(Connect::new("ops-console"))),
            );
        }
        ctx.set_timer_after(SimDuration::from_millis(self.fire_after_ms), 1);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        if tag != 1 || self.sent {
            return;
        }
        self.sent = true;
        let topic = TopicName::new(self.topic.clone()).expect("valid control topic");
        if let Some(id) = ctx.lookup(&self.broker) {
            ctx.send(
                id,
                MQTT_BROKER_PORT,
                encode(&MqttPacket::Publish(Publish::qos0(
                    topic,
                    self.payload.clone(),
                ))),
            );
        }
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, _packet: Packet) {}
}

/// Everything the migration cell measures, for same-seed comparison.
#[derive(Debug, PartialEq, Eq)]
struct MigrationRun {
    digest: u64,
    sensed: u64,
    ingested: u64,
    predicted: u64,
    migrations_in: u64,
    migrations_out: u64,
    rebalance_decisions: u64,
    load_reports: u64,
    edge_a: (u64, u64),
    edge_b: (u64, u64),
    edge_b_placement: Vec<String>,
    seq_gaps: u64,
    seq_duplicates: u64,
}

/// One migration cell: a 40 Hz sound stream split over two sequence
/// shards (`predict-a` on edge-a, `predict-b` on edge-b), an idle
/// rebalancing watcher, and an operator console that orders
/// `predict-a`'s shard moved to edge-b at t=3s. The sensor dies at
/// t=6s so the pipeline quiesces and conservation is exact.
fn migration_cell(seed: u64) -> MigrationRun {
    let mut sim = Simulation::with_wlan(WlanConfig::ideal(), seed);
    sim.enable_trace();
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("broker").with_broker(),
    );
    let sensor = add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("sensor-node")
            .with_broker_node("broker")
            .with_sensor(SensorSpec::new(SensorKind::Sound, 1, 40.0, 3)),
    );
    let edge_a = add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("edge-a")
            .with_broker_node("broker")
            .with_operator(
                OperatorSpec::sink(
                    "predict-a",
                    OperatorKind::Predict {
                        algorithm: "pa".into(),
                    },
                    vec!["sensor/#".into()],
                )
                .sharded(2, 0),
            )
            .with_load_reports(500)
            .with_migrations(),
    );
    let edge_b = add_middleware_node(
        &mut sim,
        CpuProfile::THINKPAD_X250,
        NodeConfig::new("edge-b")
            .with_broker_node("broker")
            .with_operator(OperatorSpec::sink(
                "ingest",
                OperatorKind::Custom {
                    operator: "ingest".into(),
                },
                vec!["sensor/#".into()],
            ))
            .with_operator(
                OperatorSpec::sink(
                    "predict-b",
                    OperatorKind::Predict {
                        algorithm: "pa".into(),
                    },
                    vec!["sensor/#".into()],
                )
                .sharded(2, 1),
            )
            .with_load_reports(500)
            .with_migrations(),
    );
    // A live controller whose flap guards must hold: both edges report
    // load, neither is hot (inline stages never queue), so the tick
    // loop runs for the whole cell without emitting a single decision.
    add_middleware_node(
        &mut sim,
        CpuProfile::THINKPAD_X250,
        NodeConfig::new("watcher")
            .with_broker_node("broker")
            .with_rebalancer(RebalanceConfig {
                interval_ms: 500,
                ..RebalanceConfig::default()
            }),
    );
    let cmd = ControlCommand::Migrate(MigrateShard {
        op: "predict-a".into(),
        modulus: 2,
        shard: 0,
        from: "edge-a".into(),
        to: "edge-b".into(),
    });
    sim.add_node(
        "ops-console",
        CpuProfile::THINKPAD_X250,
        Box::new(ControlInjector {
            broker: "broker".into(),
            topic: control_topic("edge-a"),
            payload: cmd.encode(),
            fire_after_ms: 3_000,
            sent: false,
        }),
    );

    sim.run_for(SimDuration::from_secs(6));
    sim.set_node_up(sensor, false);
    sim.run_for(SimDuration::from_secs(6));

    let node = |id| {
        sim.actor_as::<SimNode>(id)
            .expect("middleware node")
            .middleware()
    };
    let (mut seq_gaps, mut seq_duplicates) = (0, 0);
    for id in [edge_a, edge_b] {
        let r = node(id).resilience();
        seq_gaps += r.seq_gaps;
        seq_duplicates += r.seq_duplicates;
    }
    MigrationRun {
        sensed: sim.metrics().counter("flow_items_published"),
        ingested: sim.metrics().counter("custom_ingest"),
        predicted: sim.metrics().counter("predicted"),
        migrations_in: sim.metrics().counter("migrations_in"),
        migrations_out: sim.metrics().counter("migrations_out"),
        rebalance_decisions: sim.metrics().counter("rebalance_decisions"),
        load_reports: sim.metrics().counter("load_reports"),
        edge_a: node(edge_a).migrations(),
        edge_b: node(edge_b).migrations(),
        edge_b_placement: node(edge_b).placement(),
        seq_gaps,
        seq_duplicates,
        digest: sim.take_trace().digest(),
    }
}

/// The four-message handover conserves the flow exactly — every sensed
/// item is ingested once and predicted once, across the migration — and
/// the whole cell (heartbeats, controller ticks, protocol, fenced
/// resume) is bit-identical under the same seed.
#[test]
fn injected_migration_conserves_exactly_in_netsim() {
    let run = migration_cell(0x1f07);

    // The shard moved: one completed migration, each side of it on the
    // right node, and edge-b now hosts both shards.
    assert_eq!(run.migrations_out, 1, "source completed: {run:?}");
    assert_eq!(run.migrations_in, 1, "destination completed: {run:?}");
    assert_eq!(run.edge_a, (1, 0), "edge-a gave the shard up");
    assert_eq!(run.edge_b, (0, 1), "edge-b took the shard over");
    assert!(
        run.edge_b_placement
            .iter()
            .any(|p| p.contains("predict-a shard 0/2")),
        "edge-b placement missing migrated shard: {:?}",
        run.edge_b_placement
    );
    assert!(
        run.edge_b_placement
            .iter()
            .any(|p| p.contains("predict-b shard 1/2")),
        "edge-b placement lost its own shard: {:?}",
        run.edge_b_placement
    );

    // Exact conservation across the handover: the fence splits every
    // sequence between old and new owner with no loss and no overlap.
    assert!(run.sensed > 200, "sensor produced a real stream: {run:?}");
    assert_eq!(
        run.sensed, run.ingested,
        "ingest accounting lost items: {run:?}"
    );
    assert_eq!(
        run.sensed, run.predicted,
        "shard cover lost or double-predicted items across the migration: {run:?}"
    );
    assert_eq!(run.seq_gaps, 0, "transport gaps: {run:?}");
    assert_eq!(run.seq_duplicates, 0, "transport duplicates: {run:?}");

    // The heartbeat plane ran, and the watcher's flap guards held: an
    // un-congested cluster never triggers the rebalancer.
    assert!(run.load_reports > 10, "heartbeats published: {run:?}");
    assert_eq!(
        run.rebalance_decisions, 0,
        "idle controller decided: {run:?}"
    );

    // Determinism: the full elastic machinery replays bit-identically.
    let replay = migration_cell(0x1f07);
    assert_eq!(run, replay, "same-seed migration cells diverged");
}

/// With every elastic knob at its default (off), the same topology and
/// seed produce bit-identical event traces — the new subsystem adds no
/// timers, packets, or scheduling perturbation unless enabled.
#[test]
fn same_seed_digests_identical_with_elastic_defaults_off() {
    let run = |seed: u64| -> (u64, u64) {
        let mut sim = Simulation::with_wlan(WlanConfig::ideal(), seed);
        sim.enable_trace();
        add_middleware_node(
            &mut sim,
            CpuProfile::RASPBERRY_PI_2,
            NodeConfig::new("broker").with_broker(),
        );
        add_middleware_node(
            &mut sim,
            CpuProfile::RASPBERRY_PI_2,
            NodeConfig::new("sensor-node")
                .with_broker_node("broker")
                .with_sensor(SensorSpec::new(SensorKind::Sound, 1, 40.0, 3)),
        );
        add_middleware_node(
            &mut sim,
            CpuProfile::RASPBERRY_PI_2,
            NodeConfig::new("edge")
                .with_broker_node("broker")
                .with_operator(
                    OperatorSpec::sink(
                        "predict",
                        OperatorKind::Predict {
                            algorithm: "pa".into(),
                        },
                        vec!["sensor/#".into()],
                    )
                    .sharded(2, 0),
                ),
        );
        sim.run_for(SimDuration::from_secs(4));
        (
            sim.metrics().counter("predicted"),
            sim.take_trace().digest(),
        )
    };
    let (predicted_a, digest_a) = run(7);
    let (predicted_b, digest_b) = run(7);
    assert!(predicted_a > 0, "defaults-off pipeline made progress");
    assert_eq!(predicted_a, predicted_b);
    assert_eq!(digest_a, digest_b, "defaults-off digests diverged");
}
