//! Integration: delivery guarantees of the MQTT substrate under a lossy
//! transport, driven deterministically through the sans-I/O state
//! machines (no simulator — pure protocol logic).
//!
//! * QoS 1 — every message arrives **at least once** (duplicates allowed).
//! * QoS 2 — every message arrives **exactly once**.
//!
//! The `*_across_session_resume` tests add forced-disconnect schedules
//! on top of the loss: the guarantees must also survive transport
//! teardowns and supervisor-driven session resumes (see
//! `tests/common/mod.rs` for the harness; `tests/proptests.rs` runs the
//! same harness under generated schedules).

mod common;

use std::collections::BTreeMap;

use common::{assert_guarantee, run_with_reconnects};

use ifot::mqtt::broker::{Action, Broker};
use ifot::mqtt::client::{Client, ClientConfig, ClientEvent};
use ifot::mqtt::packet::{Packet, QoS};
use ifot::mqtt::topic::{TopicFilter, TopicName};

const PUB: u8 = 1;
const SUB: u8 = 2;

/// Deterministic loss decision (LCG), ~`loss_pct`% drops.
struct Loss {
    state: u64,
    loss_pct: u64,
}

impl Loss {
    fn drop(&mut self) -> bool {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.state >> 33) % 100 < self.loss_pct
    }
}

/// Runs `count` publications at `qos` through a lossy transport; returns
/// payload → delivery count at the subscriber.
fn run(qos: QoS, count: u32, loss_pct: u64) -> BTreeMap<Vec<u8>, u32> {
    let cfg = || ClientConfig {
        retransmit_timeout_ns: 50,
        ..ClientConfig::default()
    };
    let mut publisher = Client::new("pub", cfg());
    let mut subscriber = Client::new("sub", cfg());
    let mut broker: Broker<u8> = Broker::with_config(ifot::mqtt::broker::BrokerConfig {
        retransmit_timeout_ns: 50,
        ..Default::default()
    });
    let mut loss = Loss {
        state: 42,
        loss_pct,
    };
    let mut delivered: BTreeMap<Vec<u8>, u32> = BTreeMap::new();

    // Queues of packets in flight on each leg (loss applied at enqueue).
    let mut to_broker: Vec<(u8, Packet)> = Vec::new();
    let mut to_client: Vec<(u8, Packet)> = Vec::new();

    broker.connection_opened(PUB, 0);
    broker.connection_opened(SUB, 0);
    // Session setup on a lossless prefix (connection setup retries are
    // exercised elsewhere; here the guarantees under test are delivery).
    for (conn, client) in [(PUB, &mut publisher), (SUB, &mut subscriber)] {
        let connect = client.connect().expect("first connect");
        for action in broker.handle_packet(&conn, connect, 0) {
            if let Action::Send { packet, .. } = action {
                let (_, out) = client.handle_packet(packet, 0).expect("connack");
                assert!(out.is_empty());
            }
        }
    }
    let subscribe = subscriber
        .subscribe(vec![(TopicFilter::new("t/#").expect("valid"), qos)], 0)
        .expect("subscribe");
    for action in broker.handle_packet(&SUB, subscribe, 0) {
        if let Action::Send { packet, .. } = action {
            let _ = subscriber.handle_packet(packet, 0).expect("suback");
        }
    }

    // Publish everything up front.
    let mut now = 0u64;
    for i in 0..count {
        let packet = publisher
            .publish(
                TopicName::new("t/x").expect("valid"),
                i.to_be_bytes().to_vec(),
                qos,
                false,
                now,
            )
            .expect("publish");
        if !loss.drop() {
            to_broker.push((PUB, packet));
        }
    }

    // Tick until every retransmission window has drained.
    for _ in 0..10_000 {
        now += 10;
        // Broker ingress.
        for (conn, packet) in std::mem::take(&mut to_broker) {
            for action in broker.handle_packet(&conn, packet, now) {
                if let Action::Send { conn, packet } = action {
                    if !loss.drop() {
                        to_client.push((conn, packet));
                    }
                }
            }
        }
        // Client ingress.
        for (conn, packet) in std::mem::take(&mut to_client) {
            let client = if conn == PUB {
                &mut publisher
            } else {
                &mut subscriber
            };
            let (events, out) = client.handle_packet(packet, now).expect("valid stream");
            for event in events {
                if let ClientEvent::Message(p) = event {
                    *delivered.entry(p.payload.to_vec()).or_insert(0) += 1;
                }
            }
            for packet in out {
                if !loss.drop() {
                    to_broker.push((conn, packet));
                }
            }
        }
        // Retransmissions.
        for (conn, client) in [(PUB, &mut publisher), (SUB, &mut subscriber)] {
            for packet in client.poll(now) {
                if !loss.drop() {
                    to_broker.push((conn, packet));
                }
            }
        }
        for action in broker.poll(now) {
            if let Action::Send { conn, packet } = action {
                if !loss.drop() {
                    to_client.push((conn, packet));
                }
            }
        }
        if to_broker.is_empty()
            && to_client.is_empty()
            && publisher.inflight_count() == 0
            && publisher.inflight2_count() == 0
            && delivered.len() == count as usize
        {
            break;
        }
    }
    delivered
}

#[test]
fn qos1_is_at_least_once_under_loss() {
    let delivered = run(QoS::AtLeastOnce, 50, 20);
    assert_eq!(delivered.len(), 50, "every message must arrive");
    assert!(
        delivered.values().all(|&n| n >= 1),
        "at-least-once violated"
    );
    // Under 20% loss, some PUBACK losses must have caused duplicates —
    // otherwise the test is not exercising redelivery at all.
    assert!(
        delivered.values().any(|&n| n > 1),
        "expected at least one duplicate delivery at QoS 1 under loss"
    );
}

#[test]
fn qos2_is_exactly_once_under_loss() {
    let delivered = run(QoS::ExactlyOnce, 50, 20);
    assert_eq!(delivered.len(), 50, "every message must arrive");
    for (payload, n) in &delivered {
        assert_eq!(
            *n, 1,
            "exactly-once violated for payload {payload:?}: delivered {n} times"
        );
    }
}

#[test]
fn qos2_survives_brutal_loss() {
    let delivered = run(QoS::ExactlyOnce, 20, 40);
    assert_eq!(delivered.len(), 20);
    assert!(delivered.values().all(|&n| n == 1));
}

#[test]
fn lossless_transport_is_trivially_exact() {
    for qos in [QoS::AtLeastOnce, QoS::ExactlyOnce] {
        let delivered = run(qos, 30, 0);
        assert_eq!(delivered.len(), 30);
        assert!(delivered.values().all(|&n| n == 1));
    }
}

// ---------------------------------------------------------------------
// Loss + reconnect schedules (session resume)
// ---------------------------------------------------------------------

/// Both sides are killed (at different times) while QoS 1 publishes are
/// in flight; the persistent sessions replay them on resume.
#[test]
fn qos1_at_least_once_across_session_resume() {
    let run = run_with_reconnects(
        QoS::AtLeastOnce,
        40,
        15,
        &[(500, true), (900, false), (1_500, true)],
        7,
    );
    assert!(
        run.session_resumes >= 3,
        "every forced teardown must end in a session resume: {run:?}"
    );
    assert_guarantee(&run, QoS::AtLeastOnce, 40);
}

/// The same schedule at QoS 2: teardowns land between PUBLISH, PUBREC,
/// PUBREL and PUBCOMP, and redelivery across the resume must still
/// collapse to exactly one delivery per message.
#[test]
fn qos2_exactly_once_across_session_resume() {
    let run = run_with_reconnects(
        QoS::ExactlyOnce,
        40,
        15,
        &[(500, true), (900, false), (1_500, true)],
        7,
    );
    assert!(run.session_resumes >= 3, "{run:?}");
    assert_guarantee(&run, QoS::ExactlyOnce, 40);
}

/// Publisher and subscriber die at the same instant.
#[test]
fn simultaneous_teardown_of_both_sides_recovers() {
    for qos in [QoS::AtLeastOnce, QoS::ExactlyOnce] {
        let run = run_with_reconnects(qos, 30, 10, &[(700, true), (700, false)], 11);
        assert_guarantee(&run, qos, 30);
    }
}

/// A teardown storm: six kills in close succession, under loss heavy
/// enough that reconnect handshakes themselves need retries.
#[test]
fn reconnect_storm_under_heavy_loss_converges() {
    let schedule: Vec<(u64, bool)> = (1..=6).map(|k| (k * 400, k % 2 == 0)).collect();
    for qos in [QoS::AtLeastOnce, QoS::ExactlyOnce] {
        let run = run_with_reconnects(qos, 25, 30, &schedule, 13);
        assert_guarantee(&run, qos, 25);
    }
}
