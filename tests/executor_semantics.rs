//! Integration: staged-executor semantics on the deterministic runtime.
//!
//! Two properties are pinned here:
//!
//! * **Backpressure semantics** — bounded stage mailboxes shed exactly
//!   the configured victims (oldest/newest *items*, never timers) and
//!   count every drop in the per-stage stats.
//! * **Bit-identical traces** — a seeded chaos run on the netsim
//!   runtime produces the same trace digest as the pre-executor
//!   monolithic dispatch: the inline execution path walks the same
//!   operator graph with the same env-call order.

use ifot::core::config::{NodeConfig, OperatorKind, OperatorSpec, SensorSpec, ShedPolicy};
use ifot::core::env::MockEnv;
use ifot::core::executor::ops::build_operator;
use ifot::core::executor::{ExecutorStage, OpTimer, WorkItem};
use ifot::core::flow::FlowItem;
use ifot::core::operators::OpOutput;
use ifot::core::sim_adapter::add_middleware_node;
use ifot::ml::feature::Datum;
use ifot::mqtt::packet::QoS;
use ifot::netsim::cpu::CpuProfile;
use ifot::netsim::sim::Simulation;
use ifot::netsim::time::SimTime;
use ifot::netsim::wlan::WlanConfig;
use ifot::sensors::sample::SensorKind;

/// A two-stage analysis pipeline (train + anomaly, both fed from the
/// sensor stream) behind a resilient transport, the same shape the
/// chaos corpus uses.
fn staged_pipeline(seed: u64) -> Simulation {
    let mut sim = Simulation::with_wlan(WlanConfig::ideal(), seed);
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("broker").with_broker(),
    );
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("sensor-node")
            .with_broker_node("broker")
            .with_sensor(SensorSpec::new(SensorKind::Sound, 1, 20.0, seed))
            .with_qos(QoS::AtLeastOnce)
            .with_keep_alive(1)
            .with_persistent_session()
            .with_offline_queue(4096),
    );
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("analysis")
            .with_broker_node("broker")
            .with_operator(OperatorSpec::sink(
                "learn",
                OperatorKind::Train {
                    algorithm: "pa".into(),
                    mix_interval_ms: 0,
                },
                vec!["sensor/#".into()],
            ))
            .with_operator(OperatorSpec::sink(
                "score",
                OperatorKind::Anomaly {
                    detector: "zscore".into(),
                    threshold: 4.0,
                },
                vec!["sensor/#".into()],
            ))
            .with_qos(QoS::AtLeastOnce)
            .with_keep_alive(1)
            .with_persistent_session()
            .with_offline_queue(4096),
    );
    sim
}

/// Seeded chaos schedule: steady flow, broker crash at t=2 s, restart
/// at t=3.5 s, recovery until t=8 s. Returns the full-run trace digest
/// plus the end-to-end counters the digest must agree with.
fn digest_schedule(seed: u64) -> (u64, u64, u64) {
    let mut sim = staged_pipeline(seed);
    sim.enable_trace();
    let broker = sim.node_id("broker").expect("registered");
    sim.run_until(SimTime::from_secs(2));
    sim.set_node_up(broker, false);
    sim.run_until(SimTime::from_millis(3_500));
    sim.restart_node(broker);
    sim.run_until(SimTime::from_secs(8));
    let trained = sim.metrics().counter("trained");
    let scored = sim.metrics().counter("anomaly_scored");
    (sim.take_trace().digest(), trained, scored)
}

/// Digest of the seed-0x1F07 chaos run, captured on the pre-executor
/// monolithic dispatch. The staged executor must reproduce it exactly:
/// any reordering of RNG draws, CPU charges, or sends shows up here.
const PINNED_DIGEST_SEED_0X1F07: u64 = 0x160f_b6d7_9ec5_5a7f;

#[test]
fn netsim_trace_digest_unchanged_by_executor_refactor() {
    let (digest, trained, scored) = digest_schedule(0x1F07);
    assert!(trained > 50, "training must make progress: {trained}");
    assert!(scored > 50, "scoring must make progress: {scored}");
    println!("digest_schedule(0x1F07) = {digest:#018x} trained={trained} scored={scored}");
    assert_eq!(
        digest, PINNED_DIGEST_SEED_0X1F07,
        "netsim run is no longer bit-identical to the pre-refactor trace"
    );
}

#[test]
fn netsim_trace_digest_reproduces_across_runs() {
    let first = digest_schedule(7);
    let second = digest_schedule(7);
    assert_eq!(first, second, "same seed must reproduce the same run");
}

/// Like [`digest_schedule`] but with stage tracing on: the trace now
/// interleaves `stage:`-prefixed operator enqueue/dequeue records with
/// the dispatch entries.
fn stage_trace_schedule(seed: u64) -> (u64, Vec<String>) {
    let mut sim = staged_pipeline(seed);
    sim.enable_stage_trace();
    sim.run_until(SimTime::from_secs(4));
    let trace = sim.take_trace();
    let stage_kinds = trace
        .entries()
        .iter()
        .filter(|e| e.kind.starts_with("stage:"))
        .map(|e| e.kind.clone())
        .collect();
    (trace.digest(), stage_kinds)
}

#[test]
fn stage_trace_records_operator_events_deterministically() {
    let (digest, stage_kinds) = stage_trace_schedule(0x1F07);
    assert!(
        !stage_kinds.is_empty(),
        "stage tracing must record operator events"
    );
    // Both pipeline stages appear, with their id, depth and batch size.
    for op in ["learn", "score"] {
        assert!(
            stage_kinds
                .iter()
                .any(|k| k.starts_with(&format!("stage:stage_enq({op}, depth="))),
            "missing enqueue records for {op}: {:?}",
            &stage_kinds[..stage_kinds.len().min(4)]
        );
        assert!(
            stage_kinds
                .iter()
                .any(|k| k.contains(&format!("stage_deq({op}, depth=")) && k.contains("batch=")),
            "missing dequeue records for {op}"
        );
    }
    // Stage tracing is itself deterministic...
    let (again, _) = stage_trace_schedule(0x1F07);
    assert_eq!(digest, again, "stage trace must reproduce across runs");
    // ...and purely additive: turning it off restores the pinned digest
    // (checked by `netsim_trace_digest_unchanged_by_executor_refactor`).
}

/// One probe item, identified by its origin timestamp.
fn probe_item(i: u64) -> FlowItem {
    FlowItem {
        topic: "flow/probe/in".into(),
        origin_ts_ns: i,
        seq: i,
        datum: Datum::new().with("v", i as f64),
        label: None,
        score: None,
    }
}

/// A pass-through stage with the given mailbox bound and policy.
fn probe_stage(capacity: usize, policy: ShedPolicy) -> ExecutorStage {
    ExecutorStage::new(
        build_operator(OperatorSpec::through(
            "pass",
            OperatorKind::Custom {
                operator: "probe".into(),
            },
            vec!["flow/probe/in".into()],
            "flow/probe/out",
        )),
        capacity,
        policy,
    )
}

/// Drains the stage and returns the origin timestamps of every emitted
/// message — i.e. which probe items survived the mailbox.
fn drain_origins(stage: &mut ExecutorStage, env: &mut MockEnv) -> Vec<u64> {
    let mut survivors = Vec::new();
    while let Some(outputs) = stage.step(env) {
        for output in outputs {
            match output {
                OpOutput::Emit(m) => survivors.push(m.origin_ts_ns),
                other => panic!("pass-through emitted {other:?}"),
            }
        }
    }
    survivors
}

#[test]
fn shed_oldest_drops_exactly_the_oldest_items_and_counts_them() {
    let mut env = MockEnv::new();
    let mut stage = probe_stage(4, ShedPolicy::ShedOldest);
    // Fill the mailbox, wedge a timer in the middle, then overflow.
    for i in 0..4 {
        stage.enqueue(WorkItem::Item(probe_item(i)), 0);
    }
    stage.enqueue(WorkItem::Timer(OpTimer::Flush), 0);
    for i in 4..10 {
        stage.enqueue(WorkItem::Item(probe_item(i)), 0);
    }
    // Items 0..=5 were evicted in age order; the timer was never a
    // candidate even though it was older than every survivor.
    assert_eq!(drain_origins(&mut stage, &mut env), vec![6, 7, 8, 9]);
    assert_eq!(stage.stats.shed_oldest, 6);
    assert_eq!(stage.stats.shed_newest, 0);
    assert_eq!(stage.stats.enqueued, 11, "timer + 10 offered items");
    assert_eq!(stage.stats.processed, 5, "timer + 4 surviving items");
    assert_eq!(stage.stats.max_depth, 5);
    assert_eq!(stage.depth(), 0);
    let line = stage.describe_stats();
    assert!(
        line.contains("shed=6"),
        "monitor line must count drops: {line}"
    );
}

/// Batched dispatch must be invisible to operator semantics: for every
/// operator kind, delivering N items as one [`StreamOperator::on_batch`]
/// call yields exactly the outputs of N [`StreamOperator::on_item`]
/// calls in order. Only CPU accounting may differ (ML kinds charge their
/// per-call model cost once per batch).
#[test]
fn batch_dispatch_equals_per_item_loop_for_every_operator_kind() {
    let kinds: Vec<(&str, OperatorKind)> = vec![
        (
            "join",
            OperatorKind::Join {
                expected_sources: 2,
            },
        ),
        ("window", OperatorKind::Window { size_ms: 50 }),
        (
            "train",
            OperatorKind::Train {
                algorithm: "pa".into(),
                mix_interval_ms: 0,
            },
        ),
        (
            "predict",
            OperatorKind::Predict {
                algorithm: "pa".into(),
            },
        ),
        (
            "anomaly",
            OperatorKind::Anomaly {
                detector: "zscore".into(),
                threshold: 3.0,
            },
        ),
        (
            "estimate",
            OperatorKind::Estimate {
                model: "ewma".into(),
            },
        ),
        (
            "policy",
            OperatorKind::Policy {
                key: "v".into(),
                on_above: 4.0,
                off_below: 2.0,
                emit: "power".into(),
            },
        ),
        ("actuate", OperatorKind::Actuate { device_id: 1 }),
        (
            "custom",
            OperatorKind::Custom {
                operator: "probe".into(),
            },
        ),
        ("mix", OperatorKind::MixCoordinator { expected: 2 }),
    ];
    for (name, kind) in kinds {
        let spec = OperatorSpec::through(name, kind, vec!["flow/probe/#".into()], "flow/probe/out");
        // Two alternating source topics with paired sequence numbers so
        // the join kind completes tuples; labels so training is driven.
        let items: Vec<FlowItem> = (0..6)
            .map(|i| FlowItem {
                topic: if i % 2 == 0 {
                    "flow/probe/a".into()
                } else {
                    "flow/probe/b".into()
                },
                origin_ts_ns: i,
                seq: i / 2,
                datum: Datum::new().with("v", i as f64),
                label: Some(if i % 2 == 0 { "hot" } else { "cold" }.into()),
                score: None,
            })
            .collect();

        let mut loop_env = MockEnv::new();
        let mut loop_op = build_operator(spec.clone());
        let mut loop_out = Vec::new();
        for item in items.clone() {
            loop_out.append(&mut loop_op.on_item(&mut loop_env, item));
        }

        let mut batch_env = MockEnv::new();
        let mut batch_op = build_operator(spec);
        let batch_out = batch_op.on_batch(&mut batch_env, items);

        assert_eq!(
            loop_out, batch_out,
            "operator kind {name} diverged under batching"
        );
        // Counters agree too, modulo the batch-call bookkeeping the
        // batched path adds for itself.
        let mut batch_counters = batch_env.counters.clone();
        batch_counters.retain(|k, _| !k.ends_with("_batch_calls"));
        assert_eq!(
            loop_env.counters, batch_counters,
            "operator kind {name} counted differently under batching"
        );
    }
}

/// A shared (zero-clone fan-out) batch must be indistinguishable from
/// an owned batch at the operator boundary — whether the stage ends up
/// unwrapping the sole reference or cloning behind an outstanding one.
#[test]
fn shared_batch_delivery_is_identical_to_owned_batch() {
    use std::sync::Arc;
    let items: Vec<FlowItem> = (0..6).map(probe_item).collect();

    let mut owned_env = MockEnv::new();
    let mut owned_stage = probe_stage(16, ShedPolicy::Block);
    owned_stage.enqueue(WorkItem::Batch(items.clone()), 0);
    let owned = drain_origins(&mut owned_stage, &mut owned_env);
    assert_eq!(owned.len(), 6);

    // Sole reference: execution unwraps the allocation for free.
    let mut sole_env = MockEnv::new();
    let mut sole_stage = probe_stage(16, ShedPolicy::Block);
    sole_stage.enqueue(WorkItem::SharedBatch(Arc::new(items.clone())), 0);
    let sole = drain_origins(&mut sole_stage, &mut sole_env);

    // Outstanding fan-out reference: execution clones lazily and drops
    // its handle, leaving the other consumer's reference untouched.
    let keep = Arc::new(items);
    let mut fan_env = MockEnv::new();
    let mut fan_stage = probe_stage(16, ShedPolicy::Block);
    fan_stage.enqueue(WorkItem::SharedBatch(Arc::clone(&keep)), 0);
    let fanned = drain_origins(&mut fan_stage, &mut fan_env);
    assert_eq!(Arc::strong_count(&keep), 1, "execution drops its handle");

    assert_eq!(owned, sole, "sole-reference delivery diverged");
    assert_eq!(owned, fanned, "cloning delivery diverged");
    assert_eq!(owned_env.counters, sole_env.counters);
    assert_eq!(owned_env.counters, fan_env.counters);
    assert_eq!(owned_stage.stats, sole_stage.stats);
    assert_eq!(owned_stage.stats, fan_stage.stats);
}

/// Sharded analysis pipeline with ingress re-coalescing enabled: four
/// anomaly replicas splitting the stream by `seq % 4`.
fn coalesced_pipeline(seed: u64) -> Simulation {
    let mut sim = Simulation::with_wlan(WlanConfig::ideal(), seed);
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("broker").with_broker(),
    );
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("sensor-node")
            .with_broker_node("broker")
            .with_sensor(SensorSpec::new(SensorKind::Sound, 1, 40.0, seed))
            .with_wire_format(ifot::core::wire::WireFormat::Binary)
            .with_batching(8, 50)
            .with_qos(QoS::AtLeastOnce),
    );
    let mut analysis = NodeConfig::new("analysis")
        .with_broker_node("broker")
        .with_wire_format(ifot::core::wire::WireFormat::Binary)
        .with_batching(8, 50)
        .with_stage_coalescing()
        .with_qos(QoS::AtLeastOnce);
    for i in 0..4 {
        analysis = analysis.with_operator(
            OperatorSpec::sink(
                format!("score{i}"),
                OperatorKind::Anomaly {
                    detector: "zscore".into(),
                    threshold: 4.0,
                },
                vec!["sensor/#".into()],
            )
            .sharded(4, i),
        );
    }
    add_middleware_node(&mut sim, CpuProfile::RASPBERRY_PI_2, analysis);
    sim
}

/// Re-coalesced dispatch stays bit-identical across same-seed runs and
/// conserves the flow: linger timers, shard partitioning and batch
/// re-assembly all replay exactly on the deterministic runtime.
#[test]
fn coalesced_sharded_run_is_deterministic_and_conserves_flow() {
    let run = |seed: u64| {
        let mut sim = coalesced_pipeline(seed);
        sim.enable_trace();
        sim.run_until(SimTime::from_secs(6));
        let scored = sim.metrics().counter("anomaly_scored");
        let coalesced = sim.metrics().counter("stage_coalesced_items");
        (sim.take_trace().digest(), scored, coalesced)
    };
    let first = run(11);
    let second = run(11);
    assert_eq!(first, second, "coalesced mode must stay deterministic");
    assert!(
        first.1 > 100,
        "scoring must progress under coalescing: {first:?}"
    );
    assert!(first.2 > 0, "re-coalescing must actually batch: {first:?}");
}

#[test]
fn shed_newest_rejects_at_the_door_and_counts_them() {
    let mut env = MockEnv::new();
    let mut stage = probe_stage(2, ShedPolicy::ShedNewest);
    for i in 0..5 {
        stage.enqueue(WorkItem::Item(probe_item(i)), 0);
    }
    assert_eq!(drain_origins(&mut stage, &mut env), vec![0, 1]);
    assert_eq!(stage.stats.shed_newest, 3);
    assert_eq!(stage.stats.shed_oldest, 0);
    assert_eq!(stage.stats.enqueued, 2, "rejected items are not admitted");
}
