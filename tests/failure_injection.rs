//! Integration: failure injection across the middleware stack.

use ifot::core::config::{NodeConfig, OperatorKind, OperatorSpec, SensorSpec};
use ifot::core::sim_adapter::{add_middleware_node, SimNode};
use ifot::netsim::cpu::CpuProfile;
use ifot::netsim::sim::Simulation;
use ifot::netsim::time::{SimDuration, SimTime};
use ifot::netsim::wlan::WlanConfig;
use ifot::sensors::sample::SensorKind;

fn small_pipeline(seed: u64, wlan: WlanConfig) -> Simulation {
    let mut sim = Simulation::with_wlan(wlan, seed);
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("broker").with_broker(),
    );
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("sensor-node")
            .with_broker_node("broker")
            .with_sensor(SensorSpec::new(SensorKind::Sound, 1, 20.0, seed)),
    );
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("analysis")
            .with_broker_node("broker")
            .with_operator(OperatorSpec::sink(
                "score",
                OperatorKind::Anomaly {
                    detector: "zscore".into(),
                    threshold: 4.0,
                },
                vec!["sensor/#".into()],
            )),
    );
    sim
}

#[test]
fn broker_crash_and_recovery() {
    let mut sim = small_pipeline(5, WlanConfig::ideal());
    let broker = sim.node_id("broker").expect("registered");
    sim.run_for(SimDuration::from_secs(2));
    let scored_before = sim.metrics().counter("anomaly_scored");
    assert!(scored_before > 20);

    // Crash the broker: the pipeline stalls but nothing panics.
    sim.set_node_up(broker, false);
    sim.run_for(SimDuration::from_secs(2));
    let scored_during = sim.metrics().counter("anomaly_scored") - scored_before;
    assert!(
        scored_during < 10,
        "pipeline should stall without the broker, scored {scored_during}"
    );

    // Recovery: clients reconnect and flow resumes.
    sim.set_node_up(broker, true);
    sim.run_for(SimDuration::from_secs(4));
    let scored_after =
        sim.metrics().counter("anomaly_scored") - scored_before - scored_during;
    assert!(
        scored_after > 10,
        "pipeline must resume after broker recovery, scored {scored_after}"
    );
    // Note: no client reconnect is needed here — the broker actor's
    // session state survives the outage (only in-flight packets were
    // lost), so QoS 0 flow resumes as soon as the node is back. The
    // reconnect path is exercised by `sensor_node_recovers_when_broker_returns`
    // in ifot-core, where the broker is down from the start.
}

#[test]
fn analysis_crash_does_not_stop_publishers() {
    let mut sim = small_pipeline(6, WlanConfig::ideal());
    let analysis = sim.node_id("analysis").expect("registered");
    sim.run_for(SimDuration::from_secs(1));
    sim.set_node_up(analysis, false);
    let published_before = sim.metrics().counter("published");
    sim.run_for(SimDuration::from_secs(2));
    let published_after = sim.metrics().counter("published");
    assert!(
        published_after > published_before + 20,
        "publishers must continue while a subscriber is down"
    );
}

#[test]
fn lossy_network_degrades_but_does_not_wedge() {
    let mut wlan = WlanConfig::paper_testbed();
    wlan.loss_prob = 0.25; // brutal
    let mut sim = small_pipeline(7, wlan);
    sim.run_for(SimDuration::from_secs(10));
    let published = sim.metrics().counter("published");
    let scored = sim.metrics().counter("anomaly_scored");
    assert!(published > 50, "publishing survived: {published}");
    assert!(scored > 10, "some flow still reached analysis: {scored}");
    assert!(
        scored < published,
        "loss must be visible end-to-end ({scored} of {published})"
    );
}

#[test]
fn sensor_fault_windows_surface_in_counters() {
    let mut sim = Simulation::with_wlan(WlanConfig::ideal(), 8);
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("broker").with_broker(),
    );
    let mut spec = SensorSpec::new(SensorKind::Temperature, 1, 50.0, 3);
    spec.faults.push(ifot::sensors::inject::FaultWindow {
        from_ns: 500_000_000,
        until_ns: 1_000_000_000,
        kind: ifot::sensors::inject::FaultKind::StuckAt,
    });
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("s")
            .with_broker_node("broker")
            .with_sensor(spec),
    );
    sim.run_for(SimDuration::from_secs(2));
    let anomalous = sim.metrics().counter("samples_anomalous");
    // 0.5 s of 50 Hz sampling inside the window.
    assert!(
        (15..=35).contains(&anomalous),
        "expected ~25 anomalous samples, got {anomalous}"
    );
}

#[test]
fn down_node_drops_are_not_backlog_drops() {
    // Sanity: the backlog-shedding metric stays clean when a node is
    // simply down — crash-stop drops are a different mechanism.
    let mut sim = small_pipeline(9, WlanConfig::ideal());
    let analysis = sim.node_id("analysis").expect("registered");
    sim.set_node_up(analysis, false);
    sim.run_until(SimTime::from_secs(2));
    assert_eq!(sim.metrics().counter("backlog_dropped"), 0);
    // A crash-stopped node loses its timer chain; `restart_node` issues
    // a fresh on_start which re-establishes the session.
    sim.restart_node(analysis);
    sim.run_for(SimDuration::from_secs(3));
    let node: &SimNode = sim.actor_as(analysis).expect("node");
    assert!(
        node.middleware().is_connected(),
        "restarted node must rejoin the broker"
    );
}

#[test]
fn network_partition_heals_transparently_for_qos0_flow() {
    let mut sim = small_pipeline(11, WlanConfig::ideal());
    let sensor = sim.node_id("sensor-node").expect("registered");
    let broker = sim.node_id("broker").expect("registered");
    sim.run_for(SimDuration::from_secs(1));
    let before = sim.metrics().counter("anomaly_scored");

    // Partition the sensor from the broker: samples vanish on the link.
    sim.set_partitioned(sensor, broker, true);
    sim.run_for(SimDuration::from_secs(2));
    let during = sim.metrics().counter("anomaly_scored") - before;
    assert!(during < 5, "flow must stall during the partition: {during}");
    assert!(sim.metrics().counter("link_blocked_drops") > 0);

    // Heal: the client reconnects (its keep-alive state may have been
    // torn down broker-side) and the flow resumes.
    sim.set_partitioned(sensor, broker, false);
    sim.run_for(SimDuration::from_secs(4));
    let after = sim.metrics().counter("anomaly_scored") - before - during;
    assert!(after > 10, "flow must resume after healing: {after}");
}

#[test]
fn restarted_sensor_node_resumes_sampling_without_bursting() {
    let mut sim = small_pipeline(10, WlanConfig::ideal());
    let sensor = sim.node_id("sensor-node").expect("registered");
    sim.run_for(SimDuration::from_secs(2));
    let before = sim.metrics().counter("samples_taken");
    sim.set_node_up(sensor, false);
    sim.run_for(SimDuration::from_secs(3));
    assert_eq!(
        sim.metrics().counter("samples_taken"),
        before,
        "a down sensor must not sample"
    );
    sim.restart_node(sensor);
    sim.run_for(SimDuration::from_secs(2));
    let resumed = sim.metrics().counter("samples_taken") - before;
    // 20 Hz over 2 s: ~40 samples. A catch-up burst replaying the 3 s
    // outage would show ~100.
    assert!(
        (30..=50).contains(&resumed),
        "expected ~40 samples after restart, got {resumed}"
    );
    // And the flow reaches analysis again.
    let node: &SimNode = sim.actor_as(sensor).expect("node");
    assert!(node.middleware().is_connected());
}
