//! Integration: failure injection across the middleware stack.
//!
//! The `chaos_*` tests are a deterministic fault-schedule corpus: each
//! one drives a fixed seeded schedule (crash/restart/partition at exact
//! virtual times) against the resilience layer and asserts both the
//! recovery property and bit-identical reproducibility of the run.

use ifot::core::config::{NodeConfig, OperatorKind, OperatorSpec, SensorSpec};
use ifot::core::node::ResilienceStats;
use ifot::core::sim_adapter::{add_middleware_node, SimNode};
use ifot::mgmt::monitor;
use ifot::mqtt::packet::QoS;
use ifot::netsim::cpu::CpuProfile;
use ifot::netsim::sim::Simulation;
use ifot::netsim::time::{SimDuration, SimTime};
use ifot::netsim::wlan::WlanConfig;
use ifot::sensors::sample::SensorKind;

fn small_pipeline(seed: u64, wlan: WlanConfig) -> Simulation {
    let mut sim = Simulation::with_wlan(wlan, seed);
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("broker").with_broker(),
    );
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("sensor-node")
            .with_broker_node("broker")
            .with_sensor(SensorSpec::new(SensorKind::Sound, 1, 20.0, seed)),
    );
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("analysis")
            .with_broker_node("broker")
            .with_operator(OperatorSpec::sink(
                "score",
                OperatorKind::Anomaly {
                    detector: "zscore".into(),
                    threshold: 4.0,
                },
                vec!["sensor/#".into()],
            )),
    );
    sim
}

/// `small_pipeline` with the resilience layer turned all the way up:
/// 1 s keep-alive (dead peers noticed within 1.5 s), persistent
/// sessions, and an offline queue deep enough that no sample is ever
/// shed during the outages these tests inject.
fn resilient_pipeline(seed: u64, wlan: WlanConfig, qos: QoS) -> Simulation {
    let mut sim = Simulation::with_wlan(wlan, seed);
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("broker").with_broker(),
    );
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("sensor-node")
            .with_broker_node("broker")
            .with_sensor(SensorSpec::new(SensorKind::Sound, 1, 20.0, seed))
            .with_qos(qos)
            .with_keep_alive(1)
            .with_persistent_session()
            .with_offline_queue(4096),
    );
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("analysis")
            .with_broker_node("broker")
            .with_operator(OperatorSpec::sink(
                "score",
                OperatorKind::Anomaly {
                    detector: "zscore".into(),
                    threshold: 4.0,
                },
                vec!["sensor/#".into()],
            ))
            .with_qos(qos)
            .with_keep_alive(1)
            .with_persistent_session()
            .with_offline_queue(4096),
    );
    sim
}

fn resilience_of(sim: &Simulation, name: &str) -> ResilienceStats {
    let id = sim.node_id(name).expect("registered");
    let node: &SimNode = sim.actor_as(id).expect("node");
    node.middleware().resilience()
}

#[test]
fn broker_crash_and_recovery() {
    let mut sim = resilient_pipeline(5, WlanConfig::ideal(), QoS::AtMostOnce);
    let broker = sim.node_id("broker").expect("registered");
    sim.run_for(SimDuration::from_secs(2));
    let scored_before = sim.metrics().counter("anomaly_scored");
    assert!(scored_before > 20);

    // Crash the broker: the pipeline stalls but nothing panics.
    sim.set_node_up(broker, false);
    sim.run_for(SimDuration::from_secs(2));
    let scored_during = sim.metrics().counter("anomaly_scored") - scored_before;
    assert!(
        scored_during < 10,
        "pipeline should stall without the broker, scored {scored_during}"
    );
    // Dead-peer detection: 1.5× the 1 s keep-alive of broker silence is
    // enough for the clients to declare the transport lost on their own.
    let sensor_res = resilience_of(&sim, "sensor-node");
    assert!(
        sensor_res.dead_peer_detections >= 1,
        "client never noticed the dead broker: {sensor_res:?}"
    );
    assert!(
        sensor_res.offline_buffered > 0,
        "samples during the outage must be buffered: {sensor_res:?}"
    );

    // Recovery: the broker restarts; every client reconnects by itself
    // (no test-side choreography on the client nodes).
    sim.restart_node(broker);
    sim.run_for(SimDuration::from_secs(4));
    let scored_after = sim.metrics().counter("anomaly_scored") - scored_before - scored_during;
    assert!(
        scored_after > 10,
        "pipeline must resume after broker recovery, scored {scored_after}"
    );
    let sensor_res = resilience_of(&sim, "sensor-node");
    assert!(
        sensor_res.reconnects >= 1,
        "recovery must come from the reconnect supervisor: {sensor_res:?}"
    );
    assert!(
        sensor_res.offline_flushed > 0,
        "buffered samples must be flushed on reconnect: {sensor_res:?}"
    );
    for name in ["sensor-node", "analysis"] {
        let id = sim.node_id(name).expect("registered");
        let node: &SimNode = sim.actor_as(id).expect("node");
        assert!(node.middleware().is_connected(), "{name} must rejoin");
    }
}

#[test]
fn analysis_crash_does_not_stop_publishers() {
    let mut sim = small_pipeline(6, WlanConfig::ideal());
    let analysis = sim.node_id("analysis").expect("registered");
    sim.run_for(SimDuration::from_secs(1));
    sim.set_node_up(analysis, false);
    let published_before = sim.metrics().counter("published");
    sim.run_for(SimDuration::from_secs(2));
    let published_after = sim.metrics().counter("published");
    assert!(
        published_after > published_before + 20,
        "publishers must continue while a subscriber is down"
    );
}

#[test]
fn lossy_network_degrades_but_does_not_wedge() {
    let mut wlan = WlanConfig::paper_testbed();
    wlan.loss_prob = 0.25; // brutal
    let mut sim = small_pipeline(7, wlan);
    sim.run_for(SimDuration::from_secs(10));
    let published = sim.metrics().counter("published");
    let scored = sim.metrics().counter("anomaly_scored");
    assert!(published > 50, "publishing survived: {published}");
    assert!(scored > 10, "some flow still reached analysis: {scored}");
    assert!(
        scored < published,
        "loss must be visible end-to-end ({scored} of {published})"
    );
}

#[test]
fn sensor_fault_windows_surface_in_counters() {
    let mut sim = Simulation::with_wlan(WlanConfig::ideal(), 8);
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("broker").with_broker(),
    );
    let mut spec = SensorSpec::new(SensorKind::Temperature, 1, 50.0, 3);
    spec.faults.push(ifot::sensors::inject::FaultWindow {
        from_ns: 500_000_000,
        until_ns: 1_000_000_000,
        kind: ifot::sensors::inject::FaultKind::StuckAt,
    });
    add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        NodeConfig::new("s")
            .with_broker_node("broker")
            .with_sensor(spec),
    );
    sim.run_for(SimDuration::from_secs(2));
    let anomalous = sim.metrics().counter("samples_anomalous");
    // 0.5 s of 50 Hz sampling inside the window.
    assert!(
        (15..=35).contains(&anomalous),
        "expected ~25 anomalous samples, got {anomalous}"
    );
}

#[test]
fn down_node_drops_are_not_backlog_drops() {
    // Sanity: the backlog-shedding metric stays clean when a node is
    // simply down — crash-stop drops are a different mechanism.
    let mut sim = small_pipeline(9, WlanConfig::ideal());
    let analysis = sim.node_id("analysis").expect("registered");
    sim.set_node_up(analysis, false);
    sim.run_until(SimTime::from_secs(2));
    assert_eq!(sim.metrics().counter("backlog_dropped"), 0);
    // A crash-stopped node loses its timer chain; `restart_node` issues
    // a fresh on_start which re-establishes the session.
    sim.restart_node(analysis);
    sim.run_for(SimDuration::from_secs(3));
    let node: &SimNode = sim.actor_as(analysis).expect("node");
    assert!(
        node.middleware().is_connected(),
        "restarted node must rejoin the broker"
    );
}

#[test]
fn network_partition_heals_transparently_for_qos0_flow() {
    let mut sim = resilient_pipeline(11, WlanConfig::ideal(), QoS::AtMostOnce);
    let sensor = sim.node_id("sensor-node").expect("registered");
    let broker = sim.node_id("broker").expect("registered");
    sim.run_for(SimDuration::from_secs(1));
    let before = sim.metrics().counter("anomaly_scored");

    // Partition the sensor from the broker: samples vanish on the link.
    sim.set_partitioned(sensor, broker, true);
    sim.run_for(SimDuration::from_secs(2));
    let during = sim.metrics().counter("anomaly_scored") - before;
    assert!(during < 5, "flow must stall during the partition: {during}");
    assert!(sim.metrics().counter("link_blocked_drops") > 0);

    // Heal: the sensor's supervisor has already declared the peer dead
    // and keeps retrying on backoff, so the session comes back without
    // any test-side help and the buffered samples are recovered.
    sim.set_partitioned(sensor, broker, false);
    sim.run_for(SimDuration::from_secs(4));
    let after = sim.metrics().counter("anomaly_scored") - before - during;
    assert!(after > 10, "flow must resume after healing: {after}");
    let sensor_res = resilience_of(&sim, "sensor-node");
    assert!(
        sensor_res.dead_peer_detections >= 1,
        "partition must be detected by keep-alive: {sensor_res:?}"
    );
    assert!(
        sensor_res.reconnects >= 1,
        "healing must come from the reconnect supervisor: {sensor_res:?}"
    );
    assert!(
        sensor_res.offline_flushed > 0,
        "samples buffered during the partition must be flushed: {sensor_res:?}"
    );
}

#[test]
fn restarted_sensor_node_resumes_sampling_without_bursting() {
    let mut sim = small_pipeline(10, WlanConfig::ideal());
    let sensor = sim.node_id("sensor-node").expect("registered");
    sim.run_for(SimDuration::from_secs(2));
    let before = sim.metrics().counter("samples_taken");
    sim.set_node_up(sensor, false);
    sim.run_for(SimDuration::from_secs(3));
    assert_eq!(
        sim.metrics().counter("samples_taken"),
        before,
        "a down sensor must not sample"
    );
    sim.restart_node(sensor);
    sim.run_for(SimDuration::from_secs(2));
    let resumed = sim.metrics().counter("samples_taken") - before;
    // 20 Hz over 2 s: ~40 samples. A catch-up burst replaying the 3 s
    // outage would show ~100.
    assert!(
        (30..=50).contains(&resumed),
        "expected ~40 samples after restart, got {resumed}"
    );
    // And the flow reaches analysis again.
    let node: &SimNode = sim.actor_as(sensor).expect("node");
    assert!(node.middleware().is_connected());
}

// ---------------------------------------------------------------------
// Deterministic chaos-schedule corpus
// ---------------------------------------------------------------------

/// Everything observable about one chaos run; two runs with the same
/// seed must compare equal, down to the event-trace digest.
#[derive(Debug, PartialEq)]
struct ChaosOutcome {
    trace_digest: u64,
    published: u64,
    scored: u64,
    sensor: ResilienceStats,
    analysis: ResilienceStats,
}

fn outcome_of(sim: &mut Simulation) -> ChaosOutcome {
    ChaosOutcome {
        trace_digest: sim.take_trace().digest(),
        published: sim.metrics().counter("published"),
        scored: sim.metrics().counter("anomaly_scored"),
        sensor: resilience_of(sim, "sensor-node"),
        analysis: resilience_of(sim, "analysis"),
    }
}

/// Schedule: the broker is dead from t=0, so the client's very first
/// CONNECT goes unanswered — the handshake is abandoned by CONNACK
/// timeout, retried on backoff, and succeeds once the broker appears.
fn schedule_crash_mid_connect(seed: u64) -> ChaosOutcome {
    let mut sim = resilient_pipeline(seed, WlanConfig::ideal(), QoS::AtLeastOnce);
    sim.enable_trace();
    let broker = sim.node_id("broker").expect("registered");
    sim.set_node_up(broker, false);
    sim.run_until(SimTime::from_secs(4));
    let sensor_res = resilience_of(&sim, "sensor-node");
    assert!(
        sensor_res.connect_timeouts >= 2,
        "unanswered CONNECTs must time out and back off: {sensor_res:?}"
    );
    assert_eq!(sim.metrics().counter("published"), 0);
    assert!(sensor_res.offline_buffered > 0, "{sensor_res:?}");
    sim.restart_node(broker);
    sim.run_until(SimTime::from_secs(9));
    let sensor_res = resilience_of(&sim, "sensor-node");
    assert!(
        sensor_res.offline_flushed > 0,
        "backlog must flush once the handshake finally lands: {sensor_res:?}"
    );
    assert!(sim.metrics().counter("anomaly_scored") > 10);
    let sensor_id = sim.node_id("sensor-node").expect("registered");
    let node: &SimNode = sim.actor_as(sensor_id).expect("node");
    assert!(node.middleware().is_connected());
    outcome_of(&mut sim)
}

#[test]
fn chaos_broker_crash_mid_connect_handshake() {
    let first = schedule_crash_mid_connect(21);
    let second = schedule_crash_mid_connect(21);
    assert_eq!(first, second, "same seed must reproduce the same run");
}

/// Schedule: a 2 s partition dropped onto a steady 20 Hz QoS 2 flow, so
/// PUBLISH/PUBREC/PUBREL/PUBCOMP exchanges are cut mid-handshake. The
/// session resume must replay them without losing or duplicating a
/// single sample end-to-end.
fn schedule_partition_during_qos2(seed: u64) -> ChaosOutcome {
    let mut sim = resilient_pipeline(seed, WlanConfig::ideal(), QoS::ExactlyOnce);
    sim.enable_trace();
    let sensor = sim.node_id("sensor-node").expect("registered");
    let broker = sim.node_id("broker").expect("registered");
    sim.run_until(SimTime::from_millis(1_500));
    sim.set_partitioned(sensor, broker, true);
    sim.run_until(SimTime::from_millis(3_500));
    sim.set_partitioned(sensor, broker, false);
    sim.run_until(SimTime::from_secs(10));
    let sensor_res = resilience_of(&sim, "sensor-node");
    let analysis_res = resilience_of(&sim, "analysis");
    assert!(
        sensor_res.session_resumes >= 1,
        "the persistent session must be resumed: {sensor_res:?}"
    );
    assert_eq!(
        analysis_res.seq_gaps, 0,
        "QoS 2 must lose nothing: {analysis_res:?}"
    );
    assert_eq!(
        analysis_res.seq_duplicates, 0,
        "QoS 2 must stay exactly-once: {analysis_res:?}"
    );
    assert!(sim.metrics().counter("anomaly_scored") > 100);
    outcome_of(&mut sim)
}

#[test]
fn chaos_partition_during_qos2_pubrel_stays_exactly_once() {
    let first = schedule_partition_during_qos2(33);
    let second = schedule_partition_during_qos2(33);
    assert_eq!(first, second, "same seed must reproduce the same run");
}

/// Schedule: the broker dies again while clients are still in their
/// reconnect backoff from the previous death. The supervisor must keep
/// backing off and still land the session on the third broker life.
fn schedule_repeated_crash_during_backoff(seed: u64) -> ChaosOutcome {
    let mut sim = resilient_pipeline(seed, WlanConfig::ideal(), QoS::AtLeastOnce);
    sim.enable_trace();
    let broker = sim.node_id("broker").expect("registered");
    sim.set_node_up(broker, false);
    sim.run_until(SimTime::from_secs(2));
    sim.restart_node(broker);
    // A sliver of uptime: some clients may just have reconnected, some
    // are still waiting out their backoff.
    sim.run_until(SimTime::from_millis(2_300));
    sim.set_node_up(broker, false);
    sim.run_until(SimTime::from_secs(4));
    sim.restart_node(broker);
    sim.run_until(SimTime::from_secs(10));
    let sensor_res = resilience_of(&sim, "sensor-node");
    assert!(
        sensor_res.transport_lost >= 2,
        "both broker deaths must be observed: {sensor_res:?}"
    );
    assert!(sim.metrics().counter("anomaly_scored") > 10);
    for name in ["sensor-node", "analysis"] {
        let id = sim.node_id(name).expect("registered");
        let node: &SimNode = sim.actor_as(id).expect("node");
        assert!(node.middleware().is_connected(), "{name} must recover");
    }
    outcome_of(&mut sim)
}

#[test]
fn chaos_repeated_crash_during_backoff() {
    let first = schedule_repeated_crash_during_backoff(44);
    let second = schedule_repeated_crash_during_backoff(44);
    assert_eq!(first, second, "same seed must reproduce the same run");
}

/// The acceptance schedule: broker crash at t=2 s (restarted at
/// t=3.8 s, past the clients' dead-peer grace so the supervisor — not
/// mere QoS retransmission — must carry the recovery), then a 1 s
/// sensor↔broker partition at t=4 s. The pipeline must resume on its
/// own with zero QoS 1 loss, the counters must be visible on the
/// management screen, and the whole run must be bit-identical for a
/// fixed seed.
fn schedule_acceptance(seed: u64) -> (ChaosOutcome, String) {
    let mut sim = resilient_pipeline(seed, WlanConfig::ideal(), QoS::AtLeastOnce);
    sim.enable_trace();
    let sensor = sim.node_id("sensor-node").expect("registered");
    let broker = sim.node_id("broker").expect("registered");
    sim.run_until(SimTime::from_secs(2));
    sim.set_node_up(broker, false);
    sim.run_until(SimTime::from_millis(3_800));
    sim.restart_node(broker);
    sim.run_until(SimTime::from_secs(4));
    sim.set_partitioned(sensor, broker, true);
    sim.run_until(SimTime::from_secs(5));
    sim.set_partitioned(sensor, broker, false);
    sim.run_until(SimTime::from_secs(12));
    let screen = monitor::render_screen(&monitor::capture_simulation(&sim), "t=12s");
    (outcome_of(&mut sim), screen)
}

#[test]
fn chaos_acceptance_crash_then_partition_zero_qos1_loss() {
    let (first, screen) = schedule_acceptance(42);
    assert!(
        first.scored > 100,
        "flow must resume end-to-end after the schedule: {first:?}"
    );
    // Recovery was automatic and client-driven.
    assert!(first.sensor.transport_lost >= 1, "{first:?}");
    assert!(first.sensor.reconnects >= 1, "{first:?}");
    assert!(first.sensor.session_resumes >= 1, "{first:?}");
    // Zero QoS 1 loss end-to-end: every sensor sequence number made it
    // to the analysis node (duplicates are allowed at-least-once).
    assert_eq!(first.analysis.seq_gaps, 0, "{first:?}");
    // Counters are on the management screen.
    assert!(
        screen.contains("resilience:"),
        "monitor must surface resilience counters:\n{screen}"
    );
    // Bit-identical reproduction.
    let (second, _) = schedule_acceptance(42);
    assert_eq!(first, second, "same seed must reproduce the same run");
}
