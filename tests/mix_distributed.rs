//! Integration: distributed model synchronization (MIX) over MQTT on the
//! simulated testbed — the Managing class end-to-end.

use ifot::core::config::{NodeConfig, OperatorKind, OperatorSpec, SensorSpec};
use ifot::core::sim_adapter::{add_middleware_node, SimNode};
use ifot::core::NodeEvent;
use ifot::netsim::cpu::CpuProfile;
use ifot::netsim::sim::Simulation;
use ifot::netsim::time::SimDuration;
use ifot::netsim::wlan::WlanConfig;
use ifot::sensors::sample::SensorKind;

fn mix_world(mix_interval_ms: u64, seed: u64) -> (Simulation, [ifot::netsim::actor::NodeId; 3]) {
    let mut sim = Simulation::with_wlan(WlanConfig::ideal(), seed);
    let mut gateway = NodeConfig::new("gateway")
        .with_app("m")
        .with_broker()
        .with_broker_node("gateway");
    if mix_interval_ms > 0 {
        gateway = gateway.with_operator(OperatorSpec::sink(
            "coord",
            OperatorKind::MixCoordinator { expected: 2 },
            vec!["mix/m/ta/offer".into(), "mix/m/tb/offer".into()],
        ));
    }
    let g = add_middleware_node(&mut sim, CpuProfile::THINKPAD_X250, gateway);

    let area = |name: &str, task: &str, kind: SensorKind, slug: &str, dev: u16, s: u64| {
        let mut inputs = vec![format!("sensor/{dev}/{slug}")];
        if mix_interval_ms > 0 {
            inputs.push(format!("mix/m/{task}/avg"));
        }
        NodeConfig::new(name)
            .with_app("m")
            .with_broker_node("gateway")
            .with_sensor(SensorSpec::new(kind, dev, 10.0, s))
            .with_operator(OperatorSpec::sink(
                task,
                OperatorKind::Train {
                    algorithm: "pa".into(),
                    mix_interval_ms,
                },
                inputs,
            ))
    };
    let a = add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        area("na", "ta", SensorKind::PersonFlow, "personflow", 1, 1),
    );
    let b = add_middleware_node(
        &mut sim,
        CpuProfile::RASPBERRY_PI_2,
        area("nb", "tb", SensorKind::Sound, "sound", 2, 2),
    );
    (sim, [g, a, b])
}

fn model_of(
    sim: &Simulation,
    id: ifot::netsim::actor::NodeId,
    task: &str,
) -> ifot::ml::mix::ModelDiff {
    let node: &SimNode = sim.actor_as(id).expect("node present");
    node.middleware()
        .classifier(task)
        .map(|m| m.export_diff())
        .expect("trainer holds a model")
}

fn distance(a: &ifot::ml::mix::ModelDiff, b: &ifot::ml::mix::ModelDiff) -> f64 {
    let mut labels: Vec<&str> = a.labels().chain(b.labels()).collect();
    labels.sort_unstable();
    labels.dedup();
    let empty = ifot::ml::feature::SparseWeights::new();
    let mut sum = 0.0;
    for label in labels {
        let wa = a.label(label).unwrap_or(&empty);
        let wb = b.label(label).unwrap_or(&empty);
        let mut idx: Vec<u32> = wa
            .iter()
            .map(|(i, _)| i)
            .chain(wb.iter().map(|(i, _)| i))
            .collect();
        idx.sort_unstable();
        idx.dedup();
        for i in idx {
            let d = wa.get(i) - wb.get(i);
            sum += d * d;
        }
    }
    sum
}

#[test]
fn mix_rounds_complete_and_models_converge() {
    let (mut sim, [g, a, b]) = mix_world(800, 3);
    sim.run_for(SimDuration::from_secs(10));

    assert!(sim.metrics().counter("mix_offered") >= 10);
    assert!(sim.metrics().counter("mix_imports") >= 10);
    let gateway: &SimNode = sim.actor_as(g).expect("gateway");
    let rounds = gateway
        .middleware()
        .events()
        .iter()
        .filter(|e| matches!(e, NodeEvent::MixRound { .. }))
        .count();
    assert!(rounds >= 5, "only {rounds} rounds completed");

    let mixed = distance(&model_of(&sim, a, "ta"), &model_of(&sim, b, "tb"));

    // Control: the same world without MIX diverges more.
    let (mut lone, [_, la, lb]) = mix_world(0, 3);
    lone.run_for(SimDuration::from_secs(10));
    let unmixed = distance(&model_of(&lone, la, "ta"), &model_of(&lone, lb, "tb"));

    assert!(
        mixed < unmixed * 0.5,
        "mixing must pull models together: mixed {mixed} vs unmixed {unmixed}"
    );
}

#[test]
fn mixed_models_know_both_feature_spaces() {
    let (mut sim, [_, a, b]) = mix_world(800, 4);
    sim.run_for(SimDuration::from_secs(10));
    // Node B never saw person-flow features, yet after mixing its model
    // carries weights for them (learned at node A).
    let model_b = model_of(&sim, b, "tb");
    let knows_foreign = model_b
        .labels()
        .any(|label| model_b.label(label).map(|w| w.nnz() > 0).unwrap_or(false));
    assert!(knows_foreign, "model B is empty after mixing");

    // And both classify a person-flow probe consistently with node A's
    // training data distribution.
    let probe = ifot::ml::feature::Datum::new()
        .with("personflow_count", 9.0)
        .to_vector(1 << 18);
    let node_a: &SimNode = sim.actor_as(a).expect("node a");
    let node_b: &SimNode = sim.actor_as(b).expect("node b");
    let label_a = node_a
        .middleware()
        .classifier("ta")
        .and_then(|m| m.classify(&probe));
    let label_b = node_b
        .middleware()
        .classifier("tb")
        .and_then(|m| m.classify(&probe));
    assert!(label_a.is_some());
    assert!(label_b.is_some(), "B cannot classify A's modality");
}
