//! Property-based tests over the substrates' core invariants
//! (DESIGN.md §7).

mod common;

use proptest::prelude::*;

use ifot::mqtt::codec::{decode, encode};
use ifot::mqtt::packet::{
    Connack, Connect, ConnectReturnCode, LastWill, Packet, Publish, QoS, Suback, SubackCode,
    Subscribe, SubscribeFilter, Unsubscribe,
};
use ifot::mqtt::topic::{TopicFilter, TopicName};
use ifot::mqtt::tree::SubscriptionTree;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn topic_level() -> impl Strategy<Value = String> {
    prop::string::string_regex("[a-z0-9_]{1,6}").expect("valid regex")
}

fn topic_name_str() -> impl Strategy<Value = String> {
    prop::collection::vec(topic_level(), 1..5).prop_map(|levels| levels.join("/"))
}

fn topic_filter_str() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            4 => topic_level(),
            1 => Just("+".to_owned()),
        ],
        1..5,
    )
    .prop_map(|levels| levels.join("/"))
    .prop_flat_map(|base| {
        prop_oneof![
            3 => Just(base.clone()),
            1 => Just(format!("{base}/#")),
        ]
    })
}

fn qos() -> impl Strategy<Value = QoS> {
    prop_oneof![
        Just(QoS::AtMostOnce),
        Just(QoS::AtLeastOnce),
        Just(QoS::ExactlyOnce),
    ]
}

fn arb_publish() -> impl Strategy<Value = Publish> {
    (
        topic_name_str(),
        qos(),
        any::<bool>(),
        any::<bool>(),
        prop::collection::vec(any::<u8>(), 0..128),
        1u16..=u16::MAX,
    )
        .prop_map(|(topic, qos, dup, retain, payload, pid)| Publish {
            dup: dup && qos != QoS::AtMostOnce,
            qos,
            retain,
            topic: TopicName::new(topic).expect("generated topics are valid"),
            packet_id: (qos != QoS::AtMostOnce).then_some(pid),
            payload: payload.into(),
        })
}

fn arb_connect() -> impl Strategy<Value = Connect> {
    (
        prop::string::string_regex("[a-z0-9-]{0,12}").expect("valid regex"),
        any::<bool>(),
        any::<u16>(),
        prop::option::of((
            topic_name_str(),
            prop::collection::vec(any::<u8>(), 0..32),
            qos(),
            any::<bool>(),
        )),
        prop::option::of(prop::string::string_regex("[a-z]{1,8}").expect("valid regex")),
        prop::option::of(prop::collection::vec(any::<u8>(), 0..16)),
    )
        .prop_map(
            |(client_id, clean_session, keep_alive_secs, will, username, password)| Connect {
                client_id,
                clean_session,
                keep_alive_secs,
                will: will.map(|(topic, payload, qos, retain)| LastWill {
                    topic: TopicName::new(topic).expect("generated topics are valid"),
                    payload: payload.into(),
                    qos,
                    retain,
                }),
                username,
                password: password.map(Into::into),
            },
        )
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    prop_oneof![
        arb_connect().prop_map(Packet::Connect),
        (any::<bool>(), 0u8..=5).prop_map(|(sp, code)| Packet::Connack(Connack {
            session_present: sp,
            code: ConnectReturnCode::from_byte(code).expect("generated codes are valid"),
        })),
        arb_publish().prop_map(Packet::Publish),
        (1u16..=u16::MAX).prop_map(Packet::Puback),
        (1u16..=u16::MAX).prop_map(Packet::Pubrec),
        (1u16..=u16::MAX).prop_map(Packet::Pubrel),
        (1u16..=u16::MAX).prop_map(Packet::Pubcomp),
        (
            1u16..=u16::MAX,
            prop::collection::vec((topic_filter_str(), qos()), 1..4)
        )
            .prop_map(|(pid, filters)| Packet::Subscribe(Subscribe {
                packet_id: pid,
                filters: filters
                    .into_iter()
                    .map(|(f, q)| SubscribeFilter {
                        filter: TopicFilter::new(f).expect("generated filters are valid"),
                        qos: q,
                    })
                    .collect(),
            })),
        (
            1u16..=u16::MAX,
            prop::collection::vec(prop_oneof![0u8..=2, Just(0x80u8)], 1..4)
        )
            .prop_map(|(pid, codes)| Packet::Suback(Suback {
                packet_id: pid,
                codes: codes
                    .into_iter()
                    .map(|c| SubackCode::from_byte(c).expect("generated codes are valid"))
                    .collect(),
            })),
        (
            1u16..=u16::MAX,
            prop::collection::vec(topic_filter_str(), 1..4)
        )
            .prop_map(|(pid, filters)| Packet::Unsubscribe(Unsubscribe {
                packet_id: pid,
                filters: filters
                    .into_iter()
                    .map(|f| TopicFilter::new(f).expect("generated filters are valid"))
                    .collect(),
            })),
        (1u16..=u16::MAX).prop_map(Packet::Unsuback),
        Just(Packet::Pingreq),
        Just(Packet::Pingresp),
        Just(Packet::Disconnect),
    ]
}

// ---------------------------------------------------------------------
// MQTT codec
// ---------------------------------------------------------------------

proptest! {
    /// decode(encode(p)) == p for every representable packet.
    #[test]
    fn codec_round_trips(packet in arb_packet()) {
        let bytes = encode(&packet);
        let (decoded, used) = decode(&bytes)
            .expect("own encoding decodes")
            .expect("own encoding is complete");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, packet);
    }

    /// Every strict prefix of a valid packet is "incomplete", never an
    /// error and never a bogus success.
    #[test]
    fn codec_prefixes_are_incomplete(packet in arb_packet(), cut_ratio in 0.0f64..1.0) {
        let bytes = encode(&packet);
        let cut = ((bytes.len() as f64) * cut_ratio) as usize;
        if cut < bytes.len() {
            prop_assert_eq!(decode(&bytes[..cut]).expect("prefixes are not errors"), None);
        }
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn codec_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);
    }

    /// The buffering stream decoder yields the same packet sequence no
    /// matter how the wire bytes are chunked (the zero-copy BytesMut path
    /// agrees with whole-buffer decoding).
    #[test]
    fn stream_decoder_chunking_invariance(
        packets in prop::collection::vec(arb_packet(), 1..6),
        cuts in prop::collection::vec(1usize..16, 0..8),
    ) {
        use ifot::mqtt::codec::StreamDecoder;
        let mut wire = Vec::new();
        for p in &packets {
            wire.extend_from_slice(&encode(p));
        }
        let mut dec = StreamDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let mut i = 0;
        while pos < wire.len() {
            let step = if cuts.is_empty() { wire.len() } else { cuts[i % cuts.len()] };
            let end = (pos + step).min(wire.len());
            dec.feed(&wire[pos..end]);
            pos = end;
            i += 1;
            while let Some(p) = dec.next_packet().expect("valid stream") {
                got.push(p);
            }
        }
        prop_assert_eq!(got, packets);
    }

    /// A payload built from a `Vec<u8>` and one built from a shared
    /// `Bytes` of the same content produce byte-identical encodings.
    #[test]
    fn bytes_and_vec_payloads_encode_identically(
        topic in topic_name_str(),
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let from_vec = Publish::qos0(
            TopicName::new(topic.clone()).expect("valid"),
            payload.clone(),
        );
        let from_bytes = Publish::qos0(
            TopicName::new(topic).expect("valid"),
            bytes::Bytes::from(payload),
        );
        prop_assert_eq!(
            encode(&Packet::Publish(from_vec)),
            encode(&Packet::Publish(from_bytes))
        );
    }
}

// ---------------------------------------------------------------------
// Broker semantics preserved by the zero-copy fan-out
// ---------------------------------------------------------------------

/// Decodes every delivery (plain or pre-encoded frame) sent to `conn`.
fn deliveries_to(actions: &[ifot::mqtt::broker::Action<u8>], conn: u8) -> Vec<Packet> {
    use ifot::mqtt::broker::Action;
    let mut out = Vec::new();
    for a in actions {
        match a {
            Action::Send { conn: c, packet } if *c == conn => out.push(packet.clone()),
            Action::SendFrame { conn: c, frame } if *c == conn => {
                let (p, used) = decode(frame).expect("frames decode").expect("complete");
                assert_eq!(used, frame.len(), "frame holds exactly one packet");
                out.push(p);
            }
            _ => {}
        }
    }
    out
}

proptest! {
    /// Retained messages: a late subscriber on `#` sees exactly the last
    /// non-empty retained payload per topic (empty payloads clear).
    #[test]
    fn retained_last_writer_wins(
        ops in prop::collection::vec((0usize..4, prop::collection::vec(any::<u8>(), 0..8)), 1..16),
    ) {
        use ifot::mqtt::broker::Broker;
        use std::collections::BTreeMap;

        let topics = ["r/a", "r/b", "r/c/d", "r/c/e"];
        let mut broker: Broker<u8> = Broker::new();
        broker.connection_opened(0, 0);
        broker.handle_packet(&0, Packet::Connect(Connect::new("pub")), 0);
        let mut expected: BTreeMap<&str, Vec<u8>> = BTreeMap::new();
        for (idx, payload) in &ops {
            let topic = topics[*idx];
            if payload.is_empty() {
                expected.remove(topic);
            } else {
                expected.insert(topic, payload.clone());
            }
            let mut publish = Publish::qos0(
                TopicName::new(topic).expect("valid"),
                payload.clone(),
            );
            publish.retain = true;
            broker.handle_packet(&0, Packet::Publish(publish), 0);
        }
        broker.connection_opened(1, 0);
        broker.handle_packet(&1, Packet::Connect(Connect::new("sub")), 0);
        let actions = broker.handle_packet(
            &1,
            Packet::Subscribe(Subscribe {
                packet_id: 1,
                filters: vec![SubscribeFilter {
                    filter: TopicFilter::new("#").expect("valid"),
                    qos: QoS::AtMostOnce,
                }],
            }),
            0,
        );
        let mut got: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for p in deliveries_to(&actions, 1) {
            if let Packet::Publish(p) = p {
                prop_assert!(p.retain, "retained delivery keeps the retain flag");
                got.insert(p.topic.as_str().to_owned(), p.payload.to_vec());
            }
        }
        let expected: BTreeMap<String, Vec<u8>> = expected
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// QoS 1/2 delivery and timeout redelivery carry the original payload
    /// unchanged (per-subscriber headers over the shared body).
    #[test]
    fn qos12_redelivery_preserves_payload(
        payload in prop::collection::vec(any::<u8>(), 0..64),
        exactly_once in any::<bool>(),
    ) {
        use ifot::mqtt::broker::Broker;

        let qos = if exactly_once { QoS::ExactlyOnce } else { QoS::AtLeastOnce };
        let mut broker: Broker<u8> = Broker::new();
        broker.connection_opened(1, 0);
        broker.handle_packet(&1, Packet::Connect(Connect::new("sub")), 0);
        broker.handle_packet(
            &1,
            Packet::Subscribe(Subscribe {
                packet_id: 1,
                filters: vec![SubscribeFilter {
                    filter: TopicFilter::new("t").expect("valid"),
                    qos,
                }],
            }),
            0,
        );
        broker.connection_opened(0, 0);
        broker.handle_packet(&0, Packet::Connect(Connect::new("pub")), 0);
        let publish = Publish {
            dup: false,
            qos,
            retain: false,
            topic: TopicName::new("t").expect("valid"),
            packet_id: Some(7),
            payload: payload.clone().into(),
        };
        // The broker routes on first receipt for both QoS levels (QoS 2
        // deduplicates repeats of the pid until PUBREL closes the window).
        let actions = broker.handle_packet(&0, Packet::Publish(publish.clone()), 0);
        if exactly_once {
            let mut dup = publish;
            dup.dup = true;
            let repeat = broker.handle_packet(&0, Packet::Publish(dup), 0);
            prop_assert!(
                deliveries_to(&repeat, 1)
                    .iter()
                    .all(|p| !matches!(p, Packet::Publish(_))),
                "duplicate QoS 2 publish must not be re-routed"
            );
        }
        let first: Vec<_> = deliveries_to(&actions, 1)
            .into_iter()
            .filter_map(|p| match p {
                Packet::Publish(p) => Some(p),
                _ => None,
            })
            .collect();
        prop_assert_eq!(first.len(), 1);
        prop_assert!(!first[0].dup);
        prop_assert_eq!(first[0].qos, qos);
        prop_assert_eq!(first[0].payload.as_ref(), &payload[..]);
        let pid = first[0].packet_id.expect("qos > 0 carries a packet id");

        // No ack from the subscriber: the broker redelivers after its
        // retransmit timeout with the dup flag and the same payload.
        let redelivered: Vec<_> = deliveries_to(&broker.poll(3_000_000_000), 1)
            .into_iter()
            .filter_map(|p| match p {
                Packet::Publish(p) => Some(p),
                _ => None,
            })
            .collect();
        prop_assert_eq!(redelivered.len(), 1);
        prop_assert!(redelivered[0].dup);
        prop_assert_eq!(redelivered[0].packet_id, Some(pid));
        prop_assert_eq!(redelivered[0].payload.as_ref(), &payload[..]);
    }
}

// ---------------------------------------------------------------------
// Topic matching: trie vs reference matcher
// ---------------------------------------------------------------------

/// The obvious reference implementation of MQTT filter matching.
fn reference_matches(filter: &str, topic: &str) -> bool {
    if topic.starts_with('$') && (filter.starts_with('+') || filter.starts_with('#')) {
        return false;
    }
    let f: Vec<&str> = filter.split('/').collect();
    let t: Vec<&str> = topic.split('/').collect();
    let mut i = 0;
    loop {
        match (f.get(i), t.get(i)) {
            (Some(&"#"), _) => return true,
            (Some(&"+"), Some(_)) => i += 1,
            (Some(a), Some(b)) if a == b => i += 1,
            (None, None) => return true,
            _ => return false,
        }
    }
}

proptest! {
    /// `TopicFilter::matches` agrees with the reference matcher.
    #[test]
    fn filter_matching_agrees_with_reference(
        filter in topic_filter_str(),
        topic in topic_name_str(),
    ) {
        let f = TopicFilter::new(filter.clone()).expect("generated filters are valid");
        let t = TopicName::new(topic.clone()).expect("generated topics are valid");
        prop_assert_eq!(f.matches(&t), reference_matches(&filter, &topic));
    }

    /// The subscription trie returns exactly the keys whose filters match
    /// (per the reference matcher), deduplicated.
    #[test]
    fn tree_matches_equal_linear_scan(
        filters in prop::collection::vec(topic_filter_str(), 1..12),
        topic in topic_name_str(),
    ) {
        let mut tree: SubscriptionTree<usize> = SubscriptionTree::new();
        for (i, f) in filters.iter().enumerate() {
            tree.subscribe(i, &TopicFilter::new(f.clone()).expect("valid"), QoS::AtMostOnce);
        }
        let mut expected: Vec<usize> = filters
            .iter()
            .enumerate()
            .filter(|(_, f)| reference_matches(f, &topic))
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        expected.dedup();
        let got: Vec<usize> = tree
            .matches(&TopicName::new(topic.clone()).expect("valid"))
            .into_iter()
            .map(|s| s.key)
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Unsubscribing everything empties the trie.
    #[test]
    fn tree_unsubscribe_is_complete(
        filters in prop::collection::vec(topic_filter_str(), 1..12),
    ) {
        let mut tree: SubscriptionTree<usize> = SubscriptionTree::new();
        let parsed: Vec<TopicFilter> = filters
            .iter()
            .map(|f| TopicFilter::new(f.clone()).expect("valid"))
            .collect();
        for (i, f) in parsed.iter().enumerate() {
            tree.subscribe(i, f, QoS::AtMostOnce);
        }
        for (i, f) in parsed.iter().enumerate() {
            prop_assert!(tree.unsubscribe(&i, f));
        }
        prop_assert!(tree.is_empty());
    }
}

// ---------------------------------------------------------------------
// ML invariants
// ---------------------------------------------------------------------

proptest! {
    /// Running stats match a batch recomputation on arbitrary data.
    #[test]
    fn running_stats_match_batch(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = ifot::ml::stat::RunningStats::new();
        for &v in &values {
            s.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-3 * (1.0 + var));
    }

    /// Merging partitioned stats equals the whole.
    #[test]
    fn stats_merge_is_associative(
        left in prop::collection::vec(-1e3f64..1e3, 0..50),
        right in prop::collection::vec(-1e3f64..1e3, 0..50),
    ) {
        let mut whole = ifot::ml::stat::RunningStats::new();
        for v in left.iter().chain(right.iter()) {
            whole.push(*v);
        }
        let mut a = ifot::ml::stat::RunningStats::new();
        let mut b = ifot::ml::stat::RunningStats::new();
        for v in &left {
            a.push(*v);
        }
        for v in &right {
            b.push(*v);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 + 1e-9 * whole.mean().abs());
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-6 * (1.0 + whole.variance()));
    }

    /// The PA update never breaks on arbitrary sparse inputs and keeps
    /// scores finite.
    #[test]
    fn pa_scores_stay_finite(
        examples in prop::collection::vec(
            (prop::collection::vec((0u32..64, -100.0f64..100.0), 1..6), any::<bool>()),
            1..60,
        )
    ) {
        use ifot::ml::classifier::OnlineClassifier;
        let mut m = ifot::ml::classifier::PassiveAggressive::default();
        for (pairs, positive) in &examples {
            let x = ifot::ml::feature::FeatureVector::from_pairs(pairs.clone());
            m.train(&x, if *positive { "p" } else { "n" });
        }
        let (pairs, _) = &examples[0];
        let x = ifot::ml::feature::FeatureVector::from_pairs(pairs.clone());
        for score in m.scores(&x) {
            prop_assert!(score.score.is_finite());
        }
    }
}

// ---------------------------------------------------------------------
// Recipe invariants
// ---------------------------------------------------------------------

/// Generates a random DAG as (task count, forward edges).
fn arb_dag() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..10).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n - 1, 1..n), 0..n * 2).prop_map(move |raw| {
            raw.into_iter()
                .filter(|(a, b)| a < b) // forward edges only: acyclic
                .collect::<Vec<_>>()
        });
        (Just(n), edges)
    })
}

proptest! {
    /// The split plan is a partition respecting every edge, for random
    /// DAGs.
    #[test]
    fn split_respects_random_dags((n, edges) in arb_dag()) {
        use ifot::recipe::model::{Recipe, Task, TaskKind};
        let mut builder = Recipe::builder("prop");
        for i in 0..n {
            builder = builder.task(Task::new(format!("t{i}"), TaskKind::Window { size_ms: 1 }));
        }
        let mut dedup = edges.clone();
        dedup.sort_unstable();
        dedup.dedup();
        for (a, b) in &dedup {
            builder = builder.edge(format!("t{a}"), format!("t{b}"));
        }
        let recipe = builder.build().expect("forward edges cannot cycle");
        let plan = ifot::recipe::split::split(&recipe);
        prop_assert_eq!(plan.task_count(), n);
        for (a, b) in &dedup {
            let sa = plan.stage_of(&format!("t{a}")).expect("placed");
            let sb = plan.stage_of(&format!("t{b}")).expect("placed");
            prop_assert!(sa < sb, "edge t{} -> t{} not forward in stages", a, b);
        }
    }

    /// Every assignment strategy places every task on a capable module.
    #[test]
    fn assignment_respects_capabilities((n, edges) in arb_dag(), strategy_pick in 0usize..3) {
        use ifot::recipe::assign::{
            AssignmentStrategy, CapabilityAware, LoadAware, ModuleInfo, RoundRobin,
        };
        use ifot::recipe::model::{Recipe, Task, TaskKind};
        let mut builder = Recipe::builder("prop");
        for i in 0..n {
            // Alternate sensing and compute tasks.
            let kind = if i % 3 == 0 {
                TaskKind::Sense { sensor: "sound".into(), rate_hz: 1.0 }
            } else {
                TaskKind::Window { size_ms: 1 }
            };
            builder = builder.task(Task::new(format!("t{i}"), kind));
        }
        let mut dedup = edges.clone();
        dedup.sort_unstable();
        dedup.dedup();
        for (a, b) in &dedup {
            builder = builder.edge(format!("t{a}"), format!("t{b}"));
        }
        let recipe = builder.build().expect("valid");
        let modules = vec![
            ModuleInfo::new("sensing", 1.0).with_capability("sensor:sound"),
            ModuleInfo::new("compute", 2.0),
        ];
        let strategy: &dyn AssignmentStrategy = match strategy_pick {
            0 => &RoundRobin,
            1 => &CapabilityAware,
            _ => &LoadAware,
        };
        let assignment = strategy.assign(&recipe, &modules).expect("assignable");
        prop_assert_eq!(assignment.len(), n);
        for task in recipe.tasks() {
            let module = assignment.module_of(&task.id).expect("placed");
            if task.kind.required_capability().is_some() {
                prop_assert_eq!(module, "sensing");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Recipe DSL: render ∘ parse = identity
// ---------------------------------------------------------------------

fn arb_task_kind() -> impl Strategy<Value = ifot::recipe::model::TaskKind> {
    use ifot::recipe::model::TaskKind;
    let name = || prop::string::string_regex("[a-z]{1,8}").expect("valid regex");
    prop_oneof![
        (name(), 1.0f64..100.0).prop_map(|(sensor, rate_hz)| TaskKind::Sense {
            sensor: "sound".into(),
            rate_hz: rate_hz.round(),
        }
        .pick_sensor(sensor)),
        (1u64..10_000).prop_map(|size_ms| TaskKind::Window { size_ms }),
        name().prop_map(|algorithm| TaskKind::Train { algorithm }),
        name().prop_map(|algorithm| TaskKind::Predict { algorithm }),
        (name(), -10.0f64..10.0).prop_map(|(detector, threshold)| TaskKind::DetectAnomaly {
            detector,
            threshold: (threshold * 4.0).round() / 4.0,
        }),
        name().prop_map(|model| TaskKind::Estimate { model }),
        (name(), name(), 0.0f64..50.0, 50.0f64..100.0).prop_map(|(key, emit, off, on)| {
            TaskKind::Policy {
                key,
                on_above: on.round(),
                off_below: off.round(),
                emit,
            }
        }),
        name().prop_map(|actuator| TaskKind::Actuate { actuator }),
        name().prop_map(|operator| TaskKind::Custom { operator }),
    ]
}

/// Helper so the Sense arm above can use a generated sensor name.
trait PickSensor {
    fn pick_sensor(self, sensor: String) -> Self;
}
impl PickSensor for ifot::recipe::model::TaskKind {
    fn pick_sensor(mut self, new: String) -> Self {
        if let ifot::recipe::model::TaskKind::Sense { sensor, .. } = &mut self {
            *sensor = new;
        }
        self
    }
}

proptest! {
    /// Rendering a random valid recipe to DSL and parsing it back yields
    /// the identical recipe.
    #[test]
    fn dsl_render_parse_round_trips(
        kinds in prop::collection::vec(arb_task_kind(), 1..8),
        edge_picks in prop::collection::vec((0usize..7, 1usize..8), 0..10),
    ) {
        use ifot::recipe::model::{Recipe, Task};
        let n = kinds.len();
        let mut builder = Recipe::builder("prop_recipe");
        for (i, kind) in kinds.into_iter().enumerate() {
            builder = builder.task(Task::new(format!("t{i}"), kind));
        }
        let mut edges: Vec<(usize, usize)> = edge_picks
            .into_iter()
            .map(|(a, b)| (a % n, b % n))
            .filter(|(a, b)| a < b)
            .collect();
        edges.sort_unstable();
        edges.dedup();
        for (a, b) in edges {
            builder = builder.edge(format!("t{a}"), format!("t{b}"));
        }
        let recipe = builder.build().expect("forward edges cannot cycle");
        let rendered = ifot::recipe::dsl::render(&recipe);
        let parsed = ifot::recipe::dsl::parse(&rendered)
            .expect("rendered recipes parse");
        prop_assert_eq!(parsed, recipe);
    }
}

// ---------------------------------------------------------------------
// Flow-plane and model-plane wire formats
// ---------------------------------------------------------------------

fn arb_datum() -> impl Strategy<Value = ifot::ml::feature::Datum> {
    prop::collection::vec(
        (
            prop::string::string_regex("[a-z_]{1,10}").expect("valid regex"),
            -1e9f64..1e9,
        ),
        0..6,
    )
    .prop_map(|pairs| {
        let mut datum = ifot::ml::feature::Datum::new();
        for (k, v) in pairs {
            datum.set(k, v);
        }
        datum
    })
}

fn arb_flow_message() -> impl Strategy<Value = ifot::core::flow::FlowMessage> {
    (
        prop::string::string_regex("[a-z0-9-]{1,12}").expect("valid regex"),
        any::<u64>(),
        any::<u64>(),
        arb_datum(),
        prop::option::of(prop::string::string_regex("[a-z]{1,8}").expect("valid regex")),
        prop::option::of(-1e6f64..1e6),
    )
        .prop_map(|(producer, origin_ts_ns, seq, datum, label, score)| {
            ifot::core::flow::FlowMessage {
                producer,
                origin_ts_ns,
                seq,
                datum,
                label,
                score,
            }
        })
}

/// Arbitrary model snapshots, produced the way real nodes produce them:
/// by training a linear classifier on arbitrary examples and exporting.
fn arb_model_diff() -> impl Strategy<Value = ifot::ml::mix::ModelDiff> {
    prop::collection::vec(
        (
            prop::collection::vec((0u32..64, -10.0f64..10.0), 1..4),
            0usize..3,
        ),
        0..12,
    )
    .prop_map(|examples| {
        use ifot::ml::classifier::OnlineClassifier;
        use ifot::ml::mix::LinearModel;
        let mut m = ifot::ml::classifier::PassiveAggressive::default();
        let labels = ["a", "b", "c"];
        for (pairs, pick) in examples {
            let x = ifot::ml::feature::FeatureVector::from_pairs(pairs);
            m.train(&x, labels[pick]);
        }
        m.export_diff()
    })
}

proptest! {
    /// Flow messages survive the JSON wire format for arbitrary data,
    /// labels and scores.
    #[test]
    fn flow_message_json_round_trips(msg in arb_flow_message()) {
        use ifot::core::flow::FlowMessage;
        let decoded = FlowMessage::decode(&msg.encode()).expect("own encoding decodes");
        prop_assert_eq!(decoded, msg);
    }

    /// Truncations of a valid flow message and non-JSON payloads are
    /// rejected as errors — never a panic, never a bogus success.
    #[test]
    fn flow_message_rejects_corrupt_payloads(
        msg in arb_flow_message(),
        cut_pick in any::<usize>(),
        junk in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        use ifot::core::flow::FlowMessage;
        let bytes = msg.encode();
        let cut = 1 + cut_pick % (bytes.len() - 1);
        prop_assert!(FlowMessage::decode(&bytes[..cut]).is_err());
        prop_assert!(FlowMessage::decode(b"not json").is_err());
        let _ = FlowMessage::decode(&junk); // must not panic
    }

    /// MIX envelopes round-trip with real exported model snapshots in
    /// both protocol roles.
    #[test]
    fn mix_envelope_json_round_trips(
        is_avg in any::<bool>(),
        task in prop::string::string_regex("[a-z0-9-]{1,12}").expect("valid regex"),
        diff in arb_model_diff(),
    ) {
        use ifot::core::operators::MixEnvelope;
        let envelope = MixEnvelope {
            role: if is_avg { "avg" } else { "offer" }.into(),
            task,
            diff,
        };
        let decoded = MixEnvelope::decode(&envelope.encode()).expect("own encoding decodes");
        prop_assert_eq!(decoded, envelope);
    }

    /// The compact binary frame and the JSON wire format decode to the
    /// same message — a Binary-configured producer interoperates with
    /// any consumer, since `decode_items` sniffs the leading byte.
    #[test]
    fn binary_and_json_frames_cross_decode(msg in arb_flow_message()) {
        use ifot::core::wire::{decode_items, encode_message_binary, FlowCodec, WireFormat};
        let json = FlowCodec::new(WireFormat::Json).encode_message(&msg);
        let binary = encode_message_binary(&msg);
        prop_assert_eq!(&binary, &FlowCodec::new(WireFormat::Binary).encode_message(&msg));
        let from_json = decode_items("flow/x", &json).expect("json frame decodes");
        let from_binary = decode_items("flow/x", &binary).expect("binary frame decodes");
        prop_assert_eq!(from_json, from_binary);
        prop_assert_eq!(
            ifot::core::wire::decode_message(&binary).expect("binary decodes"),
            msg
        );
    }

    /// Coalesced batches round-trip through the binary frame with item
    /// order preserved, and the peek helpers report the batch header
    /// without a full decode.
    #[test]
    fn flow_batch_binary_round_trips(
        msgs in prop::collection::vec(arb_flow_message(), 1..10),
    ) {
        use ifot::core::flow::{FlowBatch, FlowItem};
        use ifot::core::wire::{decode_batch, decode_items, encode_batch_binary, peek_first_origin, peek_item_count};
        let batch = FlowBatch { items: msgs.clone() };
        let bytes = encode_batch_binary(&batch);
        prop_assert_eq!(decode_batch(&bytes).expect("own encoding decodes"), batch);
        let items: Vec<FlowItem> = msgs
            .iter()
            .map(|m| FlowItem::from_message("flow/x", m.clone()))
            .collect();
        prop_assert_eq!(decode_items("flow/x", &bytes).expect("decodes"), items);
        prop_assert_eq!(peek_item_count(&bytes), Some(msgs.len()));
        prop_assert_eq!(peek_first_origin(&bytes), Some(msgs[0].origin_ts_ns));
    }

    /// Truncations and corruptions of a valid binary frame are rejected
    /// as errors — never a panic, never a bogus success.
    #[test]
    fn binary_frames_reject_corrupt_payloads(
        msgs in prop::collection::vec(arb_flow_message(), 1..6),
        cut_pick in any::<usize>(),
        flip_pick in any::<usize>(),
        junk in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        use ifot::core::flow::FlowBatch;
        use ifot::core::wire::{decode_batch, decode_items, encode_batch_binary, FRAME_MAGIC};
        let batch = FlowBatch { items: msgs };
        let bytes = encode_batch_binary(&batch);
        // Every strict prefix fails (the length-prefixed reader runs dry
        // or the trailing-bytes check fires).
        let cut = cut_pick % bytes.len();
        prop_assert!(decode_batch(&bytes[..cut]).is_err());
        // A version/kind corruption right after the magic byte fails.
        let mut bad = bytes.clone();
        bad[1 + flip_pick % 2] ^= 0xFF;
        prop_assert!(decode_batch(&bad).is_err());
        // Arbitrary junk behind the magic byte must error, not panic.
        let mut framed = vec![FRAME_MAGIC];
        framed.extend_from_slice(&junk);
        prop_assert!(decode_items("flow/x", &framed).is_err() || framed == bytes);
    }

    /// Corrupt MIX payloads are rejected, not panicked on: a malformed
    /// model-plane message must never take down a coordinator.
    #[test]
    fn mix_envelope_rejects_corrupt_payloads(
        is_avg in any::<bool>(),
        task in prop::string::string_regex("[a-z0-9-]{1,12}").expect("valid regex"),
        diff in arb_model_diff(),
        cut_pick in any::<usize>(),
        junk in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        use ifot::core::operators::MixEnvelope;
        let envelope = MixEnvelope {
            role: if is_avg { "avg" } else { "offer" }.into(),
            task,
            diff,
        };
        let bytes = envelope.encode();
        let cut = 1 + cut_pick % (bytes.len() - 1);
        prop_assert!(MixEnvelope::decode(&bytes[..cut]).is_err());
        prop_assert!(MixEnvelope::decode(b"oops").is_err());
        let _ = MixEnvelope::decode(&junk); // must not panic
    }
}

// ---------------------------------------------------------------------
// Simulator: event ordering and determinism under random workloads
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// For random emitter topologies, the simulator processes events in
    /// non-decreasing time order and identical seeds replay identically.
    #[test]
    fn simulator_ordering_and_determinism(
        seed in 0u64..1_000,
        intervals in prop::collection::vec(1u64..40, 1..5),
    ) {
        use ifot::netsim::actor::{Actor, Context, Packet};
        use ifot::netsim::cpu::CpuProfile;
        use ifot::netsim::sim::Simulation;
        use ifot::netsim::time::SimDuration;

        struct Emitter {
            interval_ms: u64,
            peer: String,
        }
        impl Actor for Emitter {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer_after(SimDuration::from_millis(self.interval_ms), 0);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
                if let Some(peer) = ctx.lookup(&self.peer) {
                    ctx.send(peer, 1, vec![0u8; 16]);
                }
                ctx.set_timer_after(SimDuration::from_millis(self.interval_ms), 0);
            }
        }
        struct Sink;
        impl Actor for Sink {
            fn on_packet(&mut self, ctx: &mut Context<'_>, _p: Packet) {
                ctx.metrics().incr("got");
            }
        }

        let build = |seed: u64, intervals: &[u64]| {
            let mut sim = Simulation::new(seed);
            sim.enable_trace();
            sim.add_node("sink", CpuProfile::RASPBERRY_PI_2, Box::new(Sink));
            for (i, &interval_ms) in intervals.iter().enumerate() {
                sim.add_node(
                    &format!("e{i}"),
                    CpuProfile::RASPBERRY_PI_2,
                    Box::new(Emitter {
                        interval_ms,
                        peer: "sink".into(),
                    }),
                );
            }
            sim.run_for(SimDuration::from_millis(500));
            (sim.metrics().counter("got"), sim.take_trace())
        };

        let (got_a, trace_a) = build(seed, &intervals);
        // Ordering: processing times never go backwards.
        let mut last = ifot::netsim::time::SimTime::ZERO;
        for entry in trace_a.entries() {
            prop_assert!(entry.time >= last, "time went backwards");
            last = entry.time;
        }
        prop_assert!(got_a > 0);
        // Determinism: same seed, same trace.
        let (got_b, trace_b) = build(seed, &intervals);
        prop_assert_eq!(got_a, got_b);
        prop_assert_eq!(trace_a.digest(), trace_b.digest());
    }
}

// ---------------------------------------------------------------------
// Sensor sample codec
// ---------------------------------------------------------------------

proptest! {
    /// The 32-byte sample image round-trips for arbitrary field values.
    #[test]
    fn sample_wire_round_trips(
        kind_byte in 0u8..7,
        device in any::<u16>(),
        seq in any::<u32>(),
        ts in any::<u64>(),
        values in prop::collection::vec(-1e30f32..1e30, 1..4),
    ) {
        use ifot::sensors::sample::{Sample, SensorKind};
        let kind = SensorKind::from_byte(kind_byte).expect("generated kinds are valid");
        let sample = Sample::new(kind, device, seq, ts, &values);
        let decoded = Sample::decode(&sample.encode()).expect("round trip");
        prop_assert_eq!(decoded, sample);
    }
}

// ---------------------------------------------------------------------
// Delivery guarantees under arbitrary loss + reconnect schedules
// ---------------------------------------------------------------------

fn arb_disruption_schedule() -> impl Strategy<Value = Vec<(u64, bool)>> {
    prop::collection::vec((100u64..20_000, any::<bool>()), 0..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// QoS 1 stays at-least-once — with every payload preserved — no
    /// matter where loss strikes or when either side's transport is
    /// forcibly torn down and resumed via the reconnect supervisor.
    #[test]
    fn qos1_at_least_once_under_arbitrary_loss_and_reconnects(
        loss_pct in 0u64..=25,
        schedule in arb_disruption_schedule(),
        seed in any::<u64>(),
    ) {
        let run = common::run_with_reconnects(
            QoS::AtLeastOnce, 30, loss_pct, &schedule, seed);
        prop_assert!(run.settled, "run never drained: {run:?}");
        prop_assert_eq!(run.delivered.len(), 30);
        for i in 0u32..30 {
            let n = run.delivered.get(i.to_be_bytes().as_slice());
            prop_assert!(n.is_some_and(|&n| n >= 1),
                "message {} violated at-least-once: {:?}", i, run);
        }
    }

    /// QoS 2 stays exactly-once across the same schedules: session
    /// resume may replay PUBLISH/PUBREL, but never into a duplicate
    /// delivery.
    #[test]
    fn qos2_exactly_once_under_arbitrary_loss_and_reconnects(
        loss_pct in 0u64..=25,
        schedule in arb_disruption_schedule(),
        seed in any::<u64>(),
    ) {
        let run = common::run_with_reconnects(
            QoS::ExactlyOnce, 30, loss_pct, &schedule, seed);
        prop_assert!(run.settled, "run never drained: {run:?}");
        prop_assert_eq!(run.delivered.len(), 30);
        for i in 0u32..30 {
            let n = run.delivered.get(i.to_be_bytes().as_slice());
            prop_assert!(n == Some(&1),
                "message {} violated exactly-once: {:?}", i, run);
        }
    }
}

// ---------------------------------------------------------------------
// Write-ahead log: framing, replay equivalence, corrupt-tail recovery
// ---------------------------------------------------------------------

fn arb_client_id() -> impl Strategy<Value = String> {
    prop::string::string_regex("[a-z0-9-]{1,8}").expect("valid regex")
}

fn arb_wal_stage() -> impl Strategy<Value = ifot::mqtt::wal::WalStage> {
    use ifot::mqtt::wal::WalStage;
    prop_oneof![
        Just(WalStage::AwaitPuback),
        Just(WalStage::AwaitPubrec),
        Just(WalStage::AwaitPubcomp),
    ]
}

fn arb_durable_publish() -> impl Strategy<Value = ifot::mqtt::wal::DurablePublish> {
    (
        topic_name_str(),
        qos(),
        any::<bool>(),
        prop::collection::vec(any::<u8>(), 0..32),
    )
        .prop_map(
            |(topic, qos, retain, payload)| ifot::mqtt::wal::DurablePublish {
                topic,
                qos,
                retain,
                payload: payload.into(),
            },
        )
}

fn arb_wal_record() -> impl Strategy<Value = ifot::mqtt::wal::WalRecord> {
    use ifot::mqtt::wal::WalRecord;
    prop_oneof![
        any::<u64>().prop_map(|last_lsn| WalRecord::SnapshotHeader { last_lsn }),
        (arb_client_id(), any::<u16>())
            .prop_map(|(client, next_pid)| WalRecord::SessionStarted { client, next_pid }),
        arb_client_id().prop_map(|client| WalRecord::SessionCleared { client }),
        (arb_client_id(), topic_filter_str(), qos()).prop_map(|(client, filter, qos)| {
            WalRecord::Subscribed {
                client,
                filter,
                qos,
            }
        }),
        (arb_client_id(), topic_filter_str())
            .prop_map(|(client, filter)| WalRecord::Unsubscribed { client, filter }),
        arb_durable_publish().prop_map(|message| WalRecord::RetainSet { message }),
        topic_name_str().prop_map(|topic| WalRecord::RetainCleared { topic }),
        (arb_client_id(), arb_durable_publish())
            .prop_map(|(client, message)| WalRecord::Queued { client, message }),
        arb_client_id().prop_map(|client| WalRecord::QueuePopped { client }),
        (
            arb_client_id(),
            any::<u16>(),
            arb_wal_stage(),
            arb_durable_publish()
        )
            .prop_map(|(client, pid, stage, message)| WalRecord::InflightInsert {
                client,
                pid,
                stage,
                message
            }),
        (arb_client_id(), any::<u16>(), arb_wal_stage())
            .prop_map(|(client, pid, stage)| { WalRecord::InflightStage { client, pid, stage } }),
        (arb_client_id(), any::<u16>())
            .prop_map(|(client, pid)| WalRecord::InflightRemove { client, pid }),
        (arb_client_id(), any::<u16>())
            .prop_map(|(client, pid)| WalRecord::InQos2Insert { client, pid }),
        (arb_client_id(), any::<u16>())
            .prop_map(|(client, pid)| WalRecord::InQos2Remove { client, pid }),
    ]
}

proptest! {
    /// decode_record(encode_record(r)) == r for every record kind, with
    /// every byte consumed.
    #[test]
    fn wal_record_round_trips(rec in arb_wal_record()) {
        use ifot::mqtt::wal::{decode_record, encode_record};
        let mut buf = Vec::new();
        encode_record(&mut buf, &rec);
        let mut pos = 0;
        let decoded = decode_record(&buf, &mut pos).expect("own encoding decodes");
        prop_assert_eq!(pos, buf.len(), "every byte consumed");
        prop_assert_eq!(decoded, rec);
    }

    /// Committing arbitrary record batches through a [`Wal`] — with
    /// snapshot + truncate cycles interleaved at an arbitrary cadence —
    /// and recovering from the backend yields exactly the state of
    /// applying the records directly, in order.
    #[test]
    fn wal_snapshot_and_tail_replay_equals_direct_apply(
        batches in prop::collection::vec(
            prop::collection::vec(arb_wal_record(), 0..6), 1..12),
        snapshot_every in prop_oneof![Just(0u64), 1u64..16],
    ) {
        use ifot::mqtt::wal::{self, DurableState, MemBackend, Wal, WalConfig};
        let backend = MemBackend::new();
        let mut wal = Wal::new(
            Box::new(backend.clone()),
            WalConfig { snapshot_every, ..WalConfig::default() },
        );
        let mut mirror = DurableState::default();
        for batch in &batches {
            for rec in batch {
                wal.record(rec);
                mirror.apply(rec);
            }
            wal.commit();
            if wal.snapshot_due() {
                wal.install_snapshot(&mirror.to_records());
            }
        }
        let report = wal::recover(&mut backend.clone()).expect("in-memory recover");
        prop_assert!(!report.log_truncated);
        prop_assert!(!report.snapshot_corrupt);
        prop_assert_eq!(report.state, mirror);
        // The recovered LSN positions a resumed writer above everything
        // on the backend.
        prop_assert!(report.last_lsn < wal.next_lsn() || report.last_lsn == 0);
    }

    /// Recovery from an arbitrarily truncated and bit-flipped log never
    /// panics and always lands on a clean batch-prefix state.
    #[test]
    fn wal_corrupt_tails_recover_a_clean_prefix(
        batches in prop::collection::vec(
            prop::collection::vec(arb_wal_record(), 1..5), 1..8),
        cut_pick in any::<usize>(),
        flips in prop::collection::vec((any::<usize>(), 0u8..8), 0..4),
    ) {
        use ifot::mqtt::wal::{self, DurableState, MemBackend, Wal, WalConfig};
        let backend = MemBackend::new();
        let mut wal = Wal::new(
            Box::new(backend.clone()),
            WalConfig { snapshot_every: 0, ..WalConfig::default() },
        );
        let mut states = vec![DurableState::default()];
        let mut acc = DurableState::default();
        for batch in &batches {
            for rec in batch {
                wal.record(rec);
                acc.apply(rec);
            }
            wal.commit();
            states.push(acc.clone());
        }
        let mut log = backend.raw_log();
        log.truncate(cut_pick % (log.len() + 1));
        for (at, bit) in &flips {
            if !log.is_empty() {
                let i = at % log.len();
                log[i] ^= 1 << bit;
            }
        }
        let corrupted = MemBackend::new();
        corrupted.set_raw_log(log);
        let report = wal::recover(&mut corrupted.clone()).expect("in-memory recover");
        prop_assert!(
            states.contains(&report.state),
            "recovered state is not a clean batch prefix: {:?}", report
        );
    }

    /// Opening a writer over an arbitrarily corrupted log *physically
    /// repairs* the backend: batches committed after the reopen survive a
    /// second crash (replay equals recovered-prefix state + new records,
    /// with no residual corruption) — the double-crash guarantee.
    #[test]
    fn wal_open_repairs_arbitrary_corruption(
        batches in prop::collection::vec(
            prop::collection::vec(arb_wal_record(), 1..5), 1..8),
        cut_pick in any::<usize>(),
        flips in prop::collection::vec((any::<usize>(), 0u8..8), 0..4),
        marker in arb_wal_record(),
    ) {
        use ifot::mqtt::wal::{self, MemBackend, Wal, WalConfig};
        let backend = MemBackend::new();
        let mut wal = Wal::new(
            Box::new(backend.clone()),
            WalConfig { snapshot_every: 0, ..WalConfig::default() },
        );
        for batch in &batches {
            for rec in batch {
                wal.record(rec);
            }
            wal.commit();
        }
        let mut log = backend.raw_log();
        log.truncate(cut_pick % (log.len() + 1));
        for (at, bit) in &flips {
            if !log.is_empty() {
                let i = at % log.len();
                log[i] ^= 1 << bit;
            }
        }
        let corrupted = MemBackend::new();
        corrupted.set_raw_log(log);

        let (mut wal, report) =
            Wal::open(Box::new(corrupted.clone()), WalConfig::default())
                .expect("in-memory open");
        wal.record(&marker);
        wal.commit();
        drop(wal); // second crash

        let again = wal::recover(&mut corrupted.clone()).expect("in-memory recover");
        prop_assert!(!again.log_truncated, "repair must leave a clean log: {:?}", again);
        prop_assert!(!again.snapshot_corrupt);
        let mut expect = report.state.clone();
        expect.apply(&marker);
        prop_assert_eq!(
            again.state, expect,
            "post-repair commits must survive the second crash"
        );
    }

    /// `DurableState::to_records` is a faithful dump: applying it to an
    /// empty state reproduces the state it was taken from.
    #[test]
    fn wal_to_records_is_fixpoint(
        records in prop::collection::vec(arb_wal_record(), 0..40),
    ) {
        use ifot::mqtt::wal::DurableState;
        let mut state = DurableState::default();
        for rec in &records {
            state.apply(rec);
        }
        let mut rebuilt = DurableState::default();
        for rec in state.to_records() {
            rebuilt.apply(&rec);
        }
        prop_assert_eq!(rebuilt, state);
    }

    /// `parse_stream` never panics on arbitrary bytes, and whatever it
    /// accepts replays without error.
    #[test]
    fn wal_parse_stream_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        use ifot::mqtt::wal::{self, MemBackend};
        let _ = wal::parse_stream(&bytes);
        let backend = MemBackend::new();
        backend.set_raw_log(bytes);
        let _ = wal::recover(&mut backend.clone()).expect("in-memory recover");
    }
}

// ---------------------------------------------------------------------
// Delivery guarantees across broker kill/restart cycles (WAL recovery)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// QoS 2 stays exactly-once when the *broker* dies at arbitrary
    /// times (state rebuilt from the WAL), under arbitrary loss, with
    /// snapshots at an arbitrary cadence.
    #[test]
    fn qos2_exactly_once_across_broker_crashes_prop(
        loss_pct in 0u64..=15,
        crash_times in prop::collection::vec(1_000u64..40_000, 0..4),
        seed in any::<u64>(),
        snapshot_every in prop_oneof![Just(0u64), 4u64..64],
    ) {
        let run = common::run_with_broker_crashes(
            QoS::ExactlyOnce, 20, loss_pct, &crash_times, seed, snapshot_every);
        prop_assert!(run.settled, "run never drained: {run:?}");
        run.ledger.assert_exactly_once(1, 20);
    }

    /// QoS 1 never loses a message across the same crash schedules.
    #[test]
    fn qos1_zero_loss_across_broker_crashes_prop(
        loss_pct in 0u64..=15,
        crash_times in prop::collection::vec(1_000u64..40_000, 0..4),
        seed in any::<u64>(),
        snapshot_every in prop_oneof![Just(0u64), 4u64..64],
    ) {
        let run = common::run_with_broker_crashes(
            QoS::AtLeastOnce, 20, loss_pct, &crash_times, seed, snapshot_every);
        prop_assert!(run.settled, "run never drained: {run:?}");
        run.ledger.assert_at_least_once(1, 20);
    }
}

// ---------------------------------------------------------------------
// Reconnect supervisor invariants
// ---------------------------------------------------------------------

proptest! {
    /// A connected peer whose inbound gaps all stay below the grace
    /// period is never declared dead, regardless of how the gaps
    /// jitter.
    #[test]
    fn live_peer_with_bounded_gaps_is_never_declared_dead(
        gaps in prop::collection::vec(0u64..1_499_999_999, 1..50),
    ) {
        use ifot::mqtt::client::ClientState;
        use ifot::mqtt::supervisor::{
            ReconnectConfig, ReconnectSupervisor, SupervisorAction,
        };
        let mut sup = ReconnectSupervisor::new(ReconnectConfig::default(), 1);
        let mut rng = 1u64;
        sup.on_connect_sent(0);
        sup.on_connected(0);
        let mut now = 0u64;
        for gap in gaps {
            now += gap;
            let action =
                sup.poll(ClientState::Connected, now, &mut || common::splitmix(&mut rng));
            prop_assert_eq!(action, SupervisorAction::None,
                "falsely declared dead after a {}ns gap", gap);
            sup.on_inbound(now);
        }
        prop_assert_eq!(sup.stats().transport_lost, 0);
    }

    /// Consecutive failed attempts are scheduled with exponentially
    /// growing, capped, jitter-bounded delays, and the whole schedule
    /// is a pure function of the RNG stream.
    #[test]
    fn backoff_schedule_is_bounded_and_deterministic(
        seed in any::<u64>(),
        failures in 1u32..16,
    ) {
        use ifot::mqtt::client::ClientState;
        use ifot::mqtt::supervisor::{
            ReconnectConfig, ReconnectSupervisor, SupervisorAction,
        };
        let config = ReconnectConfig::default();
        let run = |mut rng: u64| -> Vec<u64> {
            let mut sup = ReconnectSupervisor::new(config.clone(), 0);
            let mut now = 1u64;
            let mut delays = Vec::new();
            for _ in 0..failures {
                // Nothing scheduled yet: this poll books the retry.
                let action = sup.poll(ClientState::Disconnected, now, &mut || {
                    common::splitmix(&mut rng)
                });
                assert_eq!(action, SupervisorAction::None);
                let at = sup.next_attempt_ns().expect("retry booked");
                delays.push(at - now);
                // The attempt fires, the CONNECT goes out and times out.
                now = at;
                let action = sup.poll(ClientState::Disconnected, now, &mut || {
                    common::splitmix(&mut rng)
                });
                assert_eq!(action, SupervisorAction::Connect);
                sup.on_connect_sent(now);
                now += config.connect_timeout_ns;
                let action = sup.poll(ClientState::Connecting, now, &mut || {
                    common::splitmix(&mut rng)
                });
                assert_eq!(action, SupervisorAction::TransportLost);
            }
            delays
        };
        let delays = run(seed);
        for (k, &delay) in delays.iter().enumerate() {
            let pre_jitter = (config.backoff_base_ns << k.min(32)).min(config.backoff_max_ns);
            let ceiling = pre_jitter + (pre_jitter as f64 * config.jitter_frac) as u64;
            prop_assert!(delay >= pre_jitter,
                "attempt {} fired before its backoff: {} < {}", k, delay, pre_jitter);
            prop_assert!(delay <= ceiling,
                "attempt {} exceeded jitter ceiling: {} > {}", k, delay, ceiling);
        }
        // Same RNG stream, same schedule — the determinism rule.
        prop_assert_eq!(delays, run(seed));
    }
}

// ---------------------------------------------------------------------
// Shard routing (DESIGN.md §5)
// ---------------------------------------------------------------------

proptest! {
    /// Sequence partitioning is an exact cover: every item lands in
    /// exactly the `seq % modulus` bucket, intra-bucket order preserves
    /// input order, and the borrowing partitioner agrees with the
    /// consuming one.
    #[test]
    fn shard_partition_is_an_exact_cover(
        msgs in prop::collection::vec(arb_flow_message(), 0..64),
        modulus in 0u64..9,
    ) {
        use ifot::core::executor::router::{partition_by_seq, partition_by_seq_cloned};
        use ifot::core::flow::FlowItem;
        let items: Vec<FlowItem> = msgs
            .iter()
            .map(|m| FlowItem::from_message("flow/x", m.clone()))
            .collect();

        let cloned = partition_by_seq_cloned(&items, modulus);
        let owned = partition_by_seq(items.clone(), modulus);
        prop_assert_eq!(&cloned, &owned, "borrowing and consuming partitioners disagree");

        let m = modulus.max(1);
        prop_assert_eq!(owned.len() as u64, m, "one bucket per shard index");
        let total: usize = owned.iter().map(Vec::len).sum();
        prop_assert_eq!(total, items.len(), "partition must not drop or duplicate");
        for (index, bucket) in owned.iter().enumerate() {
            for item in bucket {
                prop_assert_eq!(item.seq % m, index as u64, "item in the wrong bucket");
            }
        }
        // Intra-bucket order preserves input order: re-partitioning the
        // concatenation in bucket order is a fixpoint.
        let replayed: Vec<FlowItem> = owned.iter().flatten().cloned().collect();
        prop_assert_eq!(partition_by_seq(replayed, modulus), owned);
    }
}

// ---------------------------------------------------------------------
// Direct stage-to-stage handoff (DESIGN.md §5)
// ---------------------------------------------------------------------

/// A random intra-node flow tree: `parents[i]` is the stage feeding
/// stage `i + 1` (stage 0 is the root fed from outside). Stages with no
/// children publish their output; the rest are local-only links.
fn arb_flow_tree() -> impl Strategy<Value = Vec<usize>> {
    (1usize..6).prop_flat_map(|extra| {
        prop::collection::vec(0usize..usize::MAX, extra).prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, r)| r % (i + 1)) // parent among stages 0..=i
                .collect()
        })
    })
}

/// The handoff invariant checked by [`direct_handoff_conserves_and_orders_any_flow_tree`]:
/// a single virtual worker stepping the pooled cells over the flow tree
/// `parents` delivers every one of `count` injected items to every leaf
/// exactly once, in injection order, and every intra-node hop is a
/// direct handoff (nothing saturates, nothing churns). Plain asserts so
/// the deterministic smoke test below exercises the same body.
fn check_flow_tree_handoff(parents: &[usize], count: u64) {
    use ifot::core::config::{ExecutorConfig, OperatorKind, OperatorSpec};
    use ifot::core::env::MockEnv;
    use ifot::core::executor::handoff::PlanCache;
    use ifot::core::executor::{ExecutorGraph, WorkItem};
    use ifot::core::flow::FlowItem;
    use ifot::core::operators::OpOutput;
    use ifot::ml::feature::Datum;

    let n = parents.len() + 1;
    let mut children = vec![0usize; n];
    for &p in parents {
        children[p] += 1;
    }
    let specs: Vec<OperatorSpec> = (0..n)
        .map(|i| {
            let input = if i == 0 {
                "flow/in".to_string()
            } else {
                format!("flow/t{}", parents[i - 1])
            };
            let spec = OperatorSpec::through(
                format!("s{i}"),
                OperatorKind::Custom {
                    operator: "probe".into(),
                },
                vec![input],
                format!("flow/t{i}"),
            );
            if children[i] > 0 {
                spec.local_only()
            } else {
                spec
            }
        })
        .collect();
    let config = ExecutorConfig {
        workers: 1,
        mailbox_capacity: 4096,
        ..ExecutorConfig::default()
    };
    let graph = ExecutorGraph::compile(specs, &config);
    let cells = graph.cells();
    let handoff = graph.direct_handoff();
    let mut cache = PlanCache::new();
    let mut env = MockEnv::new();

    // Single virtual worker: inject one item per round, then step every
    // stage once, routing egress into per-leaf logs. Nothing can
    // saturate (capacity 4096 > count), so no fallbacks.
    let mut egress: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut next = 0u64;
    loop {
        let mut progress = false;
        if next < count {
            let item = FlowItem {
                topic: "flow/in".into(),
                origin_ts_ns: next,
                seq: next,
                datum: Datum::new().with("x", next as f64),
                label: None,
                score: None,
            };
            graph.enqueue(0, WorkItem::Item(item), 0);
            next += 1;
            progress = true;
        }
        for (i, cell) in cells.iter().enumerate() {
            let Some(outcome) = cell.step_pooled_handoff(&mut env, i, &handoff, &mut cache) else {
                continue;
            };
            progress = true;
            assert_eq!(outcome.fallback, 0, "stage {i} fell back");
            assert_eq!(outcome.stale, 0, "stage {i} saw a stale route");
            for output in outcome.leftover {
                match output {
                    OpOutput::Emit(m) => {
                        assert_eq!(
                            children[i], 0,
                            "only leaves may reach deliver, stage {i} leaked"
                        );
                        egress[i].push(m.origin_ts_ns);
                    }
                    other => panic!("pass-through emitted {other:?}"),
                }
            }
        }
        if !progress {
            break;
        }
    }

    // Exact conservation + per-topic FIFO at every leaf.
    let expected: Vec<u64> = (0..count).collect();
    for i in 0..n {
        if children[i] == 0 {
            assert_eq!(
                egress[i], expected,
                "leaf {i} must see the stream exactly once, in order"
            );
        } else {
            assert!(egress[i].is_empty());
        }
    }
    // Every intra-node hop was a direct handoff: stage i hands each of
    // the `count` items to each of its children.
    for (i, fanout) in children.iter().enumerate().take(n) {
        let stats = graph.stats(i);
        assert_eq!(stats.handoff_direct, count * *fanout as u64);
        assert_eq!(stats.handoff_fallback, 0);
        assert_eq!(stats.handoff_stale_route, 0);
    }
}

/// Deterministic corner topologies: a deep chain, a wide star, and a
/// mixed tree. The proptest below explores the space at random.
#[test]
fn direct_handoff_tree_smoke() {
    check_flow_tree_handoff(&[0], 1); // two-stage chain, one item
    check_flow_tree_handoff(&[0, 1, 2, 3], 40); // five-stage chain
    check_flow_tree_handoff(&[0, 0, 0, 0], 40); // star fan-out
    check_flow_tree_handoff(&[0, 0, 1, 2, 2], 40); // mixed tree
}

proptest! {
    /// Direct handoff over an arbitrary flow tree conserves the stream
    /// exactly and preserves per-topic FIFO.
    #[test]
    fn direct_handoff_conserves_and_orders_any_flow_tree(
        parents in arb_flow_tree(),
        count in 1u64..48,
    ) {
        check_flow_tree_handoff(&parents, count);
    }
}
