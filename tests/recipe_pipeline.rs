//! Integration: recipe DSL → split/assign → deployment → execution,
//! across both runtimes — the full Fig. 6 application build process.

use ifot::core::deploy::deploy;
use ifot::core::sim_adapter::{add_middleware_node, SimNode};
use ifot::core::thread_rt::ClusterBuilder;
use ifot::core::NodeEvent;
use ifot::netsim::cpu::CpuProfile;
use ifot::netsim::sim::Simulation;
use ifot::netsim::time::SimDuration;
use ifot::recipe::assign::{CapabilityAware, LoadAware, ModuleInfo};
use ifot::recipe::{dsl, split};
use ifot::sensors::inject::{FaultKind, FaultWindow};
use ifot::sensors::sample::SensorKind;

const MONITORING: &str = r#"
    recipe watch {
        task accel: sense(sensor = "accel", rate_hz = 20);
        task fall:  anomaly(detector = "mahalanobis", threshold = 6);
        task alert: actuate(actuator = "alert");
        accel -> fall -> alert;
    }
"#;

fn watch_modules() -> Vec<ModuleInfo> {
    vec![
        ModuleInfo::new("bedroom", 1.0).with_capability("sensor:accel"),
        ModuleInfo::new("gateway", 1.0).with_capability("actuator:alert"),
    ]
}

#[test]
fn dsl_to_simulator_detects_injected_fall() {
    let recipe = dsl::parse(MONITORING).expect("recipe parses");
    let plan = split::split(&recipe);
    assert_eq!(plan.depth(), 3);

    let deployment =
        deploy(&recipe, &watch_modules(), &CapabilityAware, "gateway").expect("deploys");

    let mut sim = Simulation::new(11);
    let mut ids = Vec::new();
    for mut cfg in deployment.configs.clone() {
        for sensor in &mut cfg.sensors {
            sensor.faults.push(FaultWindow {
                from_ns: 3_000_000_000,
                until_ns: 3_400_000_000,
                kind: FaultKind::Spike { magnitude: 25.0 },
            });
        }
        ids.push(add_middleware_node(
            &mut sim,
            CpuProfile::RASPBERRY_PI_2,
            cfg,
        ));
    }
    sim.run_for(SimDuration::from_secs(6));

    assert!(
        sim.metrics().counter("samples_anomalous") > 0,
        "fault injected"
    );
    assert!(sim.metrics().counter("anomaly_flagged") > 0, "fall flagged");
    assert!(
        sim.metrics().counter("commands_applied") > 0,
        "alert actuated"
    );

    // The alert sink on the gateway received the alert.
    let gateway_events: Vec<&NodeEvent> = ids
        .iter()
        .filter_map(|&id| sim.actor_as::<SimNode>(id))
        .flat_map(|n| n.middleware().events())
        .collect();
    assert!(
        gateway_events
            .iter()
            .any(|e| matches!(e, NodeEvent::ActuatorApplied { .. })),
        "actuator event recorded"
    );
    // No alert *before* the fault window.
    for e in &gateway_events {
        if let NodeEvent::ActuatorApplied { at_ns, .. } = e {
            assert!(
                *at_ns >= 2_000_000_000,
                "alert fired before the fault: {at_ns}"
            );
        }
    }
}

#[test]
fn dsl_to_threads_runs_the_same_deployment() {
    let recipe = dsl::parse(MONITORING).expect("recipe parses");
    let deployment =
        deploy(&recipe, &watch_modules(), &CapabilityAware, "gateway").expect("deploys");
    let mut builder = ClusterBuilder::new();
    for cfg in deployment.configs.clone() {
        builder = builder.node(cfg);
    }
    let report = builder
        .start()
        .run_for(std::time::Duration::from_millis(900));
    assert!(report.metrics.counter("published") > 5);
    assert!(report.metrics.counter("anomaly_scored") > 5);
    assert!(report.node("gateway").expect("gateway ran").is_connected());
}

#[test]
fn fig5_recipe_runs_distributed_on_five_modules() {
    let recipe = ifot::recipe::model::fig5_elderly_monitoring();
    let modules = vec![
        ModuleInfo::new("m-accel", 1.0).with_capability("sensor:accel"),
        ModuleInfo::new("m-sound", 1.0)
            .with_capability("sensor:sound")
            .with_capability("sensor:motion"),
        ModuleInfo::new("m-illum", 1.0).with_capability("sensor:illuminance"),
        ModuleInfo::new("m-broker", 2.0),
        ModuleInfo::new("m-alert", 1.0).with_capability("actuator:alert"),
    ];
    let deployment = deploy(&recipe, &modules, &LoadAware, "m-broker").expect("deploys");
    let mut sim = Simulation::new(17);
    for cfg in deployment.configs.clone() {
        add_middleware_node(&mut sim, CpuProfile::RASPBERRY_PI_2, cfg);
    }
    sim.run_for(SimDuration::from_secs(5));

    // All four sensing tasks publish; the analysis chain is active.
    assert!(sim.metrics().counter("published") > 50);
    assert!(sim.metrics().counter("anomaly_scored") > 20);
    assert!(
        sim.metrics().counter("estimates") > 0,
        "state estimation ran"
    );
    // Every sensing module connected.
    for name in ["m-accel", "m-sound", "m-illum", "m-alert"] {
        let id = sim.node_id(name).expect("registered");
        let node: &SimNode = sim.actor_as(id).expect("middleware node");
        assert!(node.middleware().is_connected(), "{name} not connected");
    }
}

#[test]
fn sensor_kind_slugs_cover_the_recipe_vocabulary() {
    for slug in [
        "accel",
        "sound",
        "motion",
        "illuminance",
        "temperature",
        "humidity",
        "personflow",
    ] {
        assert!(
            ifot::core::deploy::sensor_kind_by_slug(slug).is_some(),
            "slug {slug} unmapped"
        );
    }
    assert!(ifot::core::deploy::sensor_kind_by_slug("warp-core").is_none());
    let _ = SensorKind::Accelerometer; // silence unused import lint paths
}
