//! Deterministic smoke tests of the zero-copy data path: concrete-value
//! counterparts of the property tests in `proptests.rs`, runnable without
//! a property-testing harness. They pin the externally observable
//! semantics the `Bytes` refactor must preserve — wire compatibility,
//! retained-message behaviour, and QoS 1/2 redelivery.

use bytes::Bytes;

use ifot::mqtt::broker::{Action, Broker};
use ifot::mqtt::codec::{decode, encode, StreamDecoder};
use ifot::mqtt::packet::{Connect, Packet, Publish, QoS, Subscribe, SubscribeFilter};
use ifot::mqtt::topic::{TopicFilter, TopicName};

fn topic(name: &str) -> TopicName {
    TopicName::new(name).expect("valid topic")
}

fn subscribe_packet(filter: &str, qos: QoS) -> Packet {
    Packet::Subscribe(Subscribe {
        packet_id: 1,
        filters: vec![SubscribeFilter {
            filter: TopicFilter::new(filter).expect("valid filter"),
            qos,
        }],
    })
}

/// Decodes every delivery (plain packet or pre-encoded frame) to `conn`.
fn deliveries_to(actions: &[Action<u8>], conn: u8) -> Vec<Publish> {
    let mut out = Vec::new();
    for action in actions {
        match action {
            Action::Send {
                conn: c,
                packet: Packet::Publish(p),
            } if *c == conn => out.push(p.clone()),
            Action::SendFrame { conn: c, frame } if *c == conn => {
                let (packet, used) = decode(frame).expect("frames decode").expect("complete");
                assert_eq!(used, frame.len(), "frame holds exactly one packet");
                if let Packet::Publish(p) = packet {
                    out.push(p);
                }
            }
            _ => {}
        }
    }
    out
}

#[test]
fn bytes_and_vec_payloads_encode_identically() {
    let payload = vec![7u8, 0, 255, 42];
    let from_vec = Publish::qos0(topic("a/b"), payload.clone());
    let from_bytes = Publish::qos0(topic("a/b"), Bytes::from(payload));
    assert_eq!(
        encode(&Packet::Publish(from_vec)),
        encode(&Packet::Publish(from_bytes))
    );
}

#[test]
fn stream_decoder_is_chunking_invariant() {
    let packets = vec![
        Packet::Connect(Connect::new("c")),
        Packet::Publish(Publish::qos0(topic("x/y"), vec![1u8; 40])),
        Packet::Pingreq,
        Packet::Publish(Publish::qos1(topic("x/z"), vec![2u8; 3], 9)),
    ];
    let mut wire = Vec::new();
    for p in &packets {
        wire.extend_from_slice(&encode(p));
    }
    for chunk in 1..=7usize {
        let mut dec = StreamDecoder::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            dec.feed(piece);
            while let Some(p) = dec.next_packet().expect("valid stream") {
                got.push(p);
            }
        }
        assert_eq!(got, packets, "chunk size {chunk}");
    }
}

#[test]
fn retained_messages_keep_last_writer_per_topic() {
    let mut broker: Broker<u8> = Broker::new();
    broker.connection_opened(0, 0);
    broker.handle_packet(&0, Packet::Connect(Connect::new("pub")), 0);
    let retained = |t: &str, body: &[u8]| {
        let mut p = Publish::qos0(topic(t), body.to_vec());
        p.retain = true;
        Packet::Publish(p)
    };
    broker.handle_packet(&0, retained("r/a", b"first"), 0);
    broker.handle_packet(&0, retained("r/a", b"second"), 0);
    broker.handle_packet(&0, retained("r/b", b"kept"), 0);
    broker.handle_packet(&0, retained("r/c", b"cleared"), 0);
    broker.handle_packet(&0, retained("r/c", b""), 0);

    broker.connection_opened(1, 0);
    broker.handle_packet(&1, Packet::Connect(Connect::new("sub")), 0);
    let actions = broker.handle_packet(&1, subscribe_packet("r/#", QoS::AtMostOnce), 0);
    let mut got: Vec<(String, Vec<u8>)> = deliveries_to(&actions, 1)
        .into_iter()
        .inspect(|p| assert!(p.retain, "retained delivery keeps the retain flag"))
        .map(|p| (p.topic.as_str().to_owned(), p.payload.to_vec()))
        .collect();
    got.sort();
    assert_eq!(
        got,
        vec![
            ("r/a".to_owned(), b"second".to_vec()),
            ("r/b".to_owned(), b"kept".to_vec()),
        ]
    );
}

#[test]
fn qos1_redelivery_preserves_payload_and_pid() {
    let mut broker: Broker<u8> = Broker::new();
    broker.connection_opened(1, 0);
    broker.handle_packet(&1, Packet::Connect(Connect::new("sub")), 0);
    broker.handle_packet(&1, subscribe_packet("t", QoS::AtLeastOnce), 0);
    broker.connection_opened(0, 0);
    broker.handle_packet(&0, Packet::Connect(Connect::new("pub")), 0);

    let actions = broker.handle_packet(
        &0,
        Packet::Publish(Publish::qos1(topic("t"), b"body".as_slice().to_vec(), 7)),
        0,
    );
    let first = deliveries_to(&actions, 1);
    assert_eq!(first.len(), 1);
    assert!(!first[0].dup);
    assert_eq!(first[0].qos, QoS::AtLeastOnce);
    assert_eq!(first[0].payload.as_ref(), b"body");
    let pid = first[0].packet_id.expect("qos 1 carries a packet id");

    // No PUBACK: redelivered after the retransmit timeout, dup set.
    let redelivered = deliveries_to(&broker.poll(3_000_000_000), 1);
    assert_eq!(redelivered.len(), 1);
    assert!(redelivered[0].dup);
    assert_eq!(redelivered[0].packet_id, Some(pid));
    assert_eq!(redelivered[0].payload.as_ref(), b"body");
}

#[test]
fn qos2_release_preserves_payload() {
    let mut broker: Broker<u8> = Broker::new();
    broker.connection_opened(1, 0);
    broker.handle_packet(&1, Packet::Connect(Connect::new("sub")), 0);
    broker.handle_packet(&1, subscribe_packet("t", QoS::ExactlyOnce), 0);
    broker.connection_opened(0, 0);
    broker.handle_packet(&0, Packet::Connect(Connect::new("pub")), 0);

    let publish = Publish {
        dup: false,
        qos: QoS::ExactlyOnce,
        retain: false,
        topic: topic("t"),
        packet_id: Some(7),
        payload: Bytes::from_static(b"exactly"),
    };
    let first = deliveries_to(
        &broker.handle_packet(&0, Packet::Publish(publish.clone()), 0),
        1,
    );
    assert_eq!(first.len(), 1, "first PUBLISH routes once");
    assert_eq!(first[0].qos, QoS::ExactlyOnce);
    assert_eq!(first[0].payload.as_ref(), b"exactly");
    // A duplicate before PUBREL is deduplicated, not routed again.
    let mut dup = publish;
    dup.dup = true;
    let repeat = broker.handle_packet(&0, Packet::Publish(dup), 0);
    assert!(
        deliveries_to(&repeat, 1).is_empty(),
        "duplicate not re-routed"
    );
    let done = broker.handle_packet(&0, Packet::Pubrel(7), 0);
    assert!(deliveries_to(&done, 1).is_empty());
    assert!(
        done.iter().any(|a| matches!(
            a,
            Action::Send {
                conn: 0,
                packet: Packet::Pubcomp(7)
            }
        )),
        "PUBREL answered with PUBCOMP"
    );
}

#[test]
fn qos0_fanout_frames_share_one_buffer() {
    let mut broker: Broker<u8> = Broker::new();
    broker.connection_opened(0, 0);
    broker.handle_packet(&0, Packet::Connect(Connect::new("pub")), 0);
    for i in 1..=3u8 {
        broker.connection_opened(i, 0);
        broker.handle_packet(&i, Packet::Connect(Connect::new(format!("sub{i}"))), 0);
        broker.handle_packet(&i, subscribe_packet("sensor/#", QoS::AtMostOnce), 0);
    }
    let actions = broker.handle_packet(
        &0,
        Packet::Publish(Publish::qos0(topic("sensor/1"), vec![9u8; 32])),
        0,
    );
    let frames: Vec<&Bytes> = actions
        .iter()
        .filter_map(|a| match a {
            Action::SendFrame { frame, .. } => Some(frame),
            _ => None,
        })
        .collect();
    assert_eq!(frames.len(), 3, "one pre-encoded frame per subscriber");
    assert!(
        frames.iter().all(|f| f.as_ptr() == frames[0].as_ptr()),
        "fan-out must share a single encoded buffer"
    );
}
